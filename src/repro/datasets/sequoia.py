"""Synthetic stand-in for the Sequoia 2000 California sites.

The paper's real data set -- 62,536 points representing sites in
California (Stonebraker et al. 1993) -- is not redistributable here, so
:func:`sequoia_like` synthesises a point set with the properties the
experiments depend on:

* strong clustering (settlements): a mixture of Gaussian clusters with
  heavily skewed sizes, so most points concentrate in a few dense
  metropolitan blobs while many small clusters dot the space;
* cluster centres arranged along a diagonal band with lateral spread,
  echoing California's coastal/valley geography;
* a sparse uniform background (isolated rural sites).

The load-bearing consequence, per Section 4.3.2 of the paper, is that
"node rectangles between the two R*-trees are likely to be disjoint
(or low overlapping) even for high overlapping data sets" when a
clustered set is joined with a uniform one -- which is exactly what a
mixture of this shape produces.  Output is deterministic in the seed
and normalised into the unit workspace.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.workspace import UNIT_WORKSPACE, Workspace

#: Cardinality of the real Sequoia California point set.
SEQUOIA_CARDINALITY = 62_536

#: Mixture shape defaults (chosen to visually and statistically mimic
#: a settlement map; see tests/test_datasets.py for the properties
#: asserted).
_DEFAULT_CLUSTERS = 120
_BACKGROUND_FRACTION = 0.08
_SIZE_SKEW = 1.35  # Zipf-like exponent over cluster sizes


def sequoia_like(
    n: int = SEQUOIA_CARDINALITY,
    workspace: Workspace = UNIT_WORKSPACE,
    seed: int = 2000,
    clusters: int = _DEFAULT_CLUSTERS,
    background_fraction: float = _BACKGROUND_FRACTION,
) -> np.ndarray:
    """A clustered, California-like point set; shape ``(n, 2)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    if not 0.0 <= background_fraction < 1.0:
        raise ValueError("background_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)

    n_background = int(n * background_fraction)
    n_clustered = n - n_background

    # Cluster centres: a noisy diagonal band (the coast/valley axis).
    t = rng.random(clusters)
    centers = np.empty((clusters, 2))
    centers[:, 0] = t + rng.normal(0.0, 0.12, clusters)
    centers[:, 1] = 1.0 - t + rng.normal(0.0, 0.12, clusters)

    # Skewed cluster sizes: a few metropolises, many villages.
    raw = (np.arange(1, clusters + 1, dtype=float)) ** (-_SIZE_SKEW)
    rng.shuffle(raw)
    sizes = np.floor(raw / raw.sum() * n_clustered).astype(int)
    sizes[0] += n_clustered - sizes.sum()  # distribute rounding slack

    # Cluster spread: larger clusters sprawl more, all remain compact
    # relative to the workspace.
    sigmas = 0.004 + 0.02 * rng.random(clusters) * (
        sizes / max(1, sizes.max())
    ) ** 0.5

    parts = []
    for center, size, sigma in zip(centers, sizes, sigmas):
        if size <= 0:
            continue
        parts.append(rng.normal(center, sigma, (size, 2)))
    if n_background:
        parts.append(rng.random((n_background, 2)))
    points = np.concatenate(parts)

    # Normalise into the unit square (min-max over a small margin), then
    # place into the requested workspace.
    mins = points.min(axis=0)
    maxs = points.max(axis=0)
    span = np.where(maxs > mins, maxs - mins, 1.0)
    unit = (points - mins) / span
    rng.shuffle(unit)
    return workspace.place(unit)
