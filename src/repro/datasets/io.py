"""Point-set persistence.

Two formats: ``.npy`` (fast, exact) and ``.csv`` (interoperable).
Format is chosen by file extension.
"""

from __future__ import annotations

import os

import numpy as np


def save_points(path: str, points: np.ndarray) -> None:
    """Save an (n, 2) point array as .npy or .csv by extension."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError("expected a 2-d point array")
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        np.save(path, pts)
    elif ext == ".csv":
        np.savetxt(path, pts, delimiter=",", header="x,y", comments="")
    else:
        raise ValueError(f"unsupported extension {ext!r}; use .npy or .csv")


def load_points(path: str) -> np.ndarray:
    """Load a point array saved by :func:`save_points`."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        return np.load(path)
    if ext == ".csv":
        return np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    raise ValueError(f"unsupported extension {ext!r}; use .npy or .csv")
