"""Uniform random point sets.

The paper's synthetic group: "random data sets of cardinality 20K, 40K,
60K, and 80K points following a uniform-like distribution", plus the
62,536-point uniform counterpart of the Sequoia set.  Generation is
deterministic in the seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.workspace import UNIT_WORKSPACE, Workspace


def uniform_points(
    n: int,
    workspace: Workspace = UNIT_WORKSPACE,
    seed: Optional[int] = 0,
    grid: Optional[int] = None,
) -> np.ndarray:
    """``n`` points uniform in ``workspace``; shape ``(n, 2)``.

    ``grid`` snaps coordinates to a ``grid x grid`` lattice of the unit
    square before placement.  Real-world coordinates are quantised
    (metres, arc-seconds), which makes exact distance ties common --
    the phenomenon the paper's tie-treatment experiment (Figure 2)
    studies; continuous uniform data exhibits (almost) no exact ties.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = np.random.default_rng(seed)
    unit = rng.random((n, 2))
    if grid is not None:
        if grid < 1:
            raise ValueError("grid must be >= 1")
        unit = np.round(unit * grid) / grid
    return workspace.place(unit)
