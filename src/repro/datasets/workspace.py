"""Workspaces and overlap placement.

A *workspace* is the rectangle a data set is generated in.  The paper
varies the "portion of overlapping between the two workspaces" from 0 %
to 100 %; with equal-size square workspaces, sliding one horizontally
so that a fraction ``o`` of its area lies inside the other realises
exactly that portion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.mbr import MBR


@dataclass(frozen=True)
class Workspace:
    """An axis-aligned 2-d generation rectangle."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin >= self.xmax or self.ymin >= self.ymax:
            raise ValueError("workspace must have positive extent")

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    def as_mbr(self) -> MBR:
        return MBR((self.xmin, self.ymin), (self.xmax, self.ymax))

    def place(self, unit_points: np.ndarray) -> np.ndarray:
        """Map points from the unit square into this workspace."""
        pts = np.asarray(unit_points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("expected an (n, 2) point array")
        out = np.empty_like(pts)
        out[:, 0] = self.xmin + pts[:, 0] * self.width
        out[:, 1] = self.ymin + pts[:, 1] * self.height
        return out

    def overlap_portion(self, other: "Workspace") -> float:
        """Fraction of this workspace's area covered by ``other``."""
        w = max(0.0, min(self.xmax, other.xmax) - max(self.xmin, other.xmin))
        h = max(0.0, min(self.ymax, other.ymax) - max(self.ymin, other.ymin))
        return (w * h) / self.area


#: The canonical base workspace.
UNIT_WORKSPACE = Workspace(0.0, 0.0, 1.0, 1.0)


def overlapping_workspace(
    base: Workspace, portion: float, gap: float = 0.25
) -> Workspace:
    """A workspace of the same size overlapping ``base`` by ``portion``.

    ``portion = 1.0`` coincides with ``base``; ``portion = 0.0`` is
    disjoint, separated horizontally by ``gap`` times the base width
    (a strictly positive gap keeps the 0 %-overlap configurations of
    the paper's figures clearly disjoint).
    """
    if not 0.0 <= portion <= 1.0:
        raise ValueError("overlap portion must be in [0, 1]")
    if portion == 0.0:
        shift = base.width * (1.0 + gap)
    else:
        # Sliding right by (1 - portion) * width leaves exactly
        # ``portion`` of the area overlapping.
        shift = base.width * (1.0 - portion)
    return Workspace(
        base.xmin + shift, base.ymin, base.xmax + shift, base.ymax
    )


def points_overlap_portion(
    points: np.ndarray, workspace: Workspace
) -> float:
    """Fraction of ``points`` falling inside ``workspace`` (diagnostic)."""
    pts = np.asarray(points, dtype=float)
    inside = (
        (pts[:, 0] >= workspace.xmin)
        & (pts[:, 0] <= workspace.xmax)
        & (pts[:, 1] >= workspace.ymin)
        & (pts[:, 1] <= workspace.ymax)
    )
    return float(inside.mean()) if len(pts) else 0.0


def workspace_pair(
    portion: float,
) -> Tuple[Workspace, Workspace]:
    """The standard experiment configuration: the base unit workspace
    and a second one overlapping it by ``portion``."""
    return UNIT_WORKSPACE, overlapping_workspace(UNIT_WORKSPACE, portion)
