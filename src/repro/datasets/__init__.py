"""Workload generators and dataset utilities.

The paper's experiments use (i) groups of uniform-like random sets of
20K-80K points, (ii) the real Sequoia California sites (62,536 points)
and (iii) an equally sized uniform set, with the *portion of workspace
overlap* between the two joined sets as the key control variable.

This subpackage generates deterministic equivalents:

* :func:`~repro.datasets.uniform.uniform_points` -- seeded uniform
  points in a workspace.
* :func:`~repro.datasets.sequoia.sequoia_like` -- a clustered synthetic
  stand-in for the Sequoia point set (see DESIGN.md, substitutions).
* :class:`~repro.datasets.workspace.Workspace` and
  :func:`~repro.datasets.workspace.overlapping_workspace` -- workspace
  placement with an exact overlap portion.
* :mod:`~repro.datasets.io` -- save/load point sets.
"""

from repro.datasets.io import load_points, save_points
from repro.datasets.sequoia import SEQUOIA_CARDINALITY, sequoia_like
from repro.datasets.uniform import uniform_points
from repro.datasets.workspace import (
    UNIT_WORKSPACE,
    Workspace,
    overlapping_workspace,
)

__all__ = [
    "uniform_points",
    "sequoia_like",
    "SEQUOIA_CARDINALITY",
    "Workspace",
    "UNIT_WORKSPACE",
    "overlapping_workspace",
    "save_points",
    "load_points",
]
