"""repro -- a reproduction of "Closest Pair Queries in Spatial
Databases" (Corral, Manolopoulos, Theodoridis & Vassilakopoulos,
SIGMOD 2000).

The package answers K Closest Pair Queries (K-CPQs) between two point
sets indexed by disk-based R*-trees, reproducing the paper's five
algorithms, its incremental-join baseline and its full experimental
evaluation.  See README.md for a tour and DESIGN.md for the system
inventory.

Most applications only need::

    from repro import CPQRequest, bulk_load, k_closest_pairs

    tree_p = bulk_load(points_p)
    tree_q = bulk_load(points_q)
    result = k_closest_pairs(tree_p, tree_q, CPQRequest(k=10))
"""

from repro.core.api import CPQRequest, closest_pair, k_closest_pairs
from repro.core.constraints import ColorSpec, RangeSpec
from repro.core.result import ClosestPair, CPQResult
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig

__version__ = "1.0.0"

__all__ = [
    "k_closest_pairs",
    "closest_pair",
    "CPQRequest",
    "RangeSpec",
    "ColorSpec",
    "ClosestPair",
    "CPQResult",
    "RTree",
    "RTreeConfig",
    "bulk_load",
    "__version__",
]
