"""The persisted dataset catalog and the single tree-reopen path.

A :class:`Catalog` is a JSON sidecar (``catalog.json``) naming the
datasets of one directory and, per dataset, one or more **built
indexes**: the index kind (``str`` / ``grid`` / ``dynamic``, see
:data:`repro.analysis.cost_model.INDEX_KINDS`), the page-file path,
the committed snapshot generation it was registered at, the mmap /
legacy-page flags its storage wants, and build statistics.  Everything
that used to plumb raw ``.pages`` paths and hand-rolled
:class:`~repro.net.shard.TreeSpec` tuples -- the CLI, the query
service, the network shards -- resolves catalog names instead::

    catalog = Catalog("data/catalog.json")
    catalog.register_dataset("parks", points, kind="auto")
    tree = catalog.open_dataset("parks")          # planner-chosen index
    spec = catalog.tree_spec("parks")             # shard-reopenable

:func:`open_tree` is the one function that turns (path, metadata,
flags) into a live :class:`~repro.rtree.tree.RTree`;
:meth:`~repro.net.shard.TreeSpec.open` and the CLI's page loading both
delegate to it, so snapshot-generation and mmap handling cannot drift
apart again.

The schema is versioned (:data:`SCHEMA_VERSION`); a catalog written by
a future incompatible layout is refused, never guessed at.  Page-file
paths are stored relative to the catalog's directory so a dataset
directory can be moved or shipped wholesale.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.cost_model import INDEX_KINDS
from repro.errors import CatalogError, UnknownDatasetError
from repro.rtree.bulk import bulk_load
from repro.rtree.grid import grid_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

#: Catalog file schema version; bump on any incompatible layout change.
SCHEMA_VERSION = 1

#: Default catalog file name inside a dataset directory.
CATALOG_FILENAME = "catalog.json"


def open_tree(
    path: str,
    *,
    metadata: Optional[Dict[str, Any]] = None,
    page_size: Optional[int] = None,
    use_mmap: bool = False,
    readonly: bool = True,
    buffer_capacity: int = 0,
    read_latency: float = 0.0,
    allow_legacy_pages: bool = False,
) -> RTree:
    """Reopen one persistent tree: the single source of truth.

    Every reopen in the system -- catalog lookups, shard workers
    (:meth:`repro.net.shard.TreeSpec.open`), the CLI's ``.pages``
    arguments -- goes through here, so the snapshot-generation, mmap
    and legacy-page handling cannot diverge between layers.

    ``metadata`` is the :meth:`~repro.rtree.tree.RTree.metadata` dict;
    when omitted it is loaded from the ``<path>.meta.json`` sidecar
    ``repro-cpq build``/``ingest`` maintain.  ``page_size`` overrides
    the metadata's (they must agree with the file's framing).
    """
    if metadata is None:
        sidecar = meta_path(path)
        try:
            with open(sidecar, encoding="utf-8") as handle:
                metadata = json.load(handle)
        except FileNotFoundError:
            raise CatalogError(
                f"no metadata sidecar at {sidecar}; pass metadata= or "
                f"rebuild the tree"
            ) from None
        except json.JSONDecodeError as exc:
            raise CatalogError(
                f"unreadable metadata sidecar {sidecar}: {exc}"
            ) from exc
    metadata = dict(metadata)
    if page_size is None:
        page_size = int(metadata["page_size"])
    store = FilePageStore(path, page_size, readonly=readonly,
                          use_mmap=use_mmap)
    file = PagedFile(
        store,
        buffer_capacity=buffer_capacity,
        page_size=page_size,
        read_latency=read_latency,
    )
    config = RTreeConfig(
        layout=PageLayout(
            page_size=page_size,
            dimension=int(metadata.get("dimension", 2)),
        ),
        variant=metadata.get("variant", "rstar"),
        allow_legacy_pages=allow_legacy_pages,
    )
    tree = RTree(config, file)
    tree.root_id = metadata["root_id"]
    tree.height = int(metadata["height"])
    tree._count = int(metadata["count"])
    tree.generation = int(metadata.get("generation", 0))
    return tree


def meta_path(pages_path: str) -> str:
    """The ``.meta.json`` sidecar path of one page file."""
    return pages_path + ".meta.json"


@dataclass(frozen=True)
class IndexEntry:
    """One built index of one dataset.

    ``path`` is absolute once loaded (the catalog file stores it
    relative to its own directory); ``metadata`` is the committed
    snapshot the index was registered at -- reopening through it is
    what makes shard workers and the service agree on a generation.
    """

    kind: str
    path: str
    page_size: int
    metadata: Dict[str, Any]
    use_mmap: bool = False
    allow_legacy_pages: bool = False
    #: Build statistics: ``build_s`` (wall seconds), ``nodes``,
    #: ``height`` and -- for planner-chosen indexes -- the decision's
    #: evidence dict.
    build: Dict[str, Any] = field(default_factory=dict)

    @property
    def generation(self) -> int:
        """The committed generation this index reopens at."""
        return int(self.metadata.get("generation", 0))

    def open(
        self,
        *,
        use_mmap: Optional[bool] = None,
        buffer_capacity: int = 0,
        read_latency: float = 0.0,
        readonly: bool = True,
    ) -> RTree:
        """Open this index through :func:`open_tree`."""
        return open_tree(
            self.path,
            metadata=self.metadata,
            page_size=self.page_size,
            use_mmap=self.use_mmap if use_mmap is None else use_mmap,
            readonly=readonly,
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            allow_legacy_pages=self.allow_legacy_pages,
        )

    def tree_spec(
        self,
        buffer_capacity: int = 64,
        read_latency: float = 0.0,
        use_mmap: Optional[bool] = None,
    ):
        """This index as a shard-reopenable
        :class:`~repro.net.shard.TreeSpec`."""
        # Imported lazily: repro.net imports the service layer, which
        # must stay importable without the network tier.
        from repro.net.shard import TreeSpec

        return TreeSpec(
            path=self.path,
            page_size=self.page_size,
            metadata=dict(self.metadata),
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            use_mmap=self.use_mmap if use_mmap is None else use_mmap,
        )

    def to_json(self, base_dir: str) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "path": os.path.relpath(self.path, base_dir),
            "page_size": self.page_size,
            "metadata": dict(self.metadata),
            "use_mmap": self.use_mmap,
            "allow_legacy_pages": self.allow_legacy_pages,
            "build": dict(self.build),
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any], base_dir: str) -> "IndexEntry":
        try:
            return cls(
                kind=obj["kind"],
                path=os.path.normpath(
                    os.path.join(base_dir, obj["path"])
                ),
                page_size=int(obj["page_size"]),
                metadata=dict(obj["metadata"]),
                use_mmap=bool(obj.get("use_mmap", False)),
                allow_legacy_pages=bool(
                    obj.get("allow_legacy_pages", False)
                ),
                build=dict(obj.get("build", {})),
            )
        except KeyError as exc:
            raise CatalogError(
                f"index entry misses required field {exc}"
            ) from exc


@dataclass
class DatasetEntry:
    """One named dataset and its built indexes, keyed by kind."""

    name: str
    dimension: int
    count: int
    indexes: Dict[str, IndexEntry] = field(default_factory=dict)
    #: The kind :meth:`index` resolves when none is asked for --
    #: the planner's recommendation for ``kind="auto"`` registrations.
    default_kind: Optional[str] = None
    #: Free-form provenance (source file, generator, notes).
    source: Optional[str] = None

    def index(self, kind: Optional[str] = None) -> IndexEntry:
        """The entry for ``kind`` (default: the dataset's default)."""
        if kind is None:
            kind = self.default_kind
        if kind is None and len(self.indexes) == 1:
            kind = next(iter(self.indexes))
        if kind is None or kind not in self.indexes:
            raise UnknownDatasetError(
                f"{self.name}[{kind or '?'}]",
                tuple(f"{self.name}[{k}]" for k in sorted(self.indexes)),
            )
        return self.indexes[kind]

    def kinds(self) -> List[str]:
        return sorted(self.indexes)

    def to_json(self, base_dir: str) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dimension": self.dimension,
            "count": self.count,
            "default_kind": self.default_kind,
            "source": self.source,
            "indexes": {
                kind: entry.to_json(base_dir)
                for kind, entry in sorted(self.indexes.items())
            },
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any],
                  base_dir: str) -> "DatasetEntry":
        try:
            return cls(
                name=obj["name"],
                dimension=int(obj["dimension"]),
                count=int(obj["count"]),
                default_kind=obj.get("default_kind"),
                source=obj.get("source"),
                indexes={
                    kind: IndexEntry.from_json(entry, base_dir)
                    for kind, entry in obj.get("indexes", {}).items()
                },
            )
        except KeyError as exc:
            raise CatalogError(
                f"dataset entry misses required field {exc}"
            ) from exc


def _build_index(
    kind: str,
    points: Sequence[Sequence[float]],
    oids: Optional[Sequence[int]],
    pages_path: str,
    page_size: int,
    dimension: int,
) -> RTree:
    """Build one index of ``kind`` into ``pages_path``; returns the
    (still open, flushed) tree."""
    store = FilePageStore(pages_path, page_size)
    file = PagedFile(store, page_size=page_size)
    config = RTreeConfig(
        layout=PageLayout(page_size=page_size, dimension=dimension)
    )
    if kind == "str":
        tree = bulk_load(points, oids, config=config, file=file)
    elif kind == "grid":
        tree = grid_load(points, oids, config=config, file=file)
    elif kind == "dynamic":
        tree = RTree(config, file)
        if oids is None:
            oids = range(len(points))
        for point, oid in zip(points, oids):
            tree.insert(tuple(float(v) for v in point), int(oid))
    else:
        raise CatalogError(
            f"unknown index kind {kind!r}; expected one of "
            f"{INDEX_KINDS} or 'auto'"
        )
    store.flush()
    return tree


class Catalog:
    """A directory's persisted map of dataset names to built indexes.

    Parameters
    ----------
    path:
        The catalog JSON file, or a directory (then
        ``<dir>/catalog.json``).  Loaded when it exists; a missing
        file starts an empty catalog whose first :meth:`save` creates
        it.  Page files built by :meth:`register_dataset` land next to
        the catalog file.
    """

    def __init__(self, path: str):
        if os.path.isdir(path):
            path = os.path.join(path, CATALOG_FILENAME)
        self.path = os.path.abspath(path)
        self.base_dir = os.path.dirname(self.path)
        self._datasets: Dict[str, DatasetEntry] = {}
        if os.path.exists(self.path):
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as handle:
                obj = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CatalogError(
                f"unreadable catalog {self.path}: {exc}"
            ) from exc
        version = obj.get("schema_version")
        if version != SCHEMA_VERSION:
            raise CatalogError(
                f"catalog {self.path} has schema version {version!r}; "
                f"this build speaks version {SCHEMA_VERSION}"
            )
        self._datasets = {
            name: DatasetEntry.from_json(entry, self.base_dir)
            for name, entry in obj.get("datasets", {}).items()
        }

    def save(self) -> None:
        """Atomically persist the catalog (write-temp + rename)."""
        os.makedirs(self.base_dir, exist_ok=True)
        obj = {
            "schema_version": SCHEMA_VERSION,
            "datasets": {
                name: entry.to_json(self.base_dir)
                for name, entry in sorted(self._datasets.items())
            },
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    # -- lookups -----------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def dataset(self, name: str) -> DatasetEntry:
        try:
            return self._datasets[name]
        except KeyError:
            raise UnknownDatasetError(name, tuple(self.names())) from None

    def open_dataset(
        self,
        name: str,
        kind: Optional[str] = None,
        *,
        use_mmap: Optional[bool] = None,
        buffer_capacity: int = 0,
        read_latency: float = 0.0,
        readonly: bool = True,
    ) -> RTree:
        """Open one dataset's index as a live tree.

        The replacement for every hand-rolled ``FilePageStore`` +
        ``from_storage`` reopen: flags come from the catalog entry
        unless explicitly overridden.
        """
        entry = self.dataset(name).index(kind)
        if not os.path.exists(entry.path):
            raise CatalogError(
                f"dataset {name!r} names a missing page file "
                f"{entry.path}"
            )
        return entry.open(
            use_mmap=use_mmap,
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            readonly=readonly,
        )

    def tree_spec(
        self,
        name: str,
        kind: Optional[str] = None,
        *,
        buffer_capacity: int = 64,
        read_latency: float = 0.0,
        use_mmap: Optional[bool] = None,
    ):
        """One dataset's index as a shard-reopenable ``TreeSpec``."""
        return self.dataset(name).index(kind).tree_spec(
            buffer_capacity=buffer_capacity,
            read_latency=read_latency,
            use_mmap=use_mmap,
        )

    # -- registration ------------------------------------------------------

    def register_dataset(
        self,
        name: str,
        points: Sequence[Sequence[float]],
        oids: Optional[Sequence[int]] = None,
        *,
        kind: str = "auto",
        extra_kinds: Sequence[str] = (),
        page_size: int = 1024,
        dimension: Optional[int] = None,
        source: Optional[str] = None,
        overwrite: bool = False,
        planner=None,
        use_mmap: bool = False,
    ) -> DatasetEntry:
        """Build and persist one dataset's index(es).

        ``kind="auto"`` asks the planner's index dimension
        (:meth:`repro.service.planner.Planner.plan_index`) to choose
        from the dataset's shape; the decision's evidence is kept in
        the index's build stats.  ``extra_kinds`` builds additional
        indexes alongside (the benchmark registers all three).  Page
        files are written next to the catalog as
        ``<name>.<kind>.pages`` (plus ``.meta.json`` sidecars for
        legacy tooling), and the catalog file is saved before
        returning.
        """
        if not name or "," in name or os.sep in name:
            raise CatalogError(
                f"dataset name {name!r} must be non-empty and free of "
                f"',' and path separators"
            )
        if name in self._datasets and not overwrite:
            raise CatalogError(
                f"dataset {name!r} is already registered "
                f"(pass overwrite=True to rebuild)"
            )
        if len(points) == 0:
            raise CatalogError(f"dataset {name!r} has no points")
        if dimension is None:
            dimension = len(points[0])
        decision = None
        if kind == "auto":
            if planner is None:
                from repro.service.planner import Planner

                planner = Planner()
            decision = planner.plan_index(points)
            kind = decision.kind
        kinds = [kind] + [k for k in extra_kinds if k != kind]
        for k in kinds:
            if k not in INDEX_KINDS:
                raise CatalogError(
                    f"unknown index kind {k!r}; expected one of "
                    f"{INDEX_KINDS} or 'auto'"
                )
        os.makedirs(self.base_dir, exist_ok=True)
        entry = DatasetEntry(
            name=name, dimension=dimension, count=len(points),
            default_kind=kind, source=source,
        )
        for k in kinds:
            pages = os.path.join(self.base_dir, f"{name}.{k}.pages")
            if os.path.exists(pages):
                os.remove(pages)
            started = time.perf_counter()
            tree = _build_index(
                k, points, oids, pages, page_size, dimension
            )
            build_s = time.perf_counter() - started
            metadata = dict(tree.metadata())
            build: Dict[str, Any] = {
                "build_s": round(build_s, 6),
                "nodes": tree.node_count(),
                "height": tree.height,
            }
            if decision is not None and k == kind:
                build["decision"] = decision.as_dict()
            with open(meta_path(pages), "w", encoding="utf-8") as handle:
                json.dump(metadata, handle)
            tree.file.store.close()
            entry.indexes[k] = IndexEntry(
                kind=k,
                path=pages,
                page_size=page_size,
                metadata=metadata,
                use_mmap=use_mmap,
                build=build,
            )
        self._datasets[name] = entry
        self.save()
        return entry

    def adopt_pages(
        self,
        name: str,
        pages_path: str,
        *,
        kind: str = "dynamic",
        metadata: Optional[Dict[str, Any]] = None,
        use_mmap: bool = False,
        allow_legacy_pages: bool = False,
        source: Optional[str] = None,
        overwrite: bool = False,
        persist: bool = True,
    ) -> DatasetEntry:
        """Register an existing ``.pages`` file under a catalog name.

        The migration path for pre-catalog trees (``repro-cpq build``
        output, deprecated raw path flags): the page file stays where
        it is, only the catalog entry is created.  ``metadata``
        defaults to the ``.meta.json`` sidecar.  ``persist=False``
        registers in memory only -- how the CLI routes a one-shot
        deprecated path argument through the catalog without writing a
        catalog file next to it.
        """
        if name in self._datasets and not overwrite:
            raise CatalogError(
                f"dataset {name!r} is already registered "
                f"(pass overwrite=True to replace)"
            )
        pages_path = os.path.abspath(pages_path)
        if not os.path.exists(pages_path):
            raise CatalogError(f"no page file at {pages_path}")
        if metadata is None:
            sidecar = meta_path(pages_path)
            try:
                with open(sidecar, encoding="utf-8") as handle:
                    metadata = json.load(handle)
            except FileNotFoundError:
                raise CatalogError(
                    f"no metadata sidecar at {sidecar}; pass metadata="
                ) from None
        entry = DatasetEntry(
            name=name,
            dimension=int(metadata.get("dimension", 2)),
            count=int(metadata.get("count", 0)),
            default_kind=kind,
            source=source if source is not None else pages_path,
        )
        entry.indexes[kind] = IndexEntry(
            kind=kind,
            path=pages_path,
            page_size=int(metadata["page_size"]),
            metadata=dict(metadata),
            use_mmap=use_mmap,
            allow_legacy_pages=allow_legacy_pages,
        )
        self._datasets[name] = entry
        if persist:
            self.save()
        return entry

    def remove_dataset(self, name: str, delete_files: bool = False) -> None:
        """Drop one dataset's entry (optionally its page files too)."""
        entry = self.dataset(name)
        if delete_files:
            for index in entry.indexes.values():
                for victim in (index.path, meta_path(index.path)):
                    if os.path.exists(victim):
                        os.remove(victim)
        del self._datasets[name]
        self.save()
