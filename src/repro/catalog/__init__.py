"""Persisted dataset catalog: named datasets, built indexes, one
``open_dataset`` API.

ROADMAP item 5's front door.  A :class:`Catalog` maps names to built
indexes (STR-packed, grid-packed, or dynamic R*-trees -- see
``docs/CATALOG.md``), and :func:`open_tree` is the single reopen path
every layer (CLI, service, shards) goes through.  CPQL queries
(:mod:`repro.query.cpql`) resolve their ``FROM`` clauses against a
catalog.
"""

from repro.catalog.core import (
    CATALOG_FILENAME,
    Catalog,
    DatasetEntry,
    IndexEntry,
    SCHEMA_VERSION,
    meta_path,
    open_tree,
)
from repro.errors import CatalogError, UnknownDatasetError

__all__ = [
    "CATALOG_FILENAME",
    "Catalog",
    "CatalogError",
    "DatasetEntry",
    "IndexEntry",
    "SCHEMA_VERSION",
    "UnknownDatasetError",
    "meta_path",
    "open_tree",
]
