"""Structural invariant checking.

:func:`validate` walks a tree and asserts every R-tree invariant the
test suite relies on:

* every internal entry's MBR is exactly the union of its child's
  entry MBRs (tight directory rectangles -- this is what makes
  MINMAXDIST a sound bound);
* all leaves are at level 0 and at the same depth (balance);
* node occupancy is within [m, M] (root excepted);
* the recorded point count matches the number of leaf entries;
* levels decrease by exactly one per tree edge.

Raises :class:`RTreeInvariantError` with a descriptive message on the
first violation; returns summary statistics otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.mbr import MBR
from repro.rtree.tree import RTree


class RTreeInvariantError(AssertionError):
    """An R-tree structural invariant was violated."""


@dataclass
class TreeSummary:
    height: int
    nodes: int
    leaves: int
    entries: int


def validate(tree: RTree) -> TreeSummary:
    """Check all invariants; return a summary on success."""
    if tree.root_id is None:
        if len(tree) != 0 or tree.height != 0:
            raise RTreeInvariantError("empty tree with nonzero count/height")
        return TreeSummary(0, 0, 0, 0)

    root = tree.read_node(tree.root_id)
    if root.level != tree.height - 1:
        raise RTreeInvariantError(
            f"root level {root.level} != height-1 ({tree.height - 1})"
        )
    if len(root.entries) == 0:
        raise RTreeInvariantError("root has no entries")
    if not root.is_leaf and len(root.entries) < 2:
        raise RTreeInvariantError("internal root must have >= 2 entries")

    counters = {"nodes": 0, "leaves": 0, "entries": 0}
    _check_node(tree, root, is_root=True, counters=counters)
    if counters["entries"] != len(tree):
        raise RTreeInvariantError(
            f"tree reports {len(tree)} points but leaves hold "
            f"{counters['entries']}"
        )
    return TreeSummary(
        tree.height, counters["nodes"], counters["leaves"],
        counters["entries"],
    )


def _check_node(tree: RTree, node, is_root: bool, counters) -> MBR:
    counters["nodes"] += 1
    if not node.entries:
        raise RTreeInvariantError(f"node {node.page_id} is empty")
    if not is_root and len(node.entries) < tree.min_entries:
        raise RTreeInvariantError(
            f"node {node.page_id} underfull: {len(node.entries)} < "
            f"{tree.min_entries}"
        )
    if len(node.entries) > tree.max_entries:
        raise RTreeInvariantError(
            f"node {node.page_id} overfull: {len(node.entries)} > "
            f"{tree.max_entries}"
        )
    if node.is_leaf:
        counters["leaves"] += 1
        counters["entries"] += len(node.entries)
        return node.mbr()

    actual = None
    for entry in node.entries:
        child = tree.read_node(entry.child_id)
        if child.level != node.level - 1:
            raise RTreeInvariantError(
                f"child {child.page_id} at level {child.level} under "
                f"node {node.page_id} at level {node.level}"
            )
        child_mbr = _check_node(tree, child, is_root=False, counters=counters)
        if entry.mbr != child_mbr:
            raise RTreeInvariantError(
                f"entry MBR {entry.mbr} for child {child.page_id} is not "
                f"the tight union {child_mbr}"
            )
        actual = child_mbr if actual is None else actual.union(child_mbr)
    assert actual is not None
    return actual
