"""The disk-based R-tree / R*-tree.

:class:`RTree` glues the pieces together: a :class:`PagedFile` for
storage and I/O accounting, the :class:`NodeSerializer` for the byte
layout, a decoded-node cache, and the insertion machinery (ChooseSubtree,
forced reinsertion and node splits).

The ``variant`` config selects behaviour:

* ``"rstar"`` (default, used by all paper experiments): R* ChooseSubtree
  with minimum overlap enlargement at the leaf level, the R* margin
  split, and forced reinsertion of 30 % of the entries on the first
  overflow per level per insertion (Beckmann et al. 1990).
* ``"guttman"``: classic Guttman insertion with the quadratic split.
* ``"linear"``: Guttman insertion with the linear-cost split.

Reading a node through :meth:`read_node` routes the page fetch through
the LRU buffer, which is how queries accumulate the disk-access counts
reported by every figure of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import PageCorruptionError
from repro.geometry.mbr import MBR
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.node import Entry, Node
from repro.rtree.splits import linear_split, quadratic_split, rstar_split
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer

VARIANTS = ("rstar", "guttman", "linear")

_SPLITS = {
    "rstar": rstar_split,
    "guttman": quadratic_split,
    "linear": linear_split,
}


@dataclass(frozen=True)
class RTreeConfig:
    """Static configuration of one tree."""

    layout: PageLayout = field(default_factory=PageLayout)
    variant: str = "rstar"
    #: Fraction of M force-reinserted on overflow (R* recommends 30 %).
    reinsert_fraction: float = 0.3
    #: Accept version-0 (pre-checksum) pages when reading.  Off by
    #: default: a damaged version-1 header can masquerade as legacy, so
    #: only opt in for page files known to predate checksumming.
    allow_legacy_pages: bool = False

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if not 0.0 < self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")


class RTree:
    """A dynamic R-tree over paged storage.

    Parameters
    ----------
    config:
        Structural configuration (page layout, split variant).
    file:
        The paged file to store nodes in; a fresh in-memory file with a
        zero-capacity buffer is created when omitted.
    """

    def __init__(
        self,
        config: Optional[RTreeConfig] = None,
        file: Optional[PagedFile] = None,
    ):
        self.config = config if config is not None else RTreeConfig()
        layout = self.config.layout
        self.file = (
            file if file is not None else PagedFile(page_size=layout.page_size)
        )
        if self.file.page_size != layout.page_size:
            raise ValueError(
                f"paged file uses {self.file.page_size}-byte pages but the "
                f"layout expects {layout.page_size}"
            )
        self.serializer = NodeSerializer(
            layout, allow_legacy=self.config.allow_legacy_pages
        )
        self.root_id: Optional[int] = None
        self.height = 0  # number of levels; 0 means empty
        self._count = 0
        #: Bumped on every structural mutation (insert/delete); cached
        #: query results keyed on it (see repro.service.cache) become
        #: unreachable the moment the indexed set changes.
        self.generation = 0
        self._nodes: dict[int, Node] = {}
        self._reinserted_levels: Set[int] = set()

    # -- basic properties ------------------------------------------------

    @property
    def max_entries(self) -> int:
        return self.config.layout.max_entries

    @property
    def min_entries(self) -> int:
        return self.config.layout.min_entries

    @property
    def dimension(self) -> int:
        return self.config.layout.dimension

    def __len__(self) -> int:
        """Number of indexed points."""
        return self._count

    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def stats(self):
        """The I/O counters of the underlying paged file."""
        return self.file.stats

    # -- node I/O ------------------------------------------------------------

    def read_node(self, page_id: int) -> Node:
        """Fetch a node, going through the LRU buffer for I/O accounting.

        Pages are deserialised at most once; the decoded-node cache does
        not affect the disk-access counts (those are decided solely by
        the buffer), it only avoids redundant byte decoding.

        A page that fails its checksum is dropped from the buffer and
        re-read once from the backing store: corruption picked up in
        flight (a flipped bit on the wire) heals, while at-rest damage
        fails the second decode too and propagates as
        :class:`repro.errors.PageCorruptionError` -- never a silently
        wrong node.  Detections count in ``stats.corrupt_reads``.
        """
        data = self.file.read_page(page_id)
        node = self._nodes.get(page_id)
        if node is None:
            try:
                level, tuples, lo, hi = (
                    self.serializer.deserialize_arrays(data)
                )
            except PageCorruptionError:
                self.stats.corrupt_reads += 1
                self.file.buffer.invalidate(page_id)
                data = self.file.read_page(page_id)
                level, tuples, lo, hi = (
                    self.serializer.deserialize_arrays(data)
                )
            node = Node.from_arrays(page_id, level, tuples, lo, hi)
            self._nodes[page_id] = node
        return node

    def read_root(self) -> Optional[Node]:
        if self.root_id is None:
            return None
        return self.read_node(self.root_id)

    def _write_node(self, node: Node) -> None:
        if node.is_leaf:
            data = self.serializer.serialize_leaf(node.to_tuples())
        else:
            data = self.serializer.serialize_internal(
                node.level, node.to_tuples()
            )
        self.file.write_page(node.page_id, data)
        self._nodes[node.page_id] = node

    def _new_node(self, level: int) -> Node:
        page_id = self.file.allocate()
        node = Node(page_id, level)
        self._nodes[page_id] = node
        return node

    def _free_node(self, node: Node) -> None:
        self.file.free_page(node.page_id)
        self._nodes.pop(node.page_id, None)

    # -- insertion -------------------------------------------------------------

    def insert(self, point: Sequence[float], oid: int) -> None:
        """Insert one point with its object id."""
        if len(point) != self.dimension:
            raise ValueError(
                f"point of dimension {len(point)}; tree expects "
                f"{self.dimension}"
            )
        entry = LeafEntry(tuple(point), oid)
        self._count += 1
        self.generation += 1
        if self.root_id is None:
            root = self._new_node(0)
            root.add(entry)
            self._write_node(root)
            self.root_id = root.page_id
            self.height = 1
            return
        self._reinserted_levels = set()
        self._insert_entry(entry, 0)

    def insert_many(self, points, oids=None) -> None:
        """Insert a batch of points (object ids default to 0..n-1)."""
        for i, point in enumerate(points):
            self.insert(point, oids[i] if oids is not None else i)

    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Insert ``entry`` into a node at ``level`` (0 = leaf level)."""
        path: List[Tuple[Node, int]] = []
        node = self.read_node(self.root_id)
        while node.level > level:
            index = self._choose_subtree(node, entry.mbr)
            path.append((node, index))
            node = self.read_node(node.entries[index].child_id)
        node.add(entry)
        self._propagate(node, path)

    def _choose_subtree(self, node: Node, mbr: MBR) -> int:
        """R* ChooseSubtree (or Guttman least-enlargement)."""
        lo = node.lo_array()
        hi = node.hi_array()
        new_lo = np.minimum(lo, mbr.lo)
        new_hi = np.maximum(hi, mbr.hi)
        areas = np.prod(hi - lo, axis=1)
        union_areas = np.prod(new_hi - new_lo, axis=1)
        enlargements = union_areas - areas
        if self.config.variant == "rstar" and node.level == 1:
            # Children are leaves: minimise overlap enlargement, then
            # area enlargement, then area.
            n = len(node.entries)
            overlap_after = np.empty(n)
            for i in range(n):
                grown_lo = lo.copy()
                grown_hi = hi.copy()
                grown_lo[i] = new_lo[i]
                grown_hi[i] = new_hi[i]
                overlap_after[i] = _overlap_with_others(
                    grown_lo, grown_hi, i
                )
            overlap_delta = overlap_after - _overlap_per_entry(lo, hi)
            order = np.lexsort((areas, enlargements, overlap_delta))
            return int(order[0])
        order = np.lexsort((areas, enlargements))
        return int(order[0])

    def _propagate(self, node: Node, path: List[Tuple[Node, int]]) -> None:
        """Resolve overflow (reinsert or split) and push MBR updates up."""
        while True:
            if len(node.entries) <= self.max_entries:
                self._write_node(node)
                self._adjust_path(path, node)
                return
            is_root = node.page_id == self.root_id
            if (
                self.config.variant == "rstar"
                and not is_root
                and node.level not in self._reinserted_levels
            ):
                self._reinserted_levels.add(node.level)
                self._forced_reinsert(node, path)
                return
            node, path = self._split(node, path)

    def _split(
        self, node: Node, path: List[Tuple[Node, int]]
    ) -> Tuple[Node, List[Tuple[Node, int]]]:
        split = _SPLITS[self.config.variant]
        group_a, group_b = split(node.entries, self.min_entries)
        node.replace_entries(group_a)
        sibling = self._new_node(node.level)
        sibling.replace_entries(group_b)
        self._write_node(node)
        self._write_node(sibling)
        if not path:
            root = self._new_node(node.level + 1)
            root.add(InternalEntry(node.mbr(), node.page_id))
            root.add(InternalEntry(sibling.mbr(), sibling.page_id))
            self._write_node(root)
            self.root_id = root.page_id
            self.height += 1
            return root, []
        parent, index = path.pop()
        parent.entries[index] = InternalEntry(node.mbr(), node.page_id)
        parent.invalidate_caches()
        parent.add(InternalEntry(sibling.mbr(), sibling.page_id))
        return parent, path

    def _forced_reinsert(
        self, node: Node, path: List[Tuple[Node, int]]
    ) -> None:
        """R* forced reinsertion: evict the p entries farthest from the
        node centre and re-insert them (closest first)."""
        center = node.mbr().center
        p = max(1, round(self.config.reinsert_fraction * self.max_entries))

        def distance(entry: Entry) -> float:
            c = entry.mbr.center
            return math.dist(c, center)

        ordered = sorted(node.entries, key=distance, reverse=True)
        evicted = ordered[:p]
        node.replace_entries(ordered[p:])
        self._write_node(node)
        self._adjust_path(path, node)
        for entry in reversed(evicted):  # close reinsert
            self._insert_entry(entry, node.level)

    def _adjust_path(
        self, path: List[Tuple[Node, int]], child: Node
    ) -> None:
        """Refresh ancestor entry MBRs after ``child`` changed."""
        for parent, index in reversed(path):
            entry = parent.entries[index]
            new_mbr = child.mbr()
            if entry.mbr == new_mbr:
                return
            parent.entries[index] = InternalEntry(new_mbr, entry.child_id)
            parent.invalidate_caches()
            self._write_node(parent)
            child = parent

    # -- deletion --------------------------------------------------------------

    def delete(self, point: Sequence[float], oid: Optional[int] = None) -> bool:
        """Remove one matching point; returns whether a match was found.

        When ``oid`` is None any entry at the point's location matches.
        Underfull nodes along the path are dissolved and their entries
        re-inserted (Guttman's CondenseTree).
        """
        if self.root_id is None:
            return False
        target = tuple(float(v) for v in point)
        found = self._find_leaf(
            self.read_node(self.root_id), target, oid, []
        )
        if found is None:
            return False
        leaf, index, path = found
        leaf.remove_at(index)
        self._count -= 1
        self.generation += 1
        self._condense(leaf, path)
        self._shrink_root()
        return True

    def _find_leaf(self, node, point, oid, path):
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.point == point and (oid is None or entry.oid == oid):
                    return node, i, list(path)
            return None
        for i, entry in enumerate(node.entries):
            if entry.mbr.contains_point(point):
                child = self.read_node(entry.child_id)
                path.append((node, i))
                found = self._find_leaf(child, point, oid, path)
                if found is not None:
                    return found
                path.pop()
        return None

    def _condense(self, node: Node, path: List[Tuple[Node, int]]) -> None:
        orphans: List[Tuple[Entry, int]] = []
        while path:
            parent, index = path[-1]
            if len(node.entries) < self.min_entries:
                for entry in node.entries:
                    orphans.append((entry, node.level))
                parent.remove_at(index)
                self._free_node(node)
            else:
                self._write_node(node)
                self._adjust_path(path, node)
            node = path.pop()[0]
        # node is now the root
        self._write_node(node)
        for entry, level in orphans:
            self._reinserted_levels = set()
            self._insert_entry(entry, level)

    def _shrink_root(self) -> None:
        while self.root_id is not None:
            root = self.read_node(self.root_id)
            if root.is_leaf:
                if not root.entries:
                    self._free_node(root)
                    self.root_id = None
                    self.height = 0
                return
            if len(root.entries) == 1:
                child_id = root.entries[0].child_id
                self._free_node(root)
                self.root_id = child_id
                self.height -= 1
            else:
                return

    # -- persistence ------------------------------------------------------------

    def metadata(self) -> dict:
        """The out-of-page state needed to reopen this tree later.

        Pages carry all node data; this dict carries the root pointer
        and counters.  Store it next to a :class:`FilePageStore` file
        (e.g. as JSON) and pass it to :meth:`from_storage`.
        """
        return {
            "root_id": self.root_id,
            "height": self.height,
            "count": self._count,
            "variant": self.config.variant,
            "page_size": self.config.layout.page_size,
            "dimension": self.config.layout.dimension,
        }

    @classmethod
    def from_storage(cls, file: PagedFile, metadata: dict) -> "RTree":
        """Reopen a tree over existing pages (see :meth:`metadata`)."""
        config = RTreeConfig(
            layout=PageLayout(
                page_size=int(metadata["page_size"]),
                dimension=int(metadata["dimension"]),
            ),
            variant=metadata.get("variant", "rstar"),
        )
        tree = cls(config, file)
        tree.root_id = metadata["root_id"]
        tree.height = int(metadata["height"])
        tree._count = int(metadata["count"])
        return tree

    # -- iteration ----------------------------------------------------------------

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        """Yield every indexed (point, oid) entry."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child_id for e in node.entries)

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node (root first, depth-first)."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.entries)

    def __repr__(self) -> str:
        return (
            f"RTree(variant={self.config.variant!r}, points={self._count}, "
            f"height={self.height}, nodes={self.node_count()})"
        )


def _overlap_per_entry(lo, hi) -> np.ndarray:
    sides = np.minimum(hi[:, None, :], hi[None, :, :]) - np.maximum(
        lo[:, None, :], lo[None, :, :]
    )
    np.maximum(sides, 0.0, out=sides)
    areas = np.prod(sides, axis=2)
    np.fill_diagonal(areas, 0.0)
    return areas.sum(axis=1)


def _overlap_with_others(lo, hi, index: int) -> float:
    sides = np.minimum(hi[index], hi) - np.maximum(lo[index], lo)
    np.maximum(sides, 0.0, out=sides)
    areas = np.prod(sides, axis=1)
    areas[index] = 0.0
    return float(areas.sum())
