"""The disk-based R-tree / R*-tree.

:class:`RTree` glues the pieces together: a :class:`PagedFile` for
storage and I/O accounting, the :class:`NodeSerializer` for the byte
layout, a decoded-node cache, and the insertion machinery (ChooseSubtree,
forced reinsertion and node splits).

The ``variant`` config selects behaviour:

* ``"rstar"`` (default, used by all paper experiments): R* ChooseSubtree
  with minimum overlap enlargement at the leaf level, the R* margin
  split, and forced reinsertion of 30 % of the entries on the first
  overflow per level per insertion (Beckmann et al. 1990).
* ``"guttman"``: classic Guttman insertion with the quadratic split.
* ``"linear"``: Guttman insertion with the linear-cost split.

Reading a node through :meth:`read_node` routes the page fetch through
the LRU buffer, which is how queries accumulate the disk-access counts
reported by every figure of the paper.

Every structural mutation flows through a single commit seam
(:meth:`RTree._commit_mutation`): ``insert`` and ``delete`` open an
implicit one-operation batch, :meth:`RTree.batch` groups many
operations (and their R* forced reinsertions) into one, and in both
cases the generation number advances exactly once per committed batch.
Calling :meth:`RTree.enable_live_mutation` upgrades the tree to
copy-on-write: batches then relocate every page they touch to freshly
allocated pages, readers pin consistent :class:`Snapshot` generations
through :meth:`RTree.pin` / :meth:`RTree.view`, superseded pages are
reclaimed once unpinned, and an optional write-ahead log
(:class:`repro.storage.wal.WriteAheadLog`) makes each commit durable
before it is published.  See ``docs/STORAGE.md``.
"""

from __future__ import annotations

import math
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import PageCorruptionError
from repro.geometry.mbr import MBR
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.node import Entry, Node
from repro.rtree.splits import linear_split, quadratic_split, rstar_split
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer
from repro.storage.snapshot import Snapshot, SnapshotManager, SnapshotView

VARIANTS = ("rstar", "guttman", "linear")

_SPLITS = {
    "rstar": rstar_split,
    "guttman": quadratic_split,
    "linear": linear_split,
}


@dataclass(frozen=True)
class RTreeConfig:
    """Static configuration of one tree."""

    layout: PageLayout = field(default_factory=PageLayout)
    variant: str = "rstar"
    #: Fraction of M force-reinserted on overflow (R* recommends 30 %).
    reinsert_fraction: float = 0.3
    #: Accept version-0 (pre-checksum) pages when reading.  Off by
    #: default: a damaged version-1 header can masquerade as legacy, so
    #: only opt in for page files known to predate checksumming.
    allow_legacy_pages: bool = False

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if not 0.0 < self.reinsert_fraction < 1.0:
            raise ValueError("reinsert_fraction must be in (0, 1)")


class RTree:
    """A dynamic R-tree over paged storage.

    Parameters
    ----------
    config:
        Structural configuration (page layout, split variant).
    file:
        The paged file to store nodes in; a fresh in-memory file with a
        zero-capacity buffer is created when omitted.
    """

    def __init__(
        self,
        config: Optional[RTreeConfig] = None,
        file: Optional[PagedFile] = None,
    ):
        self.config = config if config is not None else RTreeConfig()
        layout = self.config.layout
        self.file = (
            file if file is not None else PagedFile(page_size=layout.page_size)
        )
        if self.file.page_size != layout.page_size:
            raise ValueError(
                f"paged file uses {self.file.page_size}-byte pages but the "
                f"layout expects {layout.page_size}"
            )
        self.serializer = NodeSerializer(
            layout, allow_legacy=self.config.allow_legacy_pages
        )
        self.root_id: Optional[int] = None
        self.height = 0  # number of levels; 0 means empty
        self._count = 0
        #: Bumped once per committed mutation batch by the commit seam
        #: (:meth:`_commit_mutation`); cached query results keyed on it
        #: (see repro.service.cache) become unreachable the moment the
        #: indexed set changes.
        self.generation = 0
        self._nodes: dict[int, Node] = {}
        self._reinserted_levels: Set[int] = set()
        # Live-mutation state (None/inactive until enable_live_mutation).
        self._snapshots: Optional[SnapshotManager] = None
        self._wal = None
        #: Serialises mutation batches against WAL checkpointing: held
        #: from batch open to commit/rollback, and by
        #: :meth:`checkpoint_wal`, so the log is never truncated with a
        #: half-appended batch inside it.
        self._batch_lock = threading.RLock()
        self._batch_depth = 0
        self._batch_ops = 0
        self._batch_failed = False
        #: Pages allocated (and still live) in the open batch; under
        #: copy-on-write these are the only pages the batch may write.
        self._batch_pages: Set[int] = set()
        #: Committed pages superseded by the open batch; freed lazily
        #: once no pinned snapshot can reach them.
        self._batch_freed: List[int] = []
        self._pre_batch: Tuple[Optional[int], int, int] = (None, 0, 0)

    # -- basic properties ------------------------------------------------

    @property
    def max_entries(self) -> int:
        return self.config.layout.max_entries

    @property
    def min_entries(self) -> int:
        return self.config.layout.min_entries

    @property
    def dimension(self) -> int:
        return self.config.layout.dimension

    def __len__(self) -> int:
        """Number of indexed points."""
        return self._count

    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def stats(self):
        """The I/O counters of the underlying paged file."""
        return self.file.stats

    # -- node I/O ------------------------------------------------------------

    def read_node(self, page_id: int) -> Node:
        """Fetch a node, going through the LRU buffer for I/O accounting.

        Pages are deserialised at most once; the decoded-node cache does
        not affect the disk-access counts (those are decided solely by
        the buffer), it only avoids redundant byte decoding.

        A page that fails its checksum is dropped from the buffer and
        re-read once from the backing store: corruption picked up in
        flight (a flipped bit on the wire) heals, while at-rest damage
        fails the second decode too and propagates as
        :class:`repro.errors.PageCorruptionError` -- never a silently
        wrong node.  Detections count in ``stats.corrupt_reads``.
        """
        data = self.file.read_page(page_id)
        node = self._nodes.get(page_id)
        if node is None:
            try:
                level, tuples, lo, hi = (
                    self.serializer.deserialize_arrays(data)
                )
            except PageCorruptionError:
                self.stats.corrupt_reads += 1
                self.file.buffer.invalidate(page_id)
                data = self.file.read_page(page_id)
                level, tuples, lo, hi = (
                    self.serializer.deserialize_arrays(data)
                )
            node = Node.from_arrays(page_id, level, tuples, lo, hi)
            self._nodes[page_id] = node
        return node

    def read_root(self) -> Optional[Node]:
        if self.root_id is None:
            return None
        return self.read_node(self.root_id)

    def _serialize_node(self, node: Node) -> bytes:
        if node.is_leaf:
            return self.serializer.serialize_leaf(node.to_tuples())
        return self.serializer.serialize_internal(
            node.level, node.to_tuples()
        )

    def _write_node(self, node: Node) -> None:
        self.file.write_page(node.page_id, self._serialize_node(node))
        self._nodes[node.page_id] = node

    def _new_node(self, level: int) -> Node:
        page_id = self.file.allocate()
        if self.live:
            self._batch_pages.add(page_id)
        node = Node(page_id, level)
        self._nodes[page_id] = node
        return node

    def _free_node(self, node: Node) -> None:
        if self.live and node.page_id not in self._batch_pages:
            # A committed page: pinned snapshots may still reach it, so
            # defer the free until the snapshot manager drains it.
            self._batch_freed.append(node.page_id)
            return
        self._batch_pages.discard(node.page_id)
        self.file.free_page(node.page_id)
        self._nodes.pop(node.page_id, None)

    # -- live mutation: snapshots, batches and the commit seam ----------------

    @property
    def live(self) -> bool:
        """Whether copy-on-write live mutation is enabled."""
        return self._snapshots is not None

    @property
    def snapshots(self) -> Optional[SnapshotManager]:
        """The snapshot manager, or None before ``enable_live_mutation``."""
        return self._snapshots

    @property
    def wal(self):
        """The attached write-ahead log, or None."""
        return self._wal

    def enable_live_mutation(self, wal=None) -> SnapshotManager:
        """Switch the tree to copy-on-write mutation with snapshots.

        From this point every mutation batch relocates the pages it
        touches to fresh allocations and publishes its result as a new
        :class:`Snapshot` generation; committed pages stay immutable
        until no pin can reach them.  When ``wal`` (a
        :class:`repro.storage.wal.WriteAheadLog`) is given, each batch
        appends its final page images and a COMMIT record -- synced
        per the log's ``sync_mode`` -- *before* the snapshot is
        published, so a crash can always be replayed to the last
        committed generation.
        """
        if self._batch_depth:
            raise RuntimeError(
                "cannot enable live mutation inside an open batch"
            )
        self._snapshots = SnapshotManager(
            self._reclaim_page,
            Snapshot(self.generation, self.root_id, self.height,
                     self._count),
        )
        self._wal = wal
        return self._snapshots

    def _reclaim_page(self, page_id: int) -> None:
        """Really free a superseded page (snapshot-manager callback)."""
        self.file.free_page(page_id)
        self._nodes.pop(page_id, None)

    def committed(self) -> Snapshot:
        """The last committed snapshot (without pinning it)."""
        if self._snapshots is not None:
            return self._snapshots.current()
        return Snapshot(self.generation, self.root_id, self.height,
                        self._count)

    def pin(self) -> Snapshot:
        """Pin the committed snapshot for reading (see :meth:`view`).

        On a non-live tree this degrades to an unpinned
        :meth:`committed` peek, so callers can pin/release uniformly.
        """
        if self._snapshots is not None:
            return self._snapshots.pin()
        return self.committed()

    def release(self, snapshot: Snapshot) -> None:
        """Release a pin taken with :meth:`pin` (no-op when non-live)."""
        if self._snapshots is not None:
            self._snapshots.release(snapshot)

    def view(self, snapshot: Optional[Snapshot] = None) -> SnapshotView:
        """A read view of the tree frozen at ``snapshot``.

        The view exposes the full read-side surface the query
        algorithms use; pair it with :meth:`pin`/:meth:`release` to
        keep the snapshot's pages alive for the view's lifetime.
        """
        if snapshot is None:
            snapshot = self.committed()
        return SnapshotView(self, snapshot)

    def batch(self):
        """Context manager grouping mutations into one commit.

        All inserts/deletes inside the ``with`` block share one R*
        forced-reinsertion budget and commit as a single generation
        bump (one WAL batch, one snapshot publication).  On an
        exception the batch rolls back: a live tree restores the
        previous committed state exactly (its pages were never
        touched); a non-live tree cannot un-write pages and only bumps
        the generation so stale caches drop.
        """
        return self._mutation()

    @contextmanager
    def _mutation(self):
        self._begin_batch()
        try:
            yield self
        except BaseException:
            self._abort_batch()
            raise
        else:
            self._commit_batch()

    def _begin_batch(self) -> None:
        # Reentrant: nested batches re-acquire; the checkpointer thread
        # blocks here until the outermost commit/rollback releases.
        self._batch_lock.acquire()
        self._batch_depth += 1
        if self._batch_depth > 1:
            return
        self._batch_ops = 0
        self._batch_failed = False
        self._batch_pages = set()
        self._batch_freed = []
        self._reinserted_levels = set()
        self._pre_batch = (self.root_id, self.height, self._count)
        if self.live and self._wal is not None:
            self._wal.begin(self.generation)

    def _commit_batch(self) -> None:
        try:
            self._batch_depth -= 1
            if self._batch_depth:
                return
            if self._batch_failed:
                self._rollback_batch()
                raise RuntimeError(
                    "mutation batch poisoned by an earlier error; rolled back"
                )
            self._commit_mutation()
        finally:
            self._batch_lock.release()

    def _abort_batch(self) -> None:
        try:
            self._batch_depth -= 1
            if self._batch_depth:
                # An enclosing batch is still open; it cannot commit a
                # half-applied operation, so poison it.
                self._batch_failed = True
                return
            self._rollback_batch()
        finally:
            self._batch_lock.release()

    def _commit_mutation(self) -> None:
        """The single mutation seam: every committed batch ends here.

        Bumps the generation exactly once, appends the batch's final
        page images to the WAL (when attached) and publishes the new
        snapshot -- in that order, so durability always precedes
        visibility.  No-op batches (zero operations) commit nothing
        and do not advance the generation.
        """
        if not self._batch_ops:
            self._batch_pages = set()
            self._batch_freed = []
            return
        self._batch_ops = 0
        self.generation += 1
        if not self.live:
            return
        if self._wal is not None:
            for page_id in sorted(self._batch_pages):
                node = self._nodes.get(page_id)
                if node is not None:
                    image = self._serialize_node(node)
                else:
                    image = self.file.read_page(page_id)
                self._wal.log_write(page_id, image)
            for page_id in self._batch_freed:
                self._wal.log_free(page_id)
            self._wal.commit(
                self.generation, self.root_id, self.height, self._count
            )
        self._snapshots.publish(
            Snapshot(self.generation, self.root_id, self.height,
                     self._count),
            self._batch_freed,
        )
        self._batch_pages = set()
        self._batch_freed = []

    def checkpoint_wal(self, meta_path: Optional[str] = None) -> bool:
        """Truncate the attached WAL once its contents are redundant.

        Makes the log's work durable *elsewhere first* -- flush the
        page store, then rewrite the ``.meta.json`` sidecar at the
        committed snapshot -- and only then empties the log, so a
        crash at any point recovers: before the truncate the WAL
        replays as usual; after it, the sidecar already describes the
        flushed pages and there is nothing to replay.  Holds the batch
        lock, so a checkpoint never interleaves with a half-appended
        batch (the background :class:`~repro.storage.wal.
        WALCheckpointer` calls this from its own thread).

        Returns False when no WAL is attached.  Idempotent: an empty
        log checkpoints to an empty log.
        """
        if self._wal is None:
            return False
        with self._batch_lock:
            store = getattr(self.file, "store", None)
            if store is not None and hasattr(store, "flush"):
                store.flush()
            if meta_path is not None:
                import json

                snapshot = self.committed()
                metadata = dict(self.metadata())
                metadata.update(
                    root_id=snapshot.root_id,
                    height=snapshot.height,
                    count=snapshot.count,
                    generation=snapshot.generation,
                )
                tmp = meta_path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(metadata, handle)
                os.replace(tmp, meta_path)
            self._wal.checkpoint()
        return True

    def _rollback_batch(self) -> None:
        """Undo an aborted batch as far as the storage mode allows."""
        if self.live:
            self.root_id, self.height, self._count = self._pre_batch
            for page_id in self._batch_pages:
                self._nodes.pop(page_id, None)
                self.file.free_page(page_id)
        else:
            # Pages are mutated in place: the structure cannot be
            # restored, but bumping the generation at least drops any
            # cached results derived from it.
            self.generation += 1
        self._batch_ops = 0
        self._batch_failed = False
        self._batch_pages = set()
        self._batch_freed = []

    def _shadow(self, node: Node, parent: Optional[Node] = None,
                index: Optional[int] = None) -> Node:
        """Copy-on-write relocation of one committed page.

        Under live mutation a batch may only write pages it allocated
        itself; a committed node is cloned onto a fresh page first (the
        original stays byte-identical for pinned readers).  The parent
        pointer (or the root pointer) is repointed and persisted
        immediately, so later MBR-unchanged early returns in
        :meth:`_adjust_path` cannot leave a stale child id behind.
        """
        if not self.live or node.page_id in self._batch_pages:
            return node
        old_id = node.page_id
        new_id = self.file.allocate()
        self._batch_pages.add(new_id)
        clone = Node(new_id, node.level, list(node.entries))
        self._nodes[new_id] = clone
        self._batch_freed.append(old_id)
        self._write_node(clone)
        if parent is None:
            self.root_id = new_id
        else:
            entry = parent.entries[index]
            parent.entries[index] = InternalEntry(entry.mbr, new_id)
            self._write_node(parent)
        return clone

    # -- insertion -------------------------------------------------------------

    def insert(self, point: Sequence[float], oid: int) -> None:
        """Insert one point with its object id.

        Outside an explicit :meth:`batch` this is an implicit
        one-operation batch: the generation bumps once and, under live
        mutation, the commit publishes a snapshot (and WAL batch) of
        its own.
        """
        if len(point) != self.dimension:
            raise ValueError(
                f"point of dimension {len(point)}; tree expects "
                f"{self.dimension}"
            )
        with self._mutation():
            entry = LeafEntry(tuple(point), oid)
            self._count += 1
            self._batch_ops += 1
            if self.root_id is None:
                root = self._new_node(0)
                root.add(entry)
                self._write_node(root)
                self.root_id = root.page_id
                self.height = 1
            else:
                self._insert_entry(entry, 0)

    def insert_many(self, points, oids=None) -> None:
        """Insert a batch of points (object ids default to 0..n-1)."""
        for i, point in enumerate(points):
            self.insert(point, oids[i] if oids is not None else i)

    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Insert ``entry`` into a node at ``level`` (0 = leaf level).

        Under live mutation every node along the chosen path is
        shadowed (:meth:`_shadow`) before it can be written to.
        """
        path: List[Tuple[Node, int]] = []
        node = self._shadow(self.read_node(self.root_id))
        while node.level > level:
            index = self._choose_subtree(node, entry.mbr)
            child = self._shadow(
                self.read_node(node.entries[index].child_id), node, index
            )
            path.append((node, index))
            node = child
        node.add(entry)
        self._propagate(node, path)

    def _choose_subtree(self, node: Node, mbr: MBR) -> int:
        """R* ChooseSubtree (or Guttman least-enlargement)."""
        lo = node.lo_array()
        hi = node.hi_array()
        new_lo = np.minimum(lo, mbr.lo)
        new_hi = np.maximum(hi, mbr.hi)
        areas = np.prod(hi - lo, axis=1)
        union_areas = np.prod(new_hi - new_lo, axis=1)
        enlargements = union_areas - areas
        if self.config.variant == "rstar" and node.level == 1:
            # Children are leaves: minimise overlap enlargement, then
            # area enlargement, then area.
            n = len(node.entries)
            overlap_after = np.empty(n)
            for i in range(n):
                grown_lo = lo.copy()
                grown_hi = hi.copy()
                grown_lo[i] = new_lo[i]
                grown_hi[i] = new_hi[i]
                overlap_after[i] = _overlap_with_others(
                    grown_lo, grown_hi, i
                )
            overlap_delta = overlap_after - _overlap_per_entry(lo, hi)
            order = np.lexsort((areas, enlargements, overlap_delta))
            return int(order[0])
        order = np.lexsort((areas, enlargements))
        return int(order[0])

    def _propagate(self, node: Node, path: List[Tuple[Node, int]]) -> None:
        """Resolve overflow (reinsert or split) and push MBR updates up."""
        while True:
            if len(node.entries) <= self.max_entries:
                self._write_node(node)
                self._adjust_path(path, node)
                return
            is_root = node.page_id == self.root_id
            if (
                self.config.variant == "rstar"
                and not is_root
                and node.level not in self._reinserted_levels
            ):
                self._reinserted_levels.add(node.level)
                self._forced_reinsert(node, path)
                return
            node, path = self._split(node, path)

    def _split(
        self, node: Node, path: List[Tuple[Node, int]]
    ) -> Tuple[Node, List[Tuple[Node, int]]]:
        split = _SPLITS[self.config.variant]
        group_a, group_b = split(node.entries, self.min_entries)
        node.replace_entries(group_a)
        sibling = self._new_node(node.level)
        sibling.replace_entries(group_b)
        self._write_node(node)
        self._write_node(sibling)
        if not path:
            root = self._new_node(node.level + 1)
            root.add(InternalEntry(node.mbr(), node.page_id))
            root.add(InternalEntry(sibling.mbr(), sibling.page_id))
            self._write_node(root)
            self.root_id = root.page_id
            self.height += 1
            return root, []
        parent, index = path.pop()
        parent.entries[index] = InternalEntry(node.mbr(), node.page_id)
        parent.invalidate_caches()
        parent.add(InternalEntry(sibling.mbr(), sibling.page_id))
        return parent, path

    def _forced_reinsert(
        self, node: Node, path: List[Tuple[Node, int]]
    ) -> None:
        """R* forced reinsertion: evict the p entries farthest from the
        node centre and re-insert them (closest first)."""
        center = node.mbr().center
        p = max(1, round(self.config.reinsert_fraction * self.max_entries))

        def distance(entry: Entry) -> float:
            c = entry.mbr.center
            return math.dist(c, center)

        ordered = sorted(node.entries, key=distance, reverse=True)
        evicted = ordered[:p]
        node.replace_entries(ordered[p:])
        self._write_node(node)
        self._adjust_path(path, node)
        for entry in reversed(evicted):  # close reinsert
            self._insert_entry(entry, node.level)

    def _adjust_path(
        self, path: List[Tuple[Node, int]], child: Node
    ) -> None:
        """Refresh ancestor entry MBRs after ``child`` changed."""
        for parent, index in reversed(path):
            entry = parent.entries[index]
            new_mbr = child.mbr()
            if entry.mbr == new_mbr:
                return
            parent.entries[index] = InternalEntry(new_mbr, entry.child_id)
            parent.invalidate_caches()
            self._write_node(parent)
            child = parent

    # -- deletion --------------------------------------------------------------

    def delete(self, point: Sequence[float], oid: Optional[int] = None) -> bool:
        """Remove one matching point; returns whether a match was found.

        When ``oid`` is None any entry at the point's location matches.
        Underfull nodes along the path are dissolved and their entries
        re-inserted (Guttman's CondenseTree).
        """
        if self.root_id is None:
            return False
        with self._mutation():
            target = tuple(float(v) for v in point)
            found = self._find_leaf(
                self.read_node(self.root_id), target, oid, []
            )
            if found is None:
                removed = False
            else:
                leaf, index, path = found
                leaf, path = self._shadow_found_path(leaf, path)
                leaf.remove_at(index)
                self._count -= 1
                self._batch_ops += 1
                self._condense(leaf, path)
                self._shrink_root()
                removed = True
        return removed

    def _shadow_found_path(
        self, leaf: Node, path: List[Tuple[Node, int]]
    ) -> Tuple[Node, List[Tuple[Node, int]]]:
        """Shadow a root-to-leaf path located by :meth:`_find_leaf`.

        The search reads committed nodes; before the delete may write
        any of them, the whole path is relocated top-down so each
        shadowed parent points at its shadowed child.
        """
        if not self.live:
            return leaf, path
        shadowed: List[Tuple[Node, int]] = []
        parent: Optional[Node] = None
        index: Optional[int] = None
        for node, i in path:
            node = self._shadow(node, parent, index)
            shadowed.append((node, i))
            parent, index = node, i
        leaf = self._shadow(leaf, parent, index)
        return leaf, shadowed

    def _find_leaf(self, node, point, oid, path):
        if node.is_leaf:
            for i, entry in enumerate(node.entries):
                if entry.point == point and (oid is None or entry.oid == oid):
                    return node, i, list(path)
            return None
        for i, entry in enumerate(node.entries):
            if entry.mbr.contains_point(point):
                child = self.read_node(entry.child_id)
                path.append((node, i))
                found = self._find_leaf(child, point, oid, path)
                if found is not None:
                    return found
                path.pop()
        return None

    def _condense(self, node: Node, path: List[Tuple[Node, int]]) -> None:
        orphans: List[Tuple[Entry, int]] = []
        while path:
            parent, index = path[-1]
            if len(node.entries) < self.min_entries:
                for entry in node.entries:
                    orphans.append((entry, node.level))
                parent.remove_at(index)
                self._free_node(node)
            else:
                self._write_node(node)
                self._adjust_path(path, node)
            node = path.pop()[0]
        # node is now the root
        self._write_node(node)
        for entry, level in orphans:
            self._reinserted_levels = set()
            self._insert_entry(entry, level)

    def _shrink_root(self) -> None:
        while self.root_id is not None:
            root = self.read_node(self.root_id)
            if root.is_leaf:
                if not root.entries:
                    self._free_node(root)
                    self.root_id = None
                    self.height = 0
                return
            if len(root.entries) == 1:
                child_id = root.entries[0].child_id
                self._free_node(root)
                self.root_id = child_id
                self.height -= 1
            else:
                return

    # -- persistence ------------------------------------------------------------

    def metadata(self) -> dict:
        """The out-of-page state needed to reopen this tree later.

        Pages carry all node data; this dict carries the root pointer
        and counters.  Store it next to a :class:`FilePageStore` file
        (e.g. as JSON) and pass it to :meth:`from_storage`.
        """
        return {
            "root_id": self.root_id,
            "height": self.height,
            "count": self._count,
            "generation": self.generation,
            "variant": self.config.variant,
            "page_size": self.config.layout.page_size,
            "dimension": self.config.layout.dimension,
        }

    @classmethod
    def from_storage(cls, file: PagedFile, metadata: dict) -> "RTree":
        """Reopen a tree over existing pages (see :meth:`metadata`)."""
        config = RTreeConfig(
            layout=PageLayout(
                page_size=int(metadata["page_size"]),
                dimension=int(metadata["dimension"]),
            ),
            variant=metadata.get("variant", "rstar"),
        )
        tree = cls(config, file)
        tree.root_id = metadata["root_id"]
        tree.height = int(metadata["height"])
        tree._count = int(metadata["count"])
        tree.generation = int(metadata.get("generation", 0))
        return tree

    # -- iteration ----------------------------------------------------------------

    def iter_leaf_entries(self) -> Iterator[LeafEntry]:
        """Yield every indexed (point, oid) entry."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child_id for e in node.entries)

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node (root first, depth-first)."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.entries)

    def __repr__(self) -> str:
        return (
            f"RTree(variant={self.config.variant!r}, points={self._count}, "
            f"height={self.height}, nodes={self.node_count()})"
        )


def _overlap_per_entry(lo, hi) -> np.ndarray:
    sides = np.minimum(hi[:, None, :], hi[None, :, :]) - np.maximum(
        lo[:, None, :], lo[None, :, :]
    )
    np.maximum(sides, 0.0, out=sides)
    areas = np.prod(sides, axis=2)
    np.fill_diagonal(areas, 0.0)
    return areas.sum(axis=1)


def _overlap_with_others(lo, hi, index: int) -> float:
    sides = np.minimum(hi[index], hi) - np.maximum(lo[index], lo)
    np.maximum(sides, 0.0, out=sides)
    areas = np.prod(sides, axis=1)
    areas[index] = 0.0
    return float(areas.sum())
