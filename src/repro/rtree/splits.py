"""Node split policies.

Two split algorithms are provided:

* :func:`quadratic_split` -- Guttman's original quadratic-cost split,
  kept as the classic-R-tree baseline.
* :func:`linear_split` -- Guttman's linear-cost split: seeds are the
  pair with the greatest normalised separation along any axis.
* :func:`rstar_split` -- the R* topological split of Beckmann et al.:
  choose the split axis by minimum total margin over all candidate
  distributions, then the distribution on that axis by minimum overlap
  (ties by minimum combined area).

Both operate on plain entry lists (anything exposing ``.mbr``) and
return the two entry groups, leaving page management to the tree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.mbr import MBR

SplitResult = Tuple[List, List]


def _group_mbr(entries: Sequence) -> MBR:
    return MBR.union_all(e.mbr for e in entries)


def quadratic_split(entries: Sequence, min_entries: int) -> SplitResult:
    """Guttman's quadratic split.

    Seeds are the pair of entries wasting the most area if grouped
    together; remaining entries are assigned one at a time by maximum
    preference difference, respecting minimum occupancy.
    """
    if len(entries) < 2 * min_entries:
        raise ValueError("not enough entries to split")
    remaining = list(entries)

    # Pick seeds: the pair with maximum dead space when combined.
    worst = -1.0
    seed_a = seed_b = 0
    for i in range(len(remaining)):
        mi = remaining[i].mbr
        for j in range(i + 1, len(remaining)):
            mj = remaining[j].mbr
            dead = mi.union(mj).area() - mi.area() - mj.area()
            if dead > worst:
                worst = dead
                seed_a, seed_b = i, j
    group_a = [remaining[seed_a]]
    group_b = [remaining[seed_b]]
    for index in sorted((seed_a, seed_b), reverse=True):
        remaining.pop(index)

    mbr_a = group_a[0].mbr
    mbr_b = group_b[0].mbr
    while remaining:
        # Force-assign when one group must absorb everything left.
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        # Choose the entry with the strongest preference.
        best_index = 0
        best_diff = -1.0
        best_growth = (0.0, 0.0)
        for i, entry in enumerate(remaining):
            grow_a = mbr_a.union(entry.mbr).area() - mbr_a.area()
            grow_b = mbr_b.union(entry.mbr).area() - mbr_b.area()
            diff = abs(grow_a - grow_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
                best_growth = (grow_a, grow_b)
        entry = remaining.pop(best_index)
        grow_a, grow_b = best_growth
        if grow_a < grow_b or (
            grow_a == grow_b and len(group_a) <= len(group_b)
        ):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b


def linear_split(entries: Sequence, min_entries: int) -> SplitResult:
    """Guttman's linear split.

    Seeds: along each axis find the entry with the highest low side
    and the entry with the lowest high side; normalise their
    separation by the axis extent and pick the axis with the greatest
    normalised separation.  Remaining entries are assigned to the
    group whose MBR grows least, respecting minimum occupancy.
    """
    if len(entries) < 2 * min_entries:
        raise ValueError("not enough entries to split")
    remaining = list(entries)
    dimension = remaining[0].mbr.dimension

    best_separation = -1.0
    seed_a = 0
    seed_b = 1
    for axis in range(dimension):
        lows = [e.mbr.lo[axis] for e in remaining]
        highs = [e.mbr.hi[axis] for e in remaining]
        highest_low = max(range(len(remaining)), key=lambda i: lows[i])
        lowest_high = min(range(len(remaining)), key=lambda i: highs[i])
        if highest_low == lowest_high:
            continue
        extent = max(highs) - min(lows)
        if extent <= 0.0:
            continue
        separation = (lows[highest_low] - highs[lowest_high]) / extent
        if separation > best_separation:
            best_separation = separation
            seed_a, seed_b = lowest_high, highest_low

    group_a = [remaining[seed_a]]
    group_b = [remaining[seed_b]]
    for index in sorted((seed_a, seed_b), reverse=True):
        remaining.pop(index)

    mbr_a = group_a[0].mbr
    mbr_b = group_b[0].mbr
    while remaining:
        if len(group_a) + len(remaining) == min_entries:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_entries:
            group_b.extend(remaining)
            break
        entry = remaining.pop()
        grow_a = mbr_a.union(entry.mbr).area() - mbr_a.area()
        grow_b = mbr_b.union(entry.mbr).area() - mbr_b.area()
        if grow_a < grow_b or (
            grow_a == grow_b and len(group_a) <= len(group_b)
        ):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry.mbr)
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry.mbr)
    return group_a, group_b


def _running_unions(entries: Sequence) -> List[MBR]:
    """Prefix unions: ``result[i]`` covers ``entries[0..i]``; O(n)."""
    unions: List[MBR] = []
    current = entries[0].mbr
    unions.append(current)
    for entry in entries[1:]:
        current = current.union(entry.mbr)
        unions.append(current)
    return unions


def rstar_split(entries: Sequence, min_entries: int) -> SplitResult:
    """The R* split (ChooseSplitAxis + ChooseSplitIndex).

    Group MBRs for every candidate distribution come from prefix and
    suffix union arrays, so each of the 2 x dimension orderings is
    evaluated in O(n) instead of the naive O(n^2) unions.
    """
    if len(entries) < 2 * min_entries:
        raise ValueError("not enough entries to split")
    total = len(entries)
    dimension = entries[0].mbr.dimension
    best_axis_margin = None
    best_axis_sortings = None

    def distributions(ordering):
        """Yield (k, left MBR, right MBR) for each legal split index."""
        prefix = _running_unions(ordering)
        suffix = _running_unions(list(reversed(ordering)))
        for k in range(min_entries, total - min_entries + 1):
            yield k, prefix[k - 1], suffix[total - k - 1]

    for axis in range(dimension):
        by_lo = sorted(entries, key=lambda e: (e.mbr.lo[axis], e.mbr.hi[axis]))
        by_hi = sorted(entries, key=lambda e: (e.mbr.hi[axis], e.mbr.lo[axis]))
        margin_sum = 0.0
        for ordering in (by_lo, by_hi):
            for __, left, right in distributions(ordering):
                margin_sum += left.margin() + right.margin()
        if best_axis_margin is None or margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis_sortings = (by_lo, by_hi)

    assert best_axis_sortings is not None
    best_split = None
    best_key = None
    for ordering in best_axis_sortings:
        for k, mbr_left, mbr_right in distributions(ordering):
            overlap = mbr_left.intersection_area(mbr_right)
            area = mbr_left.area() + mbr_right.area()
            key = (overlap, area)
            if best_key is None or key < best_key:
                best_key = key
                best_split = (list(ordering[:k]), list(ordering[k:]))
    assert best_split is not None
    return best_split
