"""The R-tree family over paged storage.

The paper stores each point set in an R*-tree (Beckmann et al. 1990),
"considered the most efficient variant of the R-tree family", with
nodes implemented as disk pages.  This subpackage provides:

* :class:`~repro.rtree.tree.RTree` -- the disk-based tree with dynamic
  insertion and deletion; the split policy selects between the classic
  Guttman quadratic split and the R* split with forced reinsertion.
* :mod:`~repro.rtree.bulk` -- Sort-Tile-Recursive bulk loading for
  fast experiment setup.
* :mod:`~repro.rtree.grid` -- uniform-grid packing, the catalog's
  alternative index kind for uniform data (see ``docs/CATALOG.md``).
* :mod:`~repro.rtree.validate` -- structural invariant checking used
  by the test suite.
"""

from repro.rtree.bulk import bulk_load
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.grid import grid_load
from repro.rtree.node import Node
from repro.rtree.tree import RTree, RTreeConfig

__all__ = [
    "RTree",
    "RTreeConfig",
    "Node",
    "LeafEntry",
    "InternalEntry",
    "bulk_load",
    "grid_load",
]
