"""Hilbert-curve utilities and Hilbert-packed bulk loading.

An alternative to STR packing (Kamel & Faloutsos): sort entries by the
Hilbert value of their centre and fill nodes in curve order.  Hilbert
packing preserves locality better than independent per-axis tiling on
skewed data, at the price of slightly less square leaf rectangles.

:func:`hilbert_index` implements the classic d2xy/xy2d bit-twiddling
transform for a ``2^order x 2^order`` grid (Warren, "Hacker's
Delight" formulation); it is exact and its properties (bijectivity,
unit-step adjacency) are property-tested.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.rtree.bulk import DEFAULT_FILL
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.paged_file import PagedFile

#: Grid resolution for curve ordering: 2^16 cells per axis.
DEFAULT_ORDER = 16


def hilbert_index(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Hilbert-curve distance of cell ``(x, y)`` on a 2^order grid."""
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside the 2^{order} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate the quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_point(d: int, order: int = DEFAULT_ORDER):
    """Inverse of :func:`hilbert_index`: curve distance to cell."""
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError(f"distance {d} outside the 2^{order} grid curve")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_sort_key(points: np.ndarray, order: int = DEFAULT_ORDER):
    """Hilbert values for an (n, 2) point array (normalised first)."""
    pts = np.asarray(points, dtype=float)
    mins = pts.min(axis=0)
    spans = pts.max(axis=0) - mins
    spans = np.where(spans > 0, spans, 1.0)
    side = (1 << order) - 1
    cells = np.clip(
        ((pts - mins) / spans * side).astype(np.int64), 0, side
    )
    return [
        hilbert_index(int(cx), int(cy), order) for cx, cy in cells
    ]


def hilbert_bulk_load(
    points: Sequence[Sequence[float]],
    oids: Optional[Sequence[int]] = None,
    config: Optional[RTreeConfig] = None,
    file: Optional[PagedFile] = None,
    fill: float = DEFAULT_FILL,
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Build an R-tree by packing entries in Hilbert-curve order.

    Only 2-d data is supported (the curve is two-dimensional); use
    :func:`repro.rtree.bulk.bulk_load` (STR) for other dimensions.
    """
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    tree = RTree(config, file)
    if tree.dimension != 2:
        raise ValueError("Hilbert packing supports 2-d data only")
    if len(points) == 0:
        return tree
    if oids is None:
        oids = range(len(points))
    per_node = max(2 * tree.min_entries, int(tree.max_entries * fill))
    per_node = min(per_node, tree.max_entries)

    pts = np.asarray(points, dtype=float)
    keys = hilbert_sort_key(pts, order)
    ordering = sorted(range(len(points)), key=lambda i: keys[i])
    entries: List = [
        LeafEntry(tuple(pts[i]), oids[i]) for i in ordering
    ]

    level = 0
    while True:
        groups = [
            entries[i:i + per_node]
            for i in range(0, len(entries), per_node)
        ]
        # merge a dangling short tail into its predecessor
        if len(groups) > 1 and len(groups[-1]) < tree.min_entries:
            tail = groups.pop()
            merged = groups.pop() + tail
            half = len(merged) // 2
            groups.extend([merged[:half], merged[half:]])
        nodes = []
        for group in groups:
            node = tree._new_node(level)
            node.replace_entries(group)
            tree._write_node(node)
            nodes.append(node)
        if len(nodes) == 1:
            tree.root_id = nodes[0].page_id
            tree.height = level + 1
            tree._count = len(points)
            return tree
        entries = [InternalEntry(n.mbr(), n.page_id) for n in nodes]
        level += 1
