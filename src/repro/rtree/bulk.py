"""Sort-Tile-Recursive (STR) bulk loading.

Building a paper-size tree (up to 80K points) by one-at-a-time R*
insertion is exact but slow; STR packing (Leutenegger et al.) builds an
equivalent-height tree in one pass, which is why the experiment harness
defaults to it (``REPRO_BUILD=str``; set ``dynamic`` for insertion-built
trees).  The fill factor below the maximum keeps node occupancy (and
therefore node counts and tree heights) close to a dynamically-built
R*-tree.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.node import Entry
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.paged_file import PagedFile

#: Default node occupancy for packed trees, chosen to match the ~70 %
#: average fill of dynamically built R*-trees.
DEFAULT_FILL = 0.7


def bulk_load(
    points: Sequence[Sequence[float]],
    oids: Optional[Sequence[int]] = None,
    config: Optional[RTreeConfig] = None,
    file: Optional[PagedFile] = None,
    fill: float = DEFAULT_FILL,
) -> RTree:
    """Build an R-tree over ``points`` with STR packing."""
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    tree = RTree(config, file)
    if len(points) == 0:
        return tree
    if oids is None:
        oids = range(len(points))
    # At least 2m per packed node so a trailing small tile can always be
    # merged with its neighbour and re-split into two legal nodes.
    per_node = max(2 * tree.min_entries, int(tree.max_entries * fill))
    per_node = min(per_node, tree.max_entries)
    entries: List[Entry] = [
        LeafEntry(tuple(p), oid) for p, oid in zip(points, oids)
    ]

    level = 0
    while True:
        nodes = _pack_level(tree, entries, level, per_node)
        if len(nodes) == 1:
            root = nodes[0]
            tree.root_id = root.page_id
            tree.height = level + 1
            tree._count = len(points)
            return tree
        entries = [InternalEntry(n.mbr(), n.page_id) for n in nodes]
        level += 1


def _pack_level(tree: RTree, entries: List[Entry], level: int, per_node: int):
    """Tile one level's entries into nodes of ``per_node`` entries."""
    groups = _str_tiles(
        entries, per_node, tree.dimension, tree.min_entries, tree.max_entries
    )
    nodes = []
    for group in groups:
        node = tree._new_node(level)
        node.replace_entries(group)
        tree._write_node(node)
        nodes.append(node)
    return nodes


def _str_tiles(
    entries: List[Entry],
    per_node: int,
    dimension: int,
    min_entries: int,
    max_entries: int,
) -> List[List[Entry]]:
    """Recursively sort-and-tile entries across dimensions."""

    def center(entry: Entry, axis: int) -> float:
        m = entry.mbr
        return (m.lo[axis] + m.hi[axis]) / 2.0

    def tile(items: List[Entry], axis: int) -> List[List[Entry]]:
        if len(items) <= per_node:
            return [items]
        items = sorted(items, key=lambda e: center(e, axis))
        if axis == dimension - 1:
            return [
                items[i:i + per_node]
                for i in range(0, len(items), per_node)
            ]
        node_estimate = math.ceil(len(items) / per_node)
        slabs = math.ceil(node_estimate ** (1.0 / (dimension - axis)))
        slab_size = math.ceil(len(items) / slabs)
        groups: List[List[Entry]] = []
        for i in range(0, len(items), slab_size):
            groups.extend(tile(items[i:i + slab_size], axis + 1))
        return groups

    groups = tile(list(entries), 0)
    if len(groups) == 1:
        return groups  # single (root-bound) group may be any size
    # Tiling can leave a small trailing group per slab; merge each into
    # its predecessor, re-splitting when the merge would overflow.
    # Since per_node >= 2 * min_entries, both halves of a re-split are
    # legal nodes.
    fixed: List[List[Entry]] = []
    for group in groups:
        if fixed and len(group) < min_entries:
            merged = fixed.pop() + group
            if len(merged) <= max_entries:
                fixed.append(merged)
            else:
                half = len(merged) // 2
                fixed.append(merged[:half])
                fixed.append(merged[half:])
        else:
            fixed.append(group)
    return fixed
