"""R-tree nodes.

A :class:`Node` is the decoded form of one disk page: its level (0 for
leaves), its entries, and lazily-built NumPy views of the entry
geometry.  The NumPy views (``lo_array`` / ``hi_array`` /
``points_array``) are what the CPQ algorithms feed to the vectorised
metrics; they are invalidated whenever the entry list changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.geometry.mbr import MBR
from repro.rtree.entries import InternalEntry, LeafEntry

Entry = Union[LeafEntry, InternalEntry]


class Node:
    """One R-tree node (page image, decoded)."""

    __slots__ = ("page_id", "level", "entries", "_lo", "_hi", "_mbr")

    def __init__(self, page_id: int, level: int, entries: Optional[List[Entry]] = None):
        self.page_id = page_id
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None
        self._mbr: Optional[MBR] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- geometry views -----------------------------------------------------

    def mbr(self) -> MBR:
        """The tightest MBR covering all entries (the node's directory MBR)."""
        if self._mbr is None:
            if not self.entries:
                raise ValueError("empty node has no MBR")
            self._mbr = MBR.union_all(e.mbr for e in self.entries)
        return self._mbr

    def lo_array(self) -> np.ndarray:
        """Per-entry MBR lows, shape ``(len(self), k)``."""
        self._build_arrays()
        return self._lo

    def hi_array(self) -> np.ndarray:
        """Per-entry MBR highs, shape ``(len(self), k)``."""
        self._build_arrays()
        return self._hi

    def points_array(self) -> np.ndarray:
        """Leaf point coordinates, shape ``(len(self), k)``."""
        if not self.is_leaf:
            raise ValueError("points_array is only defined for leaves")
        self._build_arrays()
        return self._lo

    def _build_arrays(self) -> None:
        if self._lo is not None:
            return
        # ``_lo`` doubles as the "built" guard, so it must be published
        # last: concurrent readers that observe it non-None must also
        # see ``_hi`` (nodes are shared read-only between queries).
        if self.is_leaf:
            pts = np.array([e.point for e in self.entries], dtype=float)
            self._hi = pts
            self._lo = pts
        else:
            self._hi = np.array([e.mbr.hi for e in self.entries], dtype=float)
            self._lo = np.array([e.mbr.lo for e in self.entries], dtype=float)

    # -- mutation ----------------------------------------------------------------

    def add(self, entry: Entry) -> None:
        self.entries.append(entry)
        self.invalidate_caches()

    def remove_at(self, index: int) -> Entry:
        entry = self.entries.pop(index)
        self.invalidate_caches()
        return entry

    def replace_entries(self, entries: Sequence[Entry]) -> None:
        self.entries = list(entries)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        self._lo = None
        self._hi = None
        self._mbr = None

    # -- (de)serialisation adapters ------------------------------------------

    def to_tuples(self):
        """The serializer's neutral representation of this node."""
        if self.is_leaf:
            return [(e.point, e.oid) for e in self.entries]
        return [(e.mbr.lo, e.mbr.hi, e.child_id) for e in self.entries]

    @classmethod
    def from_tuples(cls, page_id: int, level: int, tuples) -> "Node":
        if level == 0:
            entries: List[Entry] = [
                LeafEntry(point, oid) for point, oid in tuples
            ]
        else:
            entries = [
                InternalEntry(MBR(lo, hi), child) for lo, hi, child in tuples
            ]
        return cls(page_id, level, entries)

    @classmethod
    def from_arrays(
        cls,
        page_id: int,
        level: int,
        tuples,
        lo: Optional[np.ndarray],
        hi: Optional[np.ndarray],
    ) -> "Node":
        """Build a node with its geometry arrays pre-attached.

        ``lo`` / ``hi`` come from ``NodeSerializer.deserialize_arrays``
        and must mirror what ``_build_arrays`` would compute from
        ``tuples`` (for leaves: the same array twice).  Attaching them
        here skips the lazy per-entry rebuild on the query path; any
        later mutation still invalidates them as usual.
        """
        node = cls.from_tuples(page_id, level, tuples)
        if lo is not None and len(node.entries):
            node._hi = hi
            node._lo = lo
        return node

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node(page={self.page_id}, {kind}, entries={len(self.entries)})"
