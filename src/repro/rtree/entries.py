"""Node entry types.

A leaf entry carries an indexed point and its object id; an internal
entry carries the MBR of a child node and the child's page id.  Both
expose ``mbr`` so split and choose-subtree logic can treat them
uniformly (a point is its own degenerate MBR).
"""

from __future__ import annotations

from typing import Tuple

from repro.geometry.mbr import MBR


class LeafEntry:
    """A point and the identifier of the database object it represents."""

    __slots__ = ("point", "oid", "_mbr")

    def __init__(self, point: Tuple[float, ...], oid: int):
        self.point = tuple(float(v) for v in point)
        self.oid = int(oid)
        self._mbr = None

    @property
    def mbr(self) -> MBR:
        # Cached: split/choose-subtree logic touches this in tight loops.
        if self._mbr is None:
            self._mbr = MBR(self.point, self.point)
        return self._mbr

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LeafEntry)
            and other.point == self.point
            and other.oid == self.oid
        )

    def __hash__(self) -> int:
        return hash((self.point, self.oid))

    def __repr__(self) -> str:
        return f"LeafEntry(point={self.point}, oid={self.oid})"


class InternalEntry:
    """A child node's MBR and page id."""

    __slots__ = ("mbr", "child_id")

    def __init__(self, mbr: MBR, child_id: int):
        self.mbr = mbr
        self.child_id = int(child_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InternalEntry)
            and other.mbr == self.mbr
            and other.child_id == self.child_id
        )

    def __hash__(self) -> int:
        return hash((self.mbr, self.child_id))

    def __repr__(self) -> str:
        return f"InternalEntry(mbr={self.mbr}, child_id={self.child_id})"
