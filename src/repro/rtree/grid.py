"""Grid-file packing: a uniform-grid alternative to STR bulk loading.

Corral et al. evaluate their algorithms on R*-trees, but the closest
pair machinery only needs *some* disk-based hierarchy of MBRs.  This
module packs points through a **uniform spatial grid** instead of
STR's sort-tile recursion: the workspace bounding box is cut into
equal cells per axis, cells are ordered along the Hilbert curve
(:mod:`repro.rtree.hilbert`; row-major where the 2-d curve does not
apply), points are sorted by cell id (then by position within a cell
for determinism), and consecutive runs fill leaves at the same
``fill`` factor ``rtree/bulk.py`` uses.  Upper levels reuse STR tiling over the leaf
MBRs (:func:`repro.rtree.bulk._pack_level`), so the result is a
structurally valid tree in the same page format -- every traversal,
shard worker and snapshot facility works on it unchanged.

Why bother?  Grid assignment is one pass of arithmetic (no recursive
multi-axis sorting) and on *uniformly* distributed data the
curve-ordered cells produce compact leaf runs with little overlap --
query I/O at parity with STR (``benchmarks/bench_catalog.py``
measures this).  On clustered or skewed data most cells are empty
while a few overflow, so runs spanning many cells produce elongated,
overlapping leaves and query I/O degrades; the cost model's
:func:`~repro.analysis.cost_model.grid_occupancy_cv` skew statistic is
how the planner predicts which regime a dataset is in (see
``docs/CATALOG.md``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.rtree.bulk import DEFAULT_FILL, _pack_level
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.hilbert import hilbert_index
from repro.rtree.node import Entry
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.paged_file import PagedFile

#: Cell-resolution multiplier of :func:`grid_load` over the one-cell-
#: per-leaf baseline of :func:`grid_cells_per_axis`.  Finer cells make
#: the Hilbert cell order approximate a point-level curve sort, so
#: consecutive full-leaf runs stay compact instead of drifting across
#: coarse cell boundaries (the difference between STR-parity and ~2x
#: STR's query I/O on uniform data).
PACK_REFINEMENT = 4


def grid_cells_per_axis(n: int, per_node: int, dimension: int) -> int:
    """Default grid resolution: about one cell per packed leaf.

    ``ceil((n / per_node) ** (1/d))`` cells per axis makes the expected
    occupancy of a cell one leaf's worth of points, so on uniform data
    each leaf covers roughly one cell.
    """
    if n <= 0:
        return 1
    leaves = max(1, math.ceil(n / per_node))
    return max(1, math.ceil(leaves ** (1.0 / dimension)))


def _bounding_box(points: Sequence[Sequence[float]], dimension: int):
    lows = [math.inf] * dimension
    highs = [-math.inf] * dimension
    for point in points:
        for axis in range(dimension):
            value = float(point[axis])
            if value < lows[axis]:
                lows[axis] = value
            if value > highs[axis]:
                highs[axis] = value
    return lows, highs


def _cell_id(point: Sequence[float], lows, spans, cells: int,
             dimension: int) -> int:
    """Row-major cell id of one point (clamped to the grid)."""
    cell = 0
    for axis in range(dimension):
        span = spans[axis]
        if span <= 0.0:
            index = 0
        else:
            index = int((float(point[axis]) - lows[axis]) / span * cells)
            if index >= cells:
                index = cells - 1
            elif index < 0:
                index = 0
        cell = cell * cells + index
    return cell


def grid_load(
    points: Sequence[Sequence[float]],
    oids: Optional[Sequence[int]] = None,
    config: Optional[RTreeConfig] = None,
    file: Optional[PagedFile] = None,
    fill: float = DEFAULT_FILL,
    cells_per_axis: Optional[int] = None,
) -> RTree:
    """Build an R-tree over ``points`` by uniform-grid packing.

    Same signature and page format as
    :func:`repro.rtree.bulk.bulk_load`; only the leaf-level point
    ordering differs (row-major grid cells instead of STR tiles).
    ``cells_per_axis`` overrides the resolution
    :func:`grid_cells_per_axis` derives from the point count.
    """
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    tree = RTree(config, file)
    if len(points) == 0:
        return tree
    if oids is None:
        oids = range(len(points))
    per_node = max(2 * tree.min_entries, int(tree.max_entries * fill))
    per_node = min(per_node, tree.max_entries)
    dimension = tree.dimension
    if cells_per_axis is None:
        cells_per_axis = PACK_REFINEMENT * grid_cells_per_axis(
            len(points), per_node, dimension
        )
    lows, highs = _bounding_box(points, dimension)
    spans = [highs[axis] - lows[axis] for axis in range(dimension)]

    if dimension == 2:
        # Hilbert order over the cells: consecutive cell ids are
        # spatially adjacent, so full-leaf runs form compact blobs.
        order = max(1, (cells_per_axis - 1).bit_length())
        side = 1 << order

        def cell_key(point):
            indexes = []
            for axis in range(dimension):
                span = spans[axis]
                if span <= 0.0:
                    indexes.append(0)
                    continue
                index = int(
                    (float(point[axis]) - lows[axis]) / span * side
                )
                indexes.append(min(max(index, 0), side - 1))
            return hilbert_index(indexes[0], indexes[1], order=order)
    else:
        # The curve is 2-d; other dimensions keep row-major cell ids.
        def cell_key(point):
            return _cell_id(
                point, lows, spans, cells_per_axis, dimension
            )

    def sort_key(item):
        point, __ = item
        return (
            cell_key(point),
            tuple(float(v) for v in point),
        )

    ordered = sorted(zip(points, oids), key=sort_key)
    entries: List[Entry] = [
        LeafEntry(tuple(float(v) for v in p), oid) for p, oid in ordered
    ]

    # Leaves: consecutive runs of the grid order, with the same
    # trailing-group repair bulk loading performs (per_node >= 2m, so
    # a merged overflow always re-splits into two legal nodes).
    groups = [
        entries[i:i + per_node]
        for i in range(0, len(entries), per_node)
    ]
    if len(groups) > 1 and len(groups[-1]) < tree.min_entries:
        tail = groups.pop()
        merged = groups.pop() + tail
        if len(merged) <= tree.max_entries:
            groups.append(merged)
        else:
            half = len(merged) // 2
            groups.append(merged[:half])
            groups.append(merged[half:])
    nodes = []
    for group in groups:
        node = tree._new_node(0)
        node.replace_entries(group)
        tree._write_node(node)
        nodes.append(node)

    # Upper levels: STR tiling over the leaf MBRs (the grid only
    # dictates the leaf-level point order).
    level = 1
    while len(nodes) > 1:
        upper = [InternalEntry(n.mbr(), n.page_id) for n in nodes]
        nodes = _pack_level(tree, upper, level, per_node)
        level += 1
    root = nodes[0]
    tree.root_id = root.page_id
    tree.height = max(level, 1)
    tree._count = len(points)
    return tree


def grid_occupancy(
    points: Sequence[Sequence[float]],
    cells_per_axis: int,
    dimension: int = 2,
) -> Dict[int, int]:
    """Points per (occupied) grid cell, keyed by row-major cell id."""
    if cells_per_axis < 1:
        raise ValueError("cells_per_axis must be >= 1")
    counts: Dict[int, int] = {}
    if len(points) == 0:
        return counts
    lows, highs = _bounding_box(points, dimension)
    spans = [highs[axis] - lows[axis] for axis in range(dimension)]
    for point in points:
        cell = _cell_id(point, lows, spans, cells_per_axis, dimension)
        counts[cell] = counts.get(cell, 0) + 1
    return counts
