"""CRC-framed coordinator/shard reply envelopes.

The coordinator and its shard processes exchange Python objects over
``multiprocessing`` queues, which normally makes the wire invisible --
and therefore makes wire damage *undetectable*: a truncated or
bit-flipped reply would either unpickle into garbage pairs (a silent
wrong answer, the one unforgivable failure for a K-CPQ engine) or
raise an arbitrary exception deep inside the collector.

So shard replies travel as explicit frames, extending the WAL's
CRC discipline (:mod:`repro.storage.wal`) to the process wire::

    magic (uint16) | length (uint32) | crc32 (uint32) | payload

with the CRC covering length and payload (a pickled dict).  The
coordinator verifies every frame before trusting a single pair;
damage of any shape -- truncation, corruption, an empty buffer --
raises :class:`FrameError`, which the retry machinery treats exactly
like a failed shard attempt: detected, counted, and retried, never
merged.  :mod:`repro.net.faults` injects both damage shapes through
:func:`corrupt_frame` / :func:`truncate_frame`.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any

#: Stamp leading every reply frame (ASCII ``"NF"`` -- net frame).
FRAME_MAGIC = 0x464E

#: magic, payload length, crc32 -- 10 bytes.
_HEADER = struct.Struct("<HII")


class FrameError(RuntimeError):
    """A reply frame failed its magic, length or CRC check."""


def encode_frame(payload: Any) -> bytes:
    """Frame one payload object for the coordinator wire."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(struct.pack("<I", len(body)))
    crc = zlib.crc32(body, crc) & 0xFFFFFFFF
    return _HEADER.pack(FRAME_MAGIC, len(body), crc) + body


def decode_frame(data: bytes) -> Any:
    """Verify and unpickle one frame; raises :class:`FrameError`.

    Every failure shape maps to the same typed error: short header,
    wrong magic, short payload (truncation), CRC mismatch (corruption)
    and -- defensively -- an unpicklable body behind a valid CRC.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise FrameError(f"frame is {type(data).__name__}, not bytes")
    if len(data) < _HEADER.size:
        raise FrameError(f"short frame header ({len(data)} bytes)")
    magic, length, crc = _HEADER.unpack_from(data, 0)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:04X}")
    body = bytes(data[_HEADER.size:])
    if len(body) != length:
        raise FrameError(
            f"truncated frame: header says {length} bytes, got {len(body)}"
        )
    actual = zlib.crc32(struct.pack("<I", length))
    actual = zlib.crc32(body, actual) & 0xFFFFFFFF
    if actual != crc:
        raise FrameError("frame CRC mismatch (corrupt payload)")
    try:
        return pickle.loads(body)
    except Exception as exc:  # pragma: no cover -- CRC passed, bad pickle
        raise FrameError(f"frame payload failed to unpickle: {exc}") from exc
