"""Retry and hedging policies for the coordinator's shard attempts.

Both policies are deliberately small frozen dataclasses, mirroring the
storage tier's :class:`repro.storage.buffer.RetryPolicy` one layer up:
the *storage* policy governs re-reading a page from one device, this
module governs re-dispatching an idempotent chunk of a scatter-gather
query across shard processes.  Chunks are safe to duplicate -- a shard
executes them read-only against a pinned snapshot generation and the
coordinator deduplicates replies by attempt id, accepting exactly one
payload per chunk -- which is what makes both retries and hedges sound
(see ``docs/NETWORK.md``).

:class:`RetryPolicy` shapes *when to give up and try elsewhere*:
exponential backoff with seeded jitter so a thundering herd of
retries against a sick shard decorrelates, bounded by
``max_attempts`` per chunk.

:class:`HedgePolicy` shapes *when to stop waiting and duplicate*: once
an attempt has been outstanding longer than a trailing latency
quantile of recently completed chunks, a duplicate is dispatched to a
sibling shard and whichever reply lands first wins.  Until enough
samples exist the floor applies, so cold starts hedge conservatively
rather than not at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent shard chunks.

    ``max_attempts`` counts every dispatch of one chunk (the first
    attempt included); ``delay(n)`` is slept before re-dispatch number
    ``n`` (1-based over *failures*, so the first retry waits roughly
    ``base_delay_s``).  Jitter is drawn from the caller's seeded RNG:
    deterministic schedules stay deterministic.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 0.5
    #: Fraction of the computed delay randomised away (0 disables).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, failures: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before the retry following this many failures."""
        if failures < 1:
            return 0.0
        delay = min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** (failures - 1)),
        )
        if self.jitter and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class HedgePolicy:
    """When an outstanding attempt is slow enough to duplicate.

    ``threshold(samples)`` is the wait after which a chunk's only live
    attempt earns a hedge: the ``quantile`` of the trailing completed
    chunk latencies once ``min_samples`` exist, never below
    ``floor_s``.  ``max_hedges`` bounds duplicates per chunk (the
    hedge itself can be slow too); ``enabled=False`` turns the whole
    mechanism off, for baselines and benchmarks.
    """

    enabled: bool = True
    quantile: float = 0.95
    min_samples: int = 8
    floor_s: float = 0.05
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.floor_s < 0:
            raise ValueError("floor_s must be >= 0")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be >= 0")

    def threshold(self, samples: Sequence[float]) -> float:
        """Outstanding-time threshold given recent chunk latencies."""
        if len(samples) < self.min_samples:
            return self.floor_s
        ordered = sorted(samples)
        rank = max(1, int(round(self.quantile * len(ordered))))
        return max(self.floor_s, ordered[min(rank, len(ordered)) - 1])
