"""Closed-loop multi-client load generator for the network tier.

``run_loadgen`` drives a :class:`~repro.net.NetServer` the way a
serving fleet is actually measured: C worker threads, each with its
own persistent :class:`~repro.net.NetClient` connection, each issuing
its next request only after the previous response arrives (closed
loop -- offered load adapts to service capacity, so the numbers are
*sustained* QPS, not an open-loop arrival fantasy).  Workers cycle
through the given request templates; latency is wall time around one
complete exchange, recorded per request so the summary can report
p50/p99 tails alongside throughput.

The summary dict is the machine-readable shape the benchmark writes to
``BENCH_network_qps.json`` (see ``benchmarks/bench_network.py``) and
the CLI's ``loadgen`` subcommand prints.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Sequence

from repro.net.client import NetClient, NetError


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending, non-empty list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_loadgen(
    host: str,
    port: int,
    requests: Sequence[Any],
    *,
    clients: int = 4,
    duration_s: float = 5.0,
    warmup_s: float = 0.0,
    timeout_s: float = 60.0,
) -> Dict[str, Any]:
    """Drive the server closed-loop; returns the throughput summary.

    ``requests`` are service request objects (usually
    :class:`~repro.service.CPQRequest` with ``use_cache=False`` so
    every exchange does real work); each worker cycles through them,
    offset by its worker id so concurrent workers spread across the
    templates.  ``warmup_s`` runs unrecorded traffic first (buffer
    pools, breaker state, connection setup).  Responses with a
    non-``ok`` status and transport errors both count as ``errors``
    and record no latency.
    """
    if not requests:
        raise ValueError("need at least one request template")
    if clients < 1:
        raise ValueError("clients must be >= 1")

    latencies_by_worker: List[List[float]] = [[] for _ in range(clients)]
    errors_by_worker = [0] * clients
    start_barrier = threading.Barrier(clients + 1)
    measure_started = threading.Event()
    stop = threading.Event()

    def worker(worker_id: int) -> None:
        client = NetClient(host, port, timeout_s=timeout_s)
        cursor = worker_id  # spread workers across the templates
        try:
            start_barrier.wait()
            while not stop.is_set():
                request = requests[cursor % len(requests)]
                cursor += 1
                t0 = time.perf_counter()
                transport_error = False
                try:
                    response = client.query(request)
                    ok = response.ok
                except NetError:
                    ok = False
                    transport_error = True
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                if transport_error:
                    # A dead or unreachable server fails in
                    # microseconds; don't spin the closed loop into a
                    # million-error tally.
                    time.sleep(0.02)
                if not measure_started.is_set():
                    continue  # warmup traffic: neither counted nor timed
                if ok:
                    latencies_by_worker[worker_id].append(elapsed_ms)
                else:
                    errors_by_worker[worker_id] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,),
                         name=f"loadgen-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    if warmup_s > 0:
        time.sleep(warmup_s)
    measure_started.set()
    measured_from = time.perf_counter()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join()
    measured_s = time.perf_counter() - measured_from

    latencies = sorted(
        value for bucket in latencies_by_worker for value in bucket
    )
    completed = len(latencies)
    errors = sum(errors_by_worker)
    attempted = completed + errors
    return {
        "clients": clients,
        "duration_s": round(measured_s, 3),
        "requests": completed,
        "errors": errors,
        "error_rate": round(errors / attempted, 6) if attempted else 0.0,
        "qps": round(completed / measured_s, 2) if measured_s else 0.0,
        "mean_ms": (round(sum(latencies) / completed, 3)
                    if completed else 0.0),
        "p50_ms": round(_percentile(latencies, 50.0), 3),
        "p99_ms": round(_percentile(latencies, 99.0), 3),
        "max_ms": round(latencies[-1], 3) if latencies else 0.0,
    }
