"""JSON wire format for the network tier.

One versioned envelope carries every message the edge speaks: the
three service request kinds (:class:`~repro.service.CPQRequest`,
:class:`~repro.service.KNNRequest`, :class:`~repro.service.
RangeRequest`) and the structured :class:`~repro.service.
QueryResponse`, including the full :class:`~repro.core.result.
CPQResult` payload (pairs, every :class:`~repro.storage.stats.
QueryStats` counter, ``stats.extra``), the planner's
:class:`~repro.service.PlanDecision`, and the resilience annotations
(``stale``, ``partial``, ``read_retries``).

Design rules:

* **Versioned** -- every envelope leads with ``"v"``; a decoder that
  sees a version it does not speak raises :class:`WireError` instead
  of guessing (the server answers 400, never garbage).
* **Round-trip exact** -- floats travel as JSON numbers, which Python
  serialises with shortest-round-trip ``repr``; decoding reconstructs
  tuples from JSON arrays, so a decoded :class:`ClosestPair` list
  compares ``==`` (values AND order) to the serial engine's.  This is
  what lets the end-to-end tests assert byte parity *through the
  socket*.
* **Self-describing errors** -- malformed input raises
  :class:`WireError` (a ``ValueError``) carrying what was wrong;
  nothing partial is ever returned.

``dumps_*``/``loads_*`` wrap the dict codecs with ``json`` for callers
that want bytes (the server and client use these).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Union

from repro.core.constraints import ColorSpec, RangeSpec
from repro.core.result import ClosestPair, CPQResult
from repro.rtree.entries import LeafEntry
from repro.service import (
    CPQRequest,
    KNNRequest,
    PlanDecision,
    QueryResponse,
    RangeRequest,
)
from repro.storage.stats import QueryStats

#: Wire protocol version; bump on any incompatible envelope change.
#: Version 2 adds the optional ``range`` / ``colors`` fields to the
#: cpq request envelope.  Version 3 adds the ``sql`` op: the envelope
#: carries one CPQL statement (:mod:`repro.query.cpql`) which the
#: *server* parses and plans against its catalog -- the client needs
#: no parser and no knowledge of dataset layout.  Each addition is
#: backwards-compatible -- absent fields decode to unconstrained
#: queries -- so version-1 and version-2 envelopes remain accepted
#: (:data:`ACCEPTED_VERSIONS`); only ``op: sql`` itself demands v3.
WIRE_VERSION = 3

#: Envelope versions this decoder speaks.
ACCEPTED_VERSIONS = frozenset({1, 2, 3})


@dataclass(frozen=True)
class SQLRequest:
    """A CPQL statement travelling to a catalog-attached server.

    Unlike the three structured requests this is *textual*: ``sql``
    is parsed server-side (:func:`repro.query.cpql.parse_cpql`) and
    compiled onto the pair named by its ``FROM`` clause, so the wire
    never fixes the algorithm, constraints or even the pair -- the
    statement does.  ``pair`` optionally overrides the derived pair
    name.  Requires wire version >= 3.
    """

    kind: ClassVar[str] = "sql"

    sql: str
    pair: Optional[str] = None
    deadline_ms: Optional[float] = None
    use_cache: bool = True


Request = Union[CPQRequest, KNNRequest, RangeRequest, SQLRequest]


class WireError(ValueError):
    """Malformed, unsupported, or wrong-version wire payload."""


def _require_version(obj: Dict[str, Any]) -> int:
    version = obj.get("v")
    if version not in ACCEPTED_VERSIONS:
        raise WireError(
            f"unsupported wire version {version!r}; this endpoint "
            f"speaks versions {sorted(ACCEPTED_VERSIONS)}"
        )
    return version


def _json_safe(value: Any) -> Any:
    """Deep-copy ``value`` into JSON-representable primitives.

    ``stats.extra`` is an open dict (parallel counters, fallback
    records, shard annotations); anything a subsystem stuffed in that
    JSON cannot carry is replaced by its ``repr`` rather than failing
    the whole response.
    """
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

def encode_request(request: Request) -> Dict[str, Any]:
    """One service request as a versioned JSON-serialisable envelope."""
    out: Dict[str, Any] = {
        "v": WIRE_VERSION,
        "op": request.kind,
        "pair": request.pair,
        "deadline_ms": request.deadline_ms,
        "use_cache": request.use_cache,
    }
    if request.kind == "cpq":
        out.update(
            k=request.k,
            algorithm=request.algorithm,
            height_strategy=request.height_strategy,
            tie_break=_json_safe(request.tie_break),
            maxmax_pruning=request.maxmax_pruning,
            use_vectorized=request.use_vectorized,
            workers=request.workers,
        )
        # Constraint fields (wire v2) are emitted only when set, so an
        # unconstrained request's envelope stays v1-shaped apart from
        # the version number.
        if request.range is not None:
            out["range"] = {
                "lo": list(request.range.lo),
                "hi": list(request.range.hi),
                "mode": request.range.mode,
            }
        if request.colors is not None:
            colors = request.colors
            out["colors"] = {
                "modulus": colors.modulus,
                "colors_p": (
                    list(colors.colors_p)
                    if colors.colors_p is not None else None
                ),
                "colors_q": (
                    list(colors.colors_q)
                    if colors.colors_q is not None else None
                ),
                "distinct": colors.distinct,
            }
    elif request.kind == "sql":
        out["sql"] = request.sql
    elif request.kind == "knn":
        out.update(point=list(request.point), k=request.k,
                   side=request.side)
    elif request.kind == "range":
        out.update(lo=list(request.lo), hi=list(request.hi),
                   side=request.side)
    else:  # pragma: no cover -- the union above is exhaustive
        raise WireError(f"unknown request kind {request.kind!r}")
    return out


def _decode_range_spec(obj: Optional[Dict[str, Any]]) -> Optional[RangeSpec]:
    """Decode the v2 ``range`` field; absent (v1) means unconstrained."""
    if obj is None:
        return None
    return RangeSpec(
        lo=tuple(obj["lo"]),
        hi=tuple(obj["hi"]),
        mode=obj.get("mode", "both"),
    )


def _decode_color_spec(obj: Optional[Dict[str, Any]]) -> Optional[ColorSpec]:
    """Decode the v2 ``colors`` field; absent (v1) means uncolored."""
    if obj is None:
        return None
    colors_p = obj.get("colors_p")
    colors_q = obj.get("colors_q")
    return ColorSpec(
        modulus=int(obj["modulus"]),
        colors_p=tuple(colors_p) if colors_p is not None else None,
        colors_q=tuple(colors_q) if colors_q is not None else None,
        distinct=bool(obj.get("distinct", False)),
    )


def decode_request(obj: Dict[str, Any]) -> Request:
    """Decode a request envelope; raises :class:`WireError` on bad
    input (wrong version, unknown op, missing required fields)."""
    if not isinstance(obj, dict):
        raise WireError(f"request envelope must be an object, "
                        f"got {type(obj).__name__}")
    version = _require_version(obj)
    op = obj.get("op", "cpq")
    if op == "sql":
        if version < 3:
            raise WireError(
                f"op 'sql' requires wire version >= 3, got {version}"
            )
        sql = obj.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise WireError("'sql' request needs a non-empty sql string")
        return SQLRequest(
            sql=sql,
            pair=obj.get("pair"),
            deadline_ms=obj.get("deadline_ms"),
            use_cache=bool(obj.get("use_cache", True)),
        )
    common = {
        "pair": obj.get("pair", "default"),
        "deadline_ms": obj.get("deadline_ms"),
        "use_cache": bool(obj.get("use_cache", True)),
    }
    try:
        if op == "cpq":
            return CPQRequest(
                k=int(obj.get("k", 1)),
                algorithm=obj.get("algorithm", "auto"),
                height_strategy=obj.get("height_strategy",
                                        "fix-at-root"),
                tie_break=obj.get("tie_break"),
                maxmax_pruning=bool(obj.get("maxmax_pruning", True)),
                use_vectorized=bool(obj.get("use_vectorized", True)),
                workers=int(obj.get("workers", 0)),
                range=_decode_range_spec(obj.get("range")),
                colors=_decode_color_spec(obj.get("colors")),
                **common,
            )
        if op == "knn":
            return KNNRequest(
                point=tuple(obj["point"]),
                k=int(obj.get("k", 1)),
                side=obj.get("side", "p"),
                **common,
            )
        if op == "range":
            return RangeRequest(
                lo=tuple(obj["lo"]),
                hi=tuple(obj["hi"]),
                side=obj.get("side", "p"),
                **common,
            )
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad {op!r} request: {exc}") from exc
    raise WireError(f"unknown op {op!r}; expected cpq, knn, range or sql")


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def _encode_stats(stats: QueryStats) -> Dict[str, Any]:
    return {
        "disk_accesses": stats.disk_accesses,
        "buffer_hits": stats.buffer_hits,
        "distance_computations": stats.distance_computations,
        "node_pairs_visited": stats.node_pairs_visited,
        "max_queue_size": stats.max_queue_size,
        "queue_inserts": stats.queue_inserts,
        "extra": _json_safe(stats.extra),
    }


def _decode_stats(obj: Dict[str, Any]) -> QueryStats:
    return QueryStats(
        disk_accesses=int(obj.get("disk_accesses", 0)),
        buffer_hits=int(obj.get("buffer_hits", 0)),
        distance_computations=int(obj.get("distance_computations", 0)),
        node_pairs_visited=int(obj.get("node_pairs_visited", 0)),
        max_queue_size=int(obj.get("max_queue_size", 0)),
        queue_inserts=int(obj.get("queue_inserts", 0)),
        extra=dict(obj.get("extra", {})),
    )


def _encode_cpq_result(result: CPQResult) -> Dict[str, Any]:
    return {
        "pairs": [
            {"distance": p.distance, "p": list(p.p), "q": list(p.q),
             "p_oid": p.p_oid, "q_oid": p.q_oid}
            for p in result.pairs
        ],
        "stats": _encode_stats(result.stats),
        "algorithm": result.algorithm,
        "k": result.k,
    }


def _decode_cpq_result(obj: Dict[str, Any]) -> CPQResult:
    return CPQResult(
        pairs=[
            ClosestPair(
                distance=float(p["distance"]),
                p=tuple(float(v) for v in p["p"]),
                q=tuple(float(v) for v in p["q"]),
                p_oid=int(p.get("p_oid", 0)),
                q_oid=int(p.get("q_oid", 0)),
            )
            for p in obj.get("pairs", [])
        ],
        stats=_decode_stats(obj.get("stats", {})),
        algorithm=obj.get("algorithm", ""),
        k=int(obj.get("k", 1)),
    )


def _encode_result(kind: str, result: Any) -> Any:
    if result is None:
        return None
    if kind == "cpq":
        return _encode_cpq_result(result)
    if kind == "knn":
        return [
            {"distance": float(d), "point": list(e.point), "oid": e.oid}
            for d, e in result
        ]
    if kind == "range":
        return [{"point": list(e.point), "oid": e.oid} for e in result]
    raise WireError(f"unknown response kind {kind!r}")


def _decode_result(kind: str, payload: Any) -> Any:
    if payload is None:
        return None
    if kind == "cpq":
        return _decode_cpq_result(payload)
    if kind == "knn":
        return [
            (float(item["distance"]),
             LeafEntry(tuple(item["point"]), item.get("oid", 0)))
            for item in payload
        ]
    if kind == "range":
        return [
            LeafEntry(tuple(item["point"]), item.get("oid", 0))
            for item in payload
        ]
    raise WireError(f"unknown response kind {kind!r}")


def _encode_plan(plan: Optional[PlanDecision]) -> Optional[Dict]:
    return None if plan is None else plan.as_dict()


def _decode_plan(obj: Optional[Dict]) -> Optional[PlanDecision]:
    if obj is None:
        return None
    heights: Tuple[int, int] = tuple(obj.get("heights", (0, 0)))
    return PlanDecision(
        algorithm=obj["algorithm"],
        reason=obj.get("reason", ""),
        estimated_accesses=float(obj.get("estimated_accesses", 0.0)),
        estimated_distance=float(obj.get("estimated_distance", 0.0)),
        buffer_pages=int(obj.get("buffer_pages", 0)),
        height_p=int(heights[0]),
        height_q=int(heights[1]),
        k=int(obj.get("k", 1)),
        workers=int(obj.get("workers", 1)),
        estimated_speedup=float(obj.get("estimated_speedup", 1.0)),
        range_selectivity=(
            float(obj["range_selectivity"])
            if obj.get("range_selectivity") is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------

def encode_response(response: QueryResponse) -> Dict[str, Any]:
    """One :class:`QueryResponse` -- any status -- as an envelope.

    Every field round-trips, including the failure statuses' ``error``
    text and the resilience annotations; nothing is elided, so a
    client-side decode reconstructs exactly what the service resolved.
    """
    return {
        "v": WIRE_VERSION,
        "status": response.status,
        "kind": response.kind,
        "result": _encode_result(response.kind, response.result),
        "algorithm": response.algorithm,
        "plan": _encode_plan(response.plan),
        "cached": response.cached,
        "stale": response.stale,
        "partial": response.partial,
        "latency_ms": response.latency_ms,
        "disk_reads": response.disk_reads,
        "buffer_hits": response.buffer_hits,
        "read_retries": response.read_retries,
        "error": response.error,
    }


def decode_response(obj: Dict[str, Any]) -> QueryResponse:
    """Decode a response envelope back into a :class:`QueryResponse`."""
    if not isinstance(obj, dict):
        raise WireError(f"response envelope must be an object, "
                        f"got {type(obj).__name__}")
    _require_version(obj)
    try:
        kind = obj["kind"]
        return QueryResponse(
            status=obj["status"],
            kind=kind,
            result=_decode_result(kind, obj.get("result")),
            algorithm=obj.get("algorithm"),
            plan=_decode_plan(obj.get("plan")),
            cached=bool(obj.get("cached", False)),
            stale=bool(obj.get("stale", False)),
            partial=bool(obj.get("partial", False)),
            latency_ms=float(obj.get("latency_ms", 0.0)),
            disk_reads=int(obj.get("disk_reads", 0)),
            buffer_hits=int(obj.get("buffer_hits", 0)),
            read_retries=int(obj.get("read_retries", 0)),
            error=obj.get("error"),
        )
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad response envelope: {exc}") from exc


# ---------------------------------------------------------------------------
# Bytes-level conveniences
# ---------------------------------------------------------------------------

def dumps_request(request: Request) -> bytes:
    return json.dumps(encode_request(request)).encode("utf-8")


def loads_request(data: bytes) -> Request:
    try:
        obj = json.loads(data)
    except json.JSONDecodeError as exc:
        raise WireError(f"request is not valid JSON: {exc}") from exc
    return decode_request(obj)


def dumps_response(response: QueryResponse) -> bytes:
    return json.dumps(encode_response(response)).encode("utf-8")


def loads_response(data: bytes) -> QueryResponse:
    try:
        obj = json.loads(data)
    except json.JSONDecodeError as exc:
        raise WireError(f"response is not valid JSON: {exc}") from exc
    return decode_response(obj)
