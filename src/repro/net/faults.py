"""Deterministic wire-level fault injection for the network tier.

The storage tier proved its resilience against a seed-driven
:class:`~repro.storage.faults.FaultyPageStore`; this module is the
same instrument one layer up, aimed at the *wire* between the
coordinator and its shard processes (and, for the HTTP edge, between a
client and the server).  A :class:`NetFaultPlan` names the shapes and
probabilities; :class:`FaultyShardTransport` implements the injectable
transport seam of :class:`~repro.net.shard.ShardManager`:

* **drops** -- a job or reply silently vanishes (the lost-datagram /
  closed-connection shape; only a timeout can notice);
* **stalls** -- a message is delivered late, past the hedging
  threshold (the congested-link shape);
* **truncated / corrupt frames** -- a reply's CRC frame
  (:mod:`repro.net.frames`) arrives damaged, which the coordinator
  must detect and retry, never merge;
* **kills** -- the shard process dies mid-request (``SIGKILL``), the
  crash-under-load shape the supervisor must respawn.

Everything is deterministic given ``(plan.seed, operation sequence)``
-- one private :class:`random.Random` drives all decisions, exactly
like the storage injector -- so a chaos run that found a divergence
can be replayed.  ``max_consecutive`` bounds back-to-back losses per
shard and ``max_kills`` bounds process kills per transport lifetime,
which is what makes every bundled schedule *survivable*: a retry
budget deeper than the worst loss streak, plus exact coordinator
recovery, provably reaches an answer.  Named plans used by
``repro-cpq chaos-net`` live in :data:`SCHEDULES`.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.frames import _HEADER


@dataclass(frozen=True)
class NetFaultPlan:
    """One named wire-fault schedule: probabilities and shapes.

    All probabilities are per-message.  ``stall_s`` is how late a
    stalled message is delivered (through a timer, so the collector
    never blocks).  ``max_consecutive`` bounds back-to-back losses
    (drops, stalls and kills) per shard; ``max_kills`` caps process
    kills over the transport's lifetime so respawn backoff cannot be
    starved.
    """

    seed: int = 0
    #: Probability a message (job or reply) is silently dropped.
    p_drop: float = 0.0
    #: Probability a message is delivered ``stall_s`` late.
    p_stall: float = 0.0
    stall_s: float = 0.05
    #: Probability a reply frame loses its tail (detected by length).
    p_truncate: float = 0.0
    #: Probability a reply frame has one bit flipped (detected by CRC).
    p_corrupt: float = 0.0
    #: Probability a job's shard process is killed mid-request.
    p_kill: float = 0.0
    #: Upper bound on back-to-back losses charged to one shard.
    max_consecutive: int = 2
    #: Upper bound on process kills per transport lifetime.
    max_kills: int = 3

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_stall", "p_truncate", "p_corrupt",
                     "p_kill"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.stall_s < 0:
            raise ValueError("stall_s must be >= 0")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        if self.max_kills < 0:
            raise ValueError("max_kills must be >= 0")


#: Named plans for the chaos harness (``repro-cpq chaos-net
#: --schedule``).  Each is survivable by construction: loss streaks
#: stay below the default retry budget, kills are capped, and frame
#: damage is always detectable, so exact recovery always terminates.
SCHEDULES: Dict[str, NetFaultPlan] = {
    "none": NetFaultPlan(),
    "drop": NetFaultPlan(p_drop=0.05),
    "stall": NetFaultPlan(p_stall=0.15, stall_s=0.08),
    "truncate": NetFaultPlan(p_truncate=0.05),
    "corrupt": NetFaultPlan(p_corrupt=0.05),
    "kill": NetFaultPlan(p_kill=0.08, max_kills=2),
    "mixed": NetFaultPlan(p_drop=0.03, p_stall=0.03, stall_s=0.05,
                          p_truncate=0.02, p_corrupt=0.02, p_kill=0.02,
                          max_kills=1),
}


@dataclass
class NetFaultStats:
    """Counters of what the transport actually injected."""

    sends: int = 0
    deliveries: int = 0
    drops: int = 0
    stalls: int = 0
    truncated_frames: int = 0
    corrupt_frames: int = 0
    kills: int = 0

    @property
    def injected(self) -> int:
        """Total injected faults of any kind."""
        return (self.drops + self.stalls + self.truncated_frames
                + self.corrupt_frames + self.kills)

    def as_dict(self) -> Dict[str, int]:
        return {
            "sends": self.sends,
            "deliveries": self.deliveries,
            "drops": self.drops,
            "stalls": self.stalls,
            "truncated_frames": self.truncated_frames,
            "corrupt_frames": self.corrupt_frames,
            "kills": self.kills,
            "injected": self.injected,
        }


def truncate_frame(frame: bytes, rng: random.Random) -> bytes:
    """Cut a random-length tail off a frame (always detectable)."""
    floor = _HEADER.size  # keep the header so 'truncated' != 'garbage'
    if len(frame) <= floor + 1:
        return frame[:floor]
    return frame[:rng.randrange(floor, len(frame))]


def corrupt_frame(frame: bytes, rng: random.Random) -> bytes:
    """Flip one random payload bit of a frame (CRC must catch it)."""
    image = bytearray(frame)
    # Flip inside the CRC-covered region (length + payload) so the
    # damage is always the checksum's to catch, never the magic's.
    start = 2  # past the magic
    bit = rng.randrange(start * 8, len(image) * 8)
    image[bit // 8] ^= 1 << (bit % 8)
    return bytes(image)


class ShardTransport:
    """The default (perfect) coordinator<->shard transport.

    :class:`~repro.net.shard.ShardManager` routes every outbound job
    through :meth:`send` and every reply pulled off the shared outbox
    through :meth:`deliver`; subclasses get one seam to lose, delay,
    damage or escalate messages.  The base class is a transparent
    wire.
    """

    def send(self, shard, message) -> None:
        """Enqueue one job on the shard's inbox."""
        shard.inbox.put(message)

    def deliver(self, message, deliver: Callable[[tuple], None]) -> None:
        """Hand one reply to the coordinator's dispatch callback."""
        deliver(message)

    def close(self) -> None:
        """Release any transport-owned resources (timers)."""


class FaultyShardTransport(ShardTransport):
    """A :class:`ShardTransport` that fails on purpose, per plan.

    Jobs can be dropped, stalled, or escalated to a process kill
    mid-request; replies can be dropped, stalled, or have their CRC
    frame truncated / bit-flipped (the coordinator's frame check turns
    both into typed, retryable failures).  All decisions come from one
    seeded RNG; stalls re-deliver through daemon timers so the
    collector thread never blocks.
    """

    def __init__(self, plan: NetFaultPlan = NetFaultPlan()):
        self.plan = plan
        self.faults = NetFaultStats()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._consecutive: Dict[int, int] = {}
        self._timers: set = set()
        self._closed = False

    # -- loss-streak bookkeeping ------------------------------------------

    def _lose(self, shard_id: int) -> bool:
        """Charge one loss to a shard; False when the streak cap hit."""
        with self._lock:
            streak = self._consecutive.get(shard_id, 0)
            if streak >= self.plan.max_consecutive:
                return False
            self._consecutive[shard_id] = streak + 1
            return True

    def _clean(self, shard_id: int) -> None:
        with self._lock:
            self._consecutive.pop(shard_id, None)

    def _later(self, delay_s: float, action: Callable[[], None]) -> None:
        def fire() -> None:
            self._timers.discard(timer)
            if self._closed:
                return
            try:
                action()
            except (OSError, ValueError):  # pragma: no cover
                pass  # the queue went away under the stalled message
        timer = threading.Timer(delay_s, fire)
        timer.daemon = True
        self._timers.add(timer)
        timer.start()

    # -- the faulted wire --------------------------------------------------

    def send(self, shard, message) -> None:
        self.faults.sends += 1
        plan, rng = self.plan, self._rng
        roll_kill = plan.p_kill and rng.random() < plan.p_kill
        roll_drop = plan.p_drop and rng.random() < plan.p_drop
        roll_stall = plan.p_stall and rng.random() < plan.p_stall
        if roll_kill and self.faults.kills < plan.max_kills \
                and self._lose(shard.shard_id):
            # Mid-request: the job arrives, then the process dies
            # under it -- the shard never replies and the supervisor
            # must respawn it.
            shard.inbox.put(message)
            self.faults.kills += 1
            process = shard.process
            if process is not None:
                process.kill()
            return
        if roll_drop and self._lose(shard.shard_id):
            self.faults.drops += 1
            return
        if roll_stall and self._lose(shard.shard_id):
            self.faults.stalls += 1
            inbox = shard.inbox
            self._later(plan.stall_s, lambda: inbox.put(message))
            return
        self._clean(shard.shard_id)
        shard.inbox.put(message)

    def deliver(self, message, deliver: Callable[[tuple], None]) -> None:
        self.faults.deliveries += 1
        plan, rng = self.plan, self._rng
        shard_id = _reply_shard_id(message)
        if plan.p_drop and rng.random() < plan.p_drop \
                and self._lose(shard_id):
            self.faults.drops += 1
            return
        if plan.p_stall and rng.random() < plan.p_stall \
                and self._lose(shard_id):
            self.faults.stalls += 1
            self._later(plan.stall_s, lambda: deliver(message))
            return
        frame = message[-1] if message and isinstance(
            message[-1], (bytes, bytearray)) else None
        if frame is not None:
            if plan.p_truncate and rng.random() < plan.p_truncate:
                self.faults.truncated_frames += 1
                message = message[:-1] + (truncate_frame(frame, rng),)
            elif plan.p_corrupt and rng.random() < plan.p_corrupt:
                self.faults.corrupt_frames += 1
                message = message[:-1] + (corrupt_frame(frame, rng),)
        self._clean(shard_id)
        deliver(message)

    def close(self) -> None:
        self._closed = True
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()


def _reply_shard_id(message) -> int:
    """Best-effort shard id of a reply tuple (for streak accounting)."""
    try:
        return int(message[-2])
    except (TypeError, ValueError, IndexError):  # pragma: no cover
        return -1


class FaultyClientTransport:
    """Fault hooks for :class:`~repro.net.client.NetClient`.

    The client calls :meth:`before_send` ahead of every HTTP exchange
    and :meth:`transform_response` on every raw response body.  Drops
    raise :class:`ConnectionError` (the client's stale-keep-alive
    retry path picks those up -- one transparent reconnect, then a
    loud :class:`~repro.net.client.NetError`); stalls sleep; truncate /
    corrupt damage the body so the JSON layer rejects it.  The same
    seeded determinism as the shard transport.
    """

    def __init__(self, plan: NetFaultPlan = NetFaultPlan(),
                 sleep: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.faults = NetFaultStats()
        self._rng = random.Random(plan.seed)
        self._consecutive = 0
        self._sleep = sleep

    def before_send(self) -> None:
        self.faults.sends += 1
        plan, rng = self.plan, self._rng
        if plan.p_drop and rng.random() < plan.p_drop \
                and self._consecutive < plan.max_consecutive:
            self._consecutive += 1
            self.faults.drops += 1
            raise ConnectionError("injected connection drop")
        if plan.p_stall and rng.random() < plan.p_stall:
            self.faults.stalls += 1
            self._sleep(plan.stall_s)
        self._consecutive = 0

    def transform_response(self, body: bytes) -> bytes:
        self.faults.deliveries += 1
        plan, rng = self.plan, self._rng
        if plan.p_truncate and rng.random() < plan.p_truncate and body:
            self.faults.truncated_frames += 1
            return body[:rng.randrange(0, len(body))]
        if plan.p_corrupt and rng.random() < plan.p_corrupt and body:
            self.faults.corrupt_frames += 1
            image = bytearray(body)
            bit = rng.randrange(len(image) * 8)
            image[bit // 8] ^= 1 << (bit % 8)
            return bytes(image)
        return body
