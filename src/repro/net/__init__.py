"""The network tier: wire format, spatial shards, edge server, client.

``repro.net`` turns the in-process query service into a served system
(ROADMAP open item 1): :mod:`~repro.net.wire` defines the versioned
JSON envelopes, :mod:`~repro.net.shard` owns the multi-process spatial
shards and their scatter-gather K-heap merge, :mod:`~repro.net.server`
is the asyncio HTTP edge, :mod:`~repro.net.client` the keep-alive
client, and :mod:`~repro.net.loadgen` the closed-loop load generator
behind ``BENCH_network_qps.json``.  See ``docs/NETWORK.md``.
"""

from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.net.shard import ShardManager, TreeSpec, tree_spec
from repro.net.wire import (
    SQLRequest,
    WIRE_VERSION,
    WireError,
    decode_request,
    decode_response,
    dumps_request,
    dumps_response,
    encode_request,
    encode_response,
    loads_request,
    loads_response,
)

__all__ = [
    "SQLRequest",
    "WIRE_VERSION",
    "WireError",
    "NetClient",
    "NetServer",
    "ShardManager",
    "TreeSpec",
    "tree_spec",
    "decode_request",
    "decode_response",
    "dumps_request",
    "dumps_response",
    "encode_request",
    "encode_response",
    "loads_request",
    "loads_response",
]
