"""The network tier: wire format, spatial shards, edge server, client.

``repro.net`` turns the in-process query service into a served system
(ROADMAP open item 1): :mod:`~repro.net.wire` defines the versioned
JSON envelopes, :mod:`~repro.net.shard` owns the multi-process spatial
shards and their scatter-gather K-heap merge, :mod:`~repro.net.server`
is the asyncio HTTP edge, :mod:`~repro.net.client` the keep-alive
client, and :mod:`~repro.net.loadgen` the closed-loop load generator
behind ``BENCH_network_qps.json``.  See ``docs/NETWORK.md``.

The self-healing layer lives alongside: :mod:`~repro.net.frames` CRC-
checks every shard reply so damaged bytes become typed, retryable
failures; :mod:`~repro.net.retry` holds the backoff and hedging
policies the coordinator runs; :mod:`~repro.net.faults` is the seeded
wire-level fault injector behind ``repro-cpq chaos-net``.  See
``docs/RESILIENCE.md`` for the fault model.
"""

from repro.net.client import NetClient
from repro.net.faults import (
    SCHEDULES,
    FaultyClientTransport,
    FaultyShardTransport,
    NetFaultPlan,
    NetFaultStats,
    ShardTransport,
)
from repro.net.frames import FrameError, decode_frame, encode_frame
from repro.net.retry import HedgePolicy, RetryPolicy
from repro.net.server import NetServer
from repro.net.shard import ShardManager, TreeSpec, tree_spec
from repro.net.wire import (
    SQLRequest,
    WIRE_VERSION,
    WireError,
    decode_request,
    decode_response,
    dumps_request,
    dumps_response,
    encode_request,
    encode_response,
    loads_request,
    loads_response,
)

__all__ = [
    "SCHEDULES",
    "SQLRequest",
    "WIRE_VERSION",
    "FaultyClientTransport",
    "FaultyShardTransport",
    "FrameError",
    "HedgePolicy",
    "NetClient",
    "NetFaultPlan",
    "NetFaultStats",
    "NetServer",
    "RetryPolicy",
    "ShardManager",
    "ShardTransport",
    "TreeSpec",
    "WireError",
    "decode_frame",
    "encode_frame",
    "tree_spec",
    "decode_request",
    "decode_response",
    "dumps_request",
    "dumps_response",
    "encode_request",
    "encode_response",
    "loads_request",
    "loads_response",
]
