"""Asyncio HTTP/JSON edge for the query service.

:class:`NetServer` is a deliberately small HTTP/1.1 server built on
``asyncio.start_server`` -- stdlib only, no frameworks.  It terminates
keep-alive connections, frames requests by ``Content-Length``, and
speaks the versioned JSON envelopes of :mod:`repro.net.wire`:

* ``POST /v1/query`` -- one service request envelope in, one
  :class:`~repro.service.QueryResponse` envelope out.  The HTTP status
  mirrors the structured ``status`` field (200 ``ok``, 503
  ``overloaded``/``rejected``/``unavailable``, 504
  ``deadline_exceeded``, 500 ``error``); malformed envelopes are 400
  with a ``WireError`` message and never reach the service.
* ``POST /v1/sql`` -- one CPQL statement (wire v3 ``sql`` envelope)
  parsed server-side and resolved against the service's attached
  catalog; syntax errors and unknown datasets answer 400 with the
  parser position in the error text.
* ``GET /healthz`` -- liveness plus per-shard breaker states when a
  :class:`~repro.net.shard.ShardManager` is attached.
* ``GET /stats`` -- the service metrics snapshot
  (:meth:`~repro.service.metrics.ServiceMetrics.snapshot`).

Concurrency model: the asyncio loop only parses and frames; queries
run on the :class:`~repro.service.QueryService` thread pool exactly as
in-process callers use it, and each handler awaits its
:class:`~repro.service.PendingQuery` through a dedicated waiter-thread
executor (waiters block on an event, so they are cheap -- sizing it
above the service queue bound keeps the loop from ever blocking).

Shutdown order (see ``docs/NETWORK.md``): stop accepting, drain
in-flight handlers, ``service.close(drain=True)``, then shard
teardown.  :meth:`NetServer.start_in_thread` runs the loop in a
daemon thread for tests, the CLI and the benchmark harness.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.errors import CPQLError, UnknownDatasetError
from repro.net import wire
from repro.service import QueryService
from repro.service.engine import (
    STATUS_BAD_REQUEST,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_REJECTED,
    STATUS_UNAVAILABLE,
)

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Structured response status -> HTTP status line.
_HTTP_STATUS = {
    STATUS_OK: (200, "OK"),
    STATUS_BAD_REQUEST: (400, "Bad Request"),
    STATUS_REJECTED: (503, "Service Unavailable"),
    STATUS_OVERLOADED: (503, "Service Unavailable"),
    STATUS_UNAVAILABLE: (503, "Service Unavailable"),
    STATUS_DEADLINE: (504, "Gateway Timeout"),
    STATUS_ERROR: (500, "Internal Server Error"),
}


class _HTTPError(Exception):
    """Terminate the current exchange with this HTTP status + JSON."""

    def __init__(self, code: int, reason: str, message: str):
        super().__init__(message)
        self.code = code
        self.reason = reason
        self.message = message


class NetServer:
    """One listening socket in front of one :class:`QueryService`.

    Parameters
    ----------
    service:
        The query service every ``POST /v1/query`` is submitted to.
        Construct it with ``cpq_executor=manager.service_executor()``
        to route shardable CPQs through the shard tier.
    manager:
        Optional :class:`~repro.net.shard.ShardManager`; only used for
        ``/healthz`` reporting here (execution routing goes through
        the service's ``cpq_executor``).  :meth:`close` tears it down
        after the service drains.
    host, port:
        Bind address; ``port=0`` picks a free port, exposed as
        :attr:`port` once started.
    waiters:
        Size of the thread pool that blocks on pending queries; must
        exceed the number of concurrently in-flight requests the edge
        should sustain.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        manager=None,
        wal=None,
        waiters: int = 64,
    ):
        self.service = service
        self.manager = manager
        #: Optional :class:`~repro.storage.wal.WriteAheadLog` of the
        #: live writer tree behind this server's pair; only used for
        #: ``/healthz`` staleness reporting (current log size).
        self.wal = wal
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=waiters, thread_name_prefix="net-wait"
        )
        self._inflight = 0
        self._idle = asyncio.Event()
        self._closing = False
        self._connections: set = set()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._thread_error: Optional[BaseException] = None

    # -- asyncio lifecycle -------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting, then wait for in-flight handlers to finish."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), drain_timeout_s)
        except asyncio.TimeoutError:  # pragma: no cover -- stuck handler
            pass
        # In-flight exchanges are done; what remains are keep-alive
        # connections parked in readline waiting for a next request
        # that will never come.  Cancel them so the loop shuts down
        # without destroying pending tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)

    # -- threaded lifecycle (tests, CLI, benchmarks) -----------------------

    def start_in_thread(self) -> "NetServer":
        """Run the server loop in a daemon thread; returns when bound."""

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # pragma: no cover -- bind error
                self._thread_error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="net-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._thread_error is not None:
            raise self._thread_error
        return self

    def close(self, drain_timeout_s: float = 10.0) -> None:
        """Graceful shutdown: listener, handlers, service, shards.

        Safe to call from any thread (and idempotent).  Order matters:
        the listener stops first so no new work arrives, in-flight
        handlers finish against a live service, the service drains its
        own queue (``close(drain=True)``), and only then do the shard
        processes go away.
        """
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                future = asyncio.run_coroutine_threadsafe(
                    self.stop(drain_timeout_s), self._loop
                )
                try:
                    future.result(drain_timeout_s + 1.0)
                except Exception:  # pragma: no cover -- drain overrun
                    pass
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(drain_timeout_s)
        self._executor.shutdown(wait=False)
        self.service.close(drain=True)
        if self.manager is not None:
            self.manager.close()

    def __enter__(self) -> "NetServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._closing:
                try:
                    parsed = await self._read_request(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # peer went away between requests
                except _HTTPError as exc:
                    # Framing failure: answer once, then close (the
                    # stream position is no longer trustworthy).
                    await self._write_response(
                        writer, exc.code, exc.reason,
                        {"v": wire.WIRE_VERSION, "error": exc.message},
                        keep_alive=False,
                    )
                    return
                if parsed is None:
                    return  # clean EOF on a keep-alive connection
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                self._inflight += 1
                self._idle.clear()
                try:
                    code, reason, payload = await self._route(
                        method, path, body
                    )
                except _HTTPError as exc:
                    code, reason = exc.code, exc.reason
                    payload = {"v": wire.WIRE_VERSION,
                               "error": exc.message}
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                await self._write_response(
                    writer, code, reason, payload, keep_alive
                )
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            return  # shutdown cancelled an idle keep-alive connection
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # pragma: no cover -- peer raced the close

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").split(None, 2)
            )
        except ValueError:
            raise _HTTPError(400, "Bad Request",
                             "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 64:
                raise _HTTPError(431, "Request Header Fields Too Large",
                                 "too many headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, "Payload Too Large",
                             f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, Dict[str, Any]]:
        path = path.split("?", 1)[0]
        if path == "/v1/query":
            if method != "POST":
                raise _HTTPError(405, "Method Not Allowed",
                                 "query endpoint takes POST")
            return await self._handle_query(body)
        if path == "/v1/sql":
            if method != "POST":
                raise _HTTPError(405, "Method Not Allowed",
                                 "sql endpoint takes POST")
            return await self._handle_sql(body)
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "Method Not Allowed",
                                 "healthz takes GET")
            return 200, "OK", self._healthz()
        if path == "/stats":
            if method != "GET":
                raise _HTTPError(405, "Method Not Allowed",
                                 "stats takes GET")
            return 200, "OK", {
                "v": wire.WIRE_VERSION,
                "stats": self.service.metrics.snapshot(),
            }
        raise _HTTPError(404, "Not Found", f"no route for {path!r}")

    async def _handle_query(
        self, body: bytes
    ) -> Tuple[int, str, Dict[str, Any]]:
        try:
            request = wire.loads_request(body)
        except wire.WireError as exc:
            raise _HTTPError(400, "Bad Request", str(exc)) from exc
        if isinstance(request, wire.SQLRequest):
            # op "sql" is accepted on the generic endpoint too; it
            # takes the same parse-then-submit path as /v1/sql.
            return await self._submit_sql(request)
        pending = self.service.submit(request)
        return await self._await_pending(pending)

    async def _handle_sql(
        self, body: bytes
    ) -> Tuple[int, str, Dict[str, Any]]:
        """``POST /v1/sql``: one CPQL statement in a v3 envelope.

        The ``op`` field may be omitted -- the route implies it.  CPQL
        syntax errors and unknown datasets answer 400 with the parser
        position / known-dataset hint in the error text; everything
        else follows the structured-status mapping of ``/v1/query``.
        """
        try:
            obj = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HTTPError(400, "Bad Request",
                             f"request is not valid JSON: {exc}") from exc
        if isinstance(obj, dict) and "op" not in obj:
            obj = dict(obj, op="sql")
        try:
            request = wire.decode_request(obj)
        except wire.WireError as exc:
            raise _HTTPError(400, "Bad Request", str(exc)) from exc
        if not isinstance(request, wire.SQLRequest):
            raise _HTTPError(400, "Bad Request",
                             "sql endpoint takes op 'sql' envelopes")
        return await self._submit_sql(request)

    async def _submit_sql(
        self, request: "wire.SQLRequest"
    ) -> Tuple[int, str, Dict[str, Any]]:
        try:
            pending = self.service.submit_sql(
                request.sql,
                pair=request.pair,
                deadline_ms=request.deadline_ms,
                use_cache=request.use_cache,
            )
        except CPQLError as exc:
            raise _HTTPError(
                400, "Bad Request",
                f"CPQL: {exc} (at position {exc.position})",
            ) from exc
        except UnknownDatasetError as exc:
            raise _HTTPError(400, "Bad Request", str(exc)) from exc
        return await self._await_pending(pending)

    async def _await_pending(
        self, pending
    ) -> Tuple[int, str, Dict[str, Any]]:
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(
            self._executor, pending.result
        )
        code, reason = _HTTP_STATUS.get(
            response.status, (500, "Internal Server Error")
        )
        return code, reason, wire.encode_response(response)

    def _healthz(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "v": wire.WIRE_VERSION,
            "status": "ok",
            "pairs": self.service.pairs(),
        }
        if self.manager is not None:
            out["shards"] = self.manager.health()
            out["on_failure"] = self.manager.on_failure
            # Staleness at a glance: the generation the coordinator
            # scatters at (shard rows above carry what each process
            # last reported, so a lagging shard is visible here).
            out["generation"] = {
                "p": self.manager.spec_p.generation,
                "q": self.manager.spec_q.generation,
            }
            out["net"] = self.manager.net_stats()
        if self.wal is not None:
            try:
                out["wal"] = {
                    "size_bytes": self.wal.size(),
                    "checkpoints": self.wal.stats.checkpoints,
                }
            except (OSError, ValueError):  # pragma: no cover -- closing
                pass
        return out

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, code: int,
                              reason: str, payload: Dict[str, Any],
                              keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
