"""Multi-process spatial shards with scatter-gather K-heap merge.

:class:`ShardManager` extends the partitioned executor of
:mod:`repro.core.parallel` across process boundaries and makes it
*persistent*: N worker processes are spawned once, each reopening both
trees of a pair through its own read-only
:class:`~repro.storage.store.FilePageStore` handles (private file
descriptors, private buffer pools -- no shared seek state, no GIL
contention with the edge).  Every K-CPQ is then answered by
scatter-gather:

1. **Partition** (coordinator): expand the root pair
   ``partition_depth`` levels with the same candidate generation and
   conservative pruning the serial algorithms use
   (:func:`~repro.core.parallel.partition_tasks`), producing a
   MINMINDIST-ascending frontier of disjoint subtree pairs, plus the
   partition-time metric bound.
2. **Scatter**: the sorted frontier is dealt round-robin (``i::n``,
   staying sorted) to the healthy shards; each receives its chunk as
   page-id pairs plus the initial bound -- the cross-process
   :class:`~repro.core.parallel.SharedBound` publication: the bound is
   published once, at scatter time, exactly like the PR 4 process
   mode.
3. **Gather**: each shard runs the unmodified serial algorithm per
   task (stopping early once the chunk's ascending MINMINDIST exceeds
   its local bound) and ships back its K-heap pairs and counters.
4. **Merge**: the coordinator re-offers every returned pair to its
   canonical K-heap (:mod:`repro.core.kheap`), whose total-order
   tie-breaking makes the merged result a pure function of the offered
   set -- byte-identical to the serial engine, tie order included, at
   any shard count.

Failure semantics (the PR 5 resilience ring, per shard)
-------------------------------------------------------
Each shard has its own :class:`~repro.service.breaker.CircuitBreaker`:
a reply carrying an error, a dead process, or a gather timeout records
a failure; an open breaker takes the shard out of the scatter set
until its reset timeout elapses (dead processes are respawned when the
breaker lets them probe again).  What happens to the *lost partitions*
of an in-flight query depends on ``on_failure``:

* ``"recover"`` (default): the coordinator executes the failed chunks
  itself, so the answer stays exact; the response is annotated
  (``stats.extra["net"]["recovered_chunks"]``) but not partial.
* ``"partial"``: the merged result covers only the surviving shards
  and is clearly flagged (``stats.extra["net"]["partial"]`` -- the
  service lifts this into ``QueryResponse.partial``, and the wire
  format carries it to clients).

See ``docs/NETWORK.md`` for the full lifecycle.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import CPQContext, traced_traversal
from repro.core.parallel import PartitionTask, partition_tasks
from repro.core.result import CPQResult
from repro.rtree.tree import RTree
from repro.service.breaker import CircuitBreaker
from repro.storage.store import FilePageStore

#: How shard loss affects in-flight queries.
FAILURE_MODES = ("recover", "partial")

#: Seconds the collector sleeps between mailbox polls while a gather
#: is outstanding (also the cancel-check cadence of the coordinator).
_POLL_S = 0.02


@dataclass(frozen=True)
class TreeSpec:
    """Everything a process needs to reopen one persistent tree.

    ``metadata`` is the :meth:`~repro.rtree.tree.RTree.metadata` dict
    *pinned at a committed generation* (see :func:`tree_spec`):
    because live mutation is copy-on-write, the pages reachable from
    that root are immutable on disk, so shard processes reopening the
    spec read a consistent tree even while the coordinator's writer
    keeps committing batches.  ``read_latency`` models the device seek
    exactly as :class:`~repro.storage.paged_file.PagedFile` does
    (benchmarks use it to put shards in the disk-bound regime);
    ``use_mmap`` reopens the store with the mmap read path.
    """

    path: str
    page_size: int
    metadata: Any
    buffer_capacity: int = 64
    read_latency: float = 0.0
    use_mmap: bool = False

    @property
    def generation(self) -> int:
        """The committed generation this spec reopens at."""
        return int(self.metadata.get("generation", 0))

    def open(self) -> RTree:
        # One reopen path for the whole system: the catalog owns the
        # (path, metadata, flags) -> RTree logic, so shard workers and
        # service registration cannot drift on snapshot-generation or
        # mmap handling.
        from repro.catalog.core import open_tree

        return open_tree(
            self.path,
            metadata=dict(self.metadata),
            page_size=self.page_size,
            use_mmap=self.use_mmap,
            readonly=True,
            buffer_capacity=self.buffer_capacity,
            read_latency=self.read_latency,
        )


def tree_spec(tree: RTree, buffer_capacity: Optional[int] = None,
              read_latency: Optional[float] = None,
              use_mmap: bool = False) -> TreeSpec:
    """Describe an open file-backed tree for shard reopening.

    The spec captures the tree's *committed snapshot*
    (:meth:`~repro.rtree.tree.RTree.committed`), not its live fields:
    an open mutation batch on a live tree writes only copy-on-write
    pages, so after the flush below the committed root and everything
    reachable from it are durable and immutable -- exactly what a
    shard process must see.
    """
    store = tree.file.store
    if not isinstance(store, FilePageStore):
        raise ValueError(
            "sharding requires file-backed trees (FilePageStore); "
            "in-memory trees cannot be reopened by shard processes"
        )
    store.flush()
    snapshot = tree.committed()
    metadata = dict(tree.metadata())
    metadata.update(
        root_id=snapshot.root_id,
        height=snapshot.height,
        count=snapshot.count,
        generation=snapshot.generation,
    )
    return TreeSpec(
        path=store.path,
        page_size=store.page_size,
        metadata=metadata,
        buffer_capacity=(tree.file.buffer.capacity
                         if buffer_capacity is None else buffer_capacity),
        read_latency=(tree.file.read_latency
                      if read_latency is None else read_latency),
        use_mmap=use_mmap,
    )


# ---------------------------------------------------------------------------
# Shard worker process
# ---------------------------------------------------------------------------

def shard_worker_main(shard_id: int, spec_p: TreeSpec, spec_q: TreeSpec,
                      inbox, outbox) -> None:
    """Entry point of one shard process.

    Opens both trees through private read-only handles, then serves
    jobs from ``inbox`` until the ``None`` sentinel: each job is
    ``(req_id, core_request, tasks, initial_bound)`` with ``tasks`` a
    MINMINDIST-ascending list of ``(page_p, page_q, minmin)``; the
    reply is ``(req_id, shard_id, payload)`` where ``payload`` carries
    the shard's K-heap pairs and counters, or the error that stopped
    it.  The buffer pools stay warm across jobs (I/O is reported as
    per-job deltas).  Module-level so it pickles by reference under
    the spawn start method.
    """
    tree_p = spec_p.open()
    tree_q = spec_q.open()
    while True:
        job = inbox.get()
        if job is None:
            return
        req_id, request, tasks, initial_bound = job
        before_p = tree_p.stats.snapshot()
        before_q = tree_q.stats.snapshot()
        try:
            ctx = CPQContext(
                tree_p, tree_q, request.k, request.metric,
                range_spec=request.range, color_spec=request.colors,
            )
            ctx.bound = initial_bound
            if request.deadline_ms is not None:
                from repro.core.api import _deadline_probe

                ctx.cancel_check = _deadline_probe(request.deadline_ms)
            runner = request.spec.runner
            completed = 0
            for page_p, page_q, minmin in tasks:
                if minmin > ctx.t:
                    break  # chunk is ascending: the rest are no better
                ctx.root_p = tree_p.read_node(page_p)
                ctx.root_q = tree_q.read_node(page_q)
                runner(ctx, request)
                completed += 1
            after_p = tree_p.stats.snapshot()
            after_q = tree_q.stats.snapshot()
            payload = {
                "ok": True,
                "pairs": ctx.kheap.sorted_pairs(),
                "tasks_completed": completed,
                "node_pairs_visited": ctx.stats.node_pairs_visited,
                "distance_computations": ctx.stats.distance_computations,
                "queue_inserts": ctx.stats.queue_inserts,
                "max_queue_size": ctx.stats.max_queue_size,
                "disk_reads": (
                    (after_p.disk_reads - before_p.disk_reads)
                    + (after_q.disk_reads - before_q.disk_reads)
                ),
                "buffer_hits": (
                    (after_p.buffer_hits - before_p.buffer_hits)
                    + (after_q.buffer_hits - before_q.buffer_hits)
                ),
            }
        except BaseException as exc:  # noqa: BLE001 -- report, don't die
            payload = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                # Deadline expiry says nothing about shard health; the
                # coordinator returns the probe slot instead of
                # recording a breaker failure.
                "deadline": type(exc).__name__ == "DeadlineExceeded",
            }
        outbox.put((req_id, shard_id, payload))


class _Shard:
    """Coordinator-side state of one shard process."""

    __slots__ = ("shard_id", "process", "inbox", "breaker", "jobs",
                 "failures")

    def __init__(self, shard_id: int, breaker: CircuitBreaker):
        self.shard_id = shard_id
        self.process = None
        self.inbox = None
        self.breaker = breaker
        self.jobs = 0
        self.failures = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _Gather:
    """One in-flight scatter-gather: expected shards and their replies."""

    __slots__ = ("expected", "replies", "event")

    def __init__(self, expected):
        self.expected = set(expected)
        self.replies: Dict[int, dict] = {}
        self.event = threading.Event()


class ShardManager:
    """Owns N shard processes over one file-backed tree pair.

    Parameters
    ----------
    spec_p, spec_q:
        :class:`TreeSpec` descriptions of the two trees (see
        :func:`tree_spec`); the manager opens its own coordinator
        handles for partitioning and shard processes reopen them
        read-only.
    shards:
        Worker process count (>= 1).
    pair:
        Name under which the coordinator trees are meant to be
        registered with a :class:`~repro.service.QueryService`; the
        :meth:`service_executor` declines requests for other pairs.
    on_failure:
        ``"recover"`` (exact answers, coordinator re-executes lost
        chunks) or ``"partial"`` (flagged partial answers from
        surviving shards).
    shard_timeout_s:
        Gather deadline per query; shards that have not replied by
        then count as failed for this query (and against their
        breaker).
    breaker_factory:
        Builds each shard's :class:`~repro.service.breaker.
        CircuitBreaker`; defaults to ``CircuitBreaker()``.
    coordinator_buffer:
        Buffer capacity of the coordinator's own tree handles
        (partitioning working set -- roots plus one or two levels).
    """

    def __init__(
        self,
        spec_p: TreeSpec,
        spec_q: TreeSpec,
        shards: int = 2,
        *,
        pair: str = "default",
        on_failure: str = "recover",
        shard_timeout_s: float = 30.0,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        coordinator_buffer: int = 256,
        mp_start_method: str = "spawn",
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if on_failure not in FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {FAILURE_MODES}, "
                f"not {on_failure!r}"
            )
        import multiprocessing

        self.spec_p = spec_p
        self.spec_q = spec_q
        self.pair = pair
        self.on_failure = on_failure
        self.shard_timeout_s = shard_timeout_s
        self._mp = multiprocessing.get_context(mp_start_method)
        factory = (breaker_factory if breaker_factory is not None
                   else CircuitBreaker)
        # Coordinator-side handles: partitioning reads the top levels
        # only, and the coordinator pays no simulated latency (the
        # shards own the deep I/O).
        self.tree_p = TreeSpec(spec_p.path, spec_p.page_size,
                               spec_p.metadata, coordinator_buffer,
                               0.0).open()
        self.tree_q = TreeSpec(spec_q.path, spec_q.page_size,
                               spec_q.metadata, coordinator_buffer,
                               0.0).open()
        self._outbox = self._mp.Queue()
        self._shards = [_Shard(i, factory()) for i in range(shards)]
        self._lock = threading.Lock()
        self._pending: Dict[int, _Gather] = {}
        self._req_ids = itertools.count()
        self._closed = False
        for shard in self._shards:
            self._spawn(shard)
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-collector", daemon=True
        )
        self._collector.start()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        """(Re)start one shard process with a fresh inbox."""
        shard.inbox = self._mp.Queue()
        shard.process = self._mp.Process(
            target=shard_worker_main,
            args=(shard.shard_id, self.spec_p, self.spec_q,
                  shard.inbox, self._outbox),
            name=f"repro-shard-{shard.shard_id}",
            daemon=True,
        )
        shard.process.start()

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop every shard process and the collector thread."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.alive:
                try:
                    shard.inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout_s
        for shard in self._shards:
            if shard.process is None:
                continue
            shard.process.join(max(0.0, deadline - time.monotonic()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(1.0)
        self._collector.join(timeout_s)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -----------------------------------------------------

    def health(self) -> List[dict]:
        """Per-shard liveness, breaker state and job counters."""
        return [
            {
                "shard": shard.shard_id,
                "alive": shard.alive,
                "breaker": shard.breaker.state,
                "jobs": shard.jobs,
                "failures": shard.failures,
            }
            for shard in self._shards
        ]

    # -- collection --------------------------------------------------------

    def _collect_loop(self) -> None:
        import queue as _queue

        while not self._closed:
            try:
                req_id, shard_id, payload = self._outbox.get(timeout=0.2)
            except _queue.Empty:
                continue
            except (OSError, EOFError, ValueError):  # pragma: no cover
                return  # queue torn down under us during close()
            with self._lock:
                gather = self._pending.get(req_id)
                if gather is None or shard_id not in gather.expected:
                    continue  # abandoned gather; drop the late reply
                gather.replies[shard_id] = payload
                if len(gather.replies) == len(gather.expected):
                    gather.event.set()

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        request,
        cancel_check: Optional[Callable[[], None]] = None,
        tracer=None,
    ) -> CPQResult:
        """Run one core :class:`~repro.core.api.CPQRequest` sharded.

        The result is byte-identical (pairs and tie order) to
        ``k_closest_pairs(tree_p, tree_q, request=...)`` on the same
        trees, for every algorithm with ``supports_parallel`` -- see
        the determinism argument in :mod:`repro.core.parallel`.
        """
        if self._closed:
            raise RuntimeError("ShardManager is closed")
        spec = request.spec
        if not spec.supports_parallel:
            raise ValueError(
                f"algorithm {request.algorithm!r} is not shardable"
            )
        ctx = CPQContext(
            self.tree_p, self.tree_q, request.k, request.metric,
            cancel_check=cancel_check, tracer=tracer,
            range_spec=request.range, color_spec=request.colors,
        )
        if ctx.root_p is None or ctx.root_q is None:
            return ctx.result(spec.label)
        with traced_traversal(ctx, spec.label, sharded=True):
            tasks = partition_tasks(ctx, request)
            self._scatter_gather(ctx, request, tasks)
        return ctx.result(spec.label)

    def _scatter_gather(self, ctx: CPQContext, request,
                        tasks: List[PartitionTask]) -> None:
        initial_bound = ctx.bound
        net: Dict[str, Any] = {
            "shards": 0,
            "tasks": len(tasks),
            "failed_shards": [],
            "recovered_chunks": 0,
            "partial": False,
        }
        ctx.stats.extra["net"] = net
        if not tasks:
            # Nothing to scatter: decided before consulting breakers,
            # so no half-open probe slot is ever taken and leaked.
            return
        participants = self._healthy_shards()
        net["shards"] = len(participants)
        if not participants:
            # Every breaker open / every process down: the coordinator
            # degrades to local serial execution over the whole
            # frontier (exact, flagged).
            net["local_fallback"] = True
            self._run_chunk_locally(ctx, request, tasks)
            return

        chunks = {
            shard.shard_id: tasks[i::len(participants)]
            for i, shard in enumerate(participants)
        }
        req_id = next(self._req_ids)
        gather = _Gather(chunks)
        with self._lock:
            self._pending[req_id] = gather
        try:
            for shard in participants:
                shard.jobs += 1
                shard.inbox.put((
                    req_id,
                    request,
                    [(t.node_p.page_id, t.node_q.page_id, t.minmin)
                     for t in chunks[shard.shard_id]],
                    initial_bound,
                ))
            self._await_gather(ctx, gather, participants)
        except BaseException:
            # Abandoned gather (service deadline, cancellation): no
            # verdict on any shard's health -- return the half-open
            # probe slots ``allow()`` may have taken, or the breakers
            # would sit half-open forever (the PR 5 probe-leak rule).
            for shard in participants:
                shard.breaker.release_probe()
            raise
        finally:
            with self._lock:
                self._pending.pop(req_id, None)

        failed: List[_Shard] = []
        shard_io = {"disk_reads": 0, "buffer_hits": 0}
        for shard in participants:
            reply = gather.replies.get(shard.shard_id)
            if reply is None or not reply.get("ok"):
                if reply is not None and reply.get("deadline"):
                    shard.breaker.release_probe()
                else:
                    shard.breaker.record_failure()
                shard.failures += 1
                failed.append(shard)
                net["failed_shards"].append(shard.shard_id)
                if reply is not None:
                    net.setdefault("shard_errors", {})[
                        str(shard.shard_id)
                    ] = reply.get("error")
                continue
            shard.breaker.record_success()
            for pair in reply["pairs"]:
                ctx.kheap.offer(pair)
            ctx.stats.node_pairs_visited += reply["node_pairs_visited"]
            ctx.stats.distance_computations += (
                reply["distance_computations"]
            )
            ctx.stats.queue_inserts += reply["queue_inserts"]
            ctx.stats.max_queue_size = max(
                ctx.stats.max_queue_size, reply["max_queue_size"]
            )
            shard_io["disk_reads"] += reply["disk_reads"]
            shard_io["buffer_hits"] += reply["buffer_hits"]
        # Shards count their own I/O; fold it into the query's stats
        # (the coordinator's tree counters only saw partitioning).
        ctx.stats.disk_accesses += shard_io["disk_reads"]
        ctx.stats.buffer_hits += shard_io["buffer_hits"]
        net["shard_io"] = shard_io

        if failed:
            if self.on_failure == "recover":
                for shard in failed:
                    self._run_chunk_locally(
                        ctx, request, chunks[shard.shard_id]
                    )
                    net["recovered_chunks"] += 1
            else:
                net["partial"] = True

    def _await_gather(self, ctx: CPQContext, gather: _Gather,
                      participants: List[_Shard]) -> None:
        """Wait for every expected reply, a death, or the timeout.

        The coordinator's cancel probe (service deadline) runs at poll
        cadence, so a deadline expiry aborts the wait promptly --
        in-flight shard work is simply abandoned (replies for an
        unregistered gather are dropped by the collector).
        """
        deadline = time.monotonic() + self.shard_timeout_s
        while not gather.event.wait(_POLL_S):
            ctx.check_cancelled()
            if time.monotonic() >= deadline:
                return
            with self._lock:
                outstanding = [
                    shard for shard in participants
                    if shard.shard_id not in gather.replies
                ]
            if any(not shard.alive for shard in outstanding):
                # A dead process never replies; give the others one
                # short grace period instead of the full timeout.
                if gather.event.wait(10 * _POLL_S):
                    return
                deadline = min(deadline, time.monotonic() + 1.0)

    def _run_chunk_locally(self, ctx: CPQContext, request,
                           chunk: List[PartitionTask]) -> None:
        """Coordinator-side recovery: execute one chunk serially.

        Offers straight into the query's K-heap; the chunk is
        MINMINDIST-ascending, so the first task beyond the current
        bound ends the loop.
        """
        runner = request.spec.runner
        for task in chunk:
            if task.minmin > ctx.t:
                break
            ctx.root_p = self.tree_p.read_node(task.node_p.page_id)
            ctx.root_q = self.tree_q.read_node(task.node_q.page_id)
            runner(ctx, request)

    def _healthy_shards(self) -> List[_Shard]:
        """Shards whose breaker admits work, respawning dead processes
        the breaker is willing to probe."""
        healthy = []
        for shard in self._shards:
            if not shard.breaker.allow():
                continue
            if not shard.alive:
                try:
                    self._spawn(shard)
                except OSError:  # pragma: no cover -- spawn failure
                    shard.breaker.record_failure()
                    continue
            healthy.append(shard)
        return healthy

    # -- service integration ----------------------------------------------

    def service_executor(self) -> Callable:
        """A ``cpq_executor`` for :class:`~repro.service.QueryService`.

        Routes shardable CPQ executions for this manager's pair
        through :meth:`execute`; declines (returns ``None``) other
        pairs and algorithms without ``supports_parallel``, which then
        run in-process as before.
        """

        def executor(pair_name: str, tree_p: RTree, tree_q: RTree,
                     core_request, cancel_check, tracer
                     ) -> Optional[CPQResult]:
            if pair_name != self.pair:
                return None
            if not core_request.spec.supports_parallel:
                return None
            return self.execute(core_request, cancel_check=cancel_check,
                                tracer=tracer)

        return executor
