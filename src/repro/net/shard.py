"""Multi-process spatial shards with a self-healing scatter-gather.

:class:`ShardManager` extends the partitioned executor of
:mod:`repro.core.parallel` across process boundaries and makes it
*persistent*: N worker processes are spawned once, each reopening both
trees of a pair through its own read-only
:class:`~repro.storage.store.FilePageStore` handles (private file
descriptors, private buffer pools -- no shared seek state, no GIL
contention with the edge).  Every K-CPQ is then answered by
scatter-gather:

1. **Partition** (coordinator): expand the root pair
   ``partition_depth`` levels with the same candidate generation and
   conservative pruning the serial algorithms use
   (:func:`~repro.core.parallel.partition_tasks`), producing a
   MINMINDIST-ascending frontier of disjoint subtree pairs, plus the
   partition-time metric bound.
2. **Scatter**: the sorted frontier is dealt round-robin (``i::n``,
   staying sorted) into per-shard *chunks*; each chunk is dispatched
   as an independent, idempotent attempt -- page-id pairs plus the
   initial bound (the cross-process
   :class:`~repro.core.parallel.SharedBound` publication, exactly like
   the PR 4 process mode).
3. **Gather**: each shard runs the unmodified serial algorithm per
   task (stopping early once the chunk's ascending MINMINDIST exceeds
   its local bound) and ships back its K-heap pairs and counters in a
   CRC frame (:mod:`repro.net.frames`).
4. **Merge**: the coordinator re-offers every returned pair to its
   canonical K-heap (:mod:`repro.core.kheap`), whose total-order
   tie-breaking makes the merged result a pure function of the offered
   set -- byte-identical to the serial engine, tie order included, at
   any shard count.

Self-healing (the wire may lie; the answer may not)
---------------------------------------------------
Chunks are *idempotent*: shards execute them read-only against a
pinned snapshot generation, every dispatch carries a fresh attempt id,
and the coordinator accepts exactly **one** successful payload per
chunk -- duplicate replies from retried or hedged attempts are counted
and dropped, never merged twice.  On top of that contract:

* **Per-attempt timeouts** are carved from the remaining gather
  budget (``shard_timeout_s``, further capped by the request deadline
  when one is set), so a silently lost frame costs one attempt, not
  the whole budget.
* **Retries** re-dispatch a failed chunk to another shard under an
  exponential-backoff-with-jitter :class:`~repro.net.retry.RetryPolicy`.
* **Hedging** duplicates a chunk to a sibling shard once its only
  live attempt has been outstanding longer than a trailing latency
  quantile (:class:`~repro.net.retry.HedgePolicy`); first reply wins.
* **Frame verification** turns truncated or corrupt replies into
  typed, retryable failures (:class:`~repro.net.frames.FrameError`).
* A **supervisor** thread probes shard health, respawns dead
  processes with capped backoff, and hot-reloads shards onto a newer
  pinned snapshot generation without a restart (:meth:`ShardManager.
  reload`).

Failure semantics (the PR 5 resilience ring, per shard)
-------------------------------------------------------
Each shard has its own :class:`~repro.service.breaker.CircuitBreaker`:
a reply carrying an error, a damaged frame, a dead process, or an
attempt timeout records a failure; an open breaker takes the shard out
of the scatter set until its reset timeout elapses.  What happens to
chunks that exhaust their retry budget depends on ``on_failure``:

* ``"recover"`` (default): the coordinator executes the failed chunks
  itself, so the answer stays exact; the response is annotated
  (``stats.extra["net"]["recovered_chunks"]``) but not partial.
* ``"partial"``: the merged result covers only the delivered chunks
  and is clearly flagged (``stats.extra["net"]["partial"]`` -- the
  service lifts this into ``QueryResponse.partial``, and the wire
  format carries it to clients).

Injected wire faults for testing live in :mod:`repro.net.faults`; the
``transport`` constructor seam accepts any
:class:`~repro.net.faults.ShardTransport`.  See ``docs/NETWORK.md``
for the full lifecycle.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.engine import CPQContext, traced_traversal
from repro.core.parallel import PartitionTask, partition_tasks
from repro.core.result import CPQResult
from repro.net.frames import FrameError, decode_frame, encode_frame
from repro.net.retry import HedgePolicy, RetryPolicy
from repro.rtree.tree import RTree
from repro.service.breaker import CircuitBreaker
from repro.storage.store import FilePageStore

#: How shard loss affects in-flight queries.
FAILURE_MODES = ("recover", "partial")

#: Seconds the collector sleeps between mailbox polls while a gather
#: is outstanding (also the cancel-check cadence of the coordinator).
_POLL_S = 0.02

#: Consecutive unanswered supervisor probes before a shard is declared
#: hung and force-respawned.
_PROBE_MISS_LIMIT = 3

#: A respawned process that dies again within this window doubles its
#: respawn backoff (crash-looping); a longer life resets it.
_QUICK_DEATH_S = 5.0

#: Upper bound on the supervisor's capped respawn backoff.
_MAX_RESPAWN_BACKOFF_S = 5.0


@dataclass(frozen=True)
class TreeSpec:
    """Everything a process needs to reopen one persistent tree.

    ``metadata`` is the :meth:`~repro.rtree.tree.RTree.metadata` dict
    *pinned at a committed generation* (see :func:`tree_spec`):
    because live mutation is copy-on-write, the pages reachable from
    that root are immutable on disk, so shard processes reopening the
    spec read a consistent tree even while the coordinator's writer
    keeps committing batches.  ``read_latency`` models the device seek
    exactly as :class:`~repro.storage.paged_file.PagedFile` does
    (benchmarks use it to put shards in the disk-bound regime);
    ``use_mmap`` reopens the store with the mmap read path.
    """

    path: str
    page_size: int
    metadata: Any
    buffer_capacity: int = 64
    read_latency: float = 0.0
    use_mmap: bool = False

    @property
    def generation(self) -> int:
        """The committed generation this spec reopens at."""
        return int(self.metadata.get("generation", 0))

    def open(self) -> RTree:
        # One reopen path for the whole system: the catalog owns the
        # (path, metadata, flags) -> RTree logic, so shard workers and
        # service registration cannot drift on snapshot-generation or
        # mmap handling.
        from repro.catalog.core import open_tree

        return open_tree(
            self.path,
            metadata=dict(self.metadata),
            page_size=self.page_size,
            use_mmap=self.use_mmap,
            readonly=True,
            buffer_capacity=self.buffer_capacity,
            read_latency=self.read_latency,
        )


def tree_spec(tree: RTree, buffer_capacity: Optional[int] = None,
              read_latency: Optional[float] = None,
              use_mmap: bool = False) -> TreeSpec:
    """Describe an open file-backed tree for shard reopening.

    The spec captures the tree's *committed snapshot*
    (:meth:`~repro.rtree.tree.RTree.committed`), not its live fields:
    an open mutation batch on a live tree writes only copy-on-write
    pages, so after the flush below the committed root and everything
    reachable from it are durable and immutable -- exactly what a
    shard process must see.
    """
    store = tree.file.store
    if not isinstance(store, FilePageStore):
        raise ValueError(
            "sharding requires file-backed trees (FilePageStore); "
            "in-memory trees cannot be reopened by shard processes"
        )
    store.flush()
    snapshot = tree.committed()
    metadata = dict(tree.metadata())
    metadata.update(
        root_id=snapshot.root_id,
        height=snapshot.height,
        count=snapshot.count,
        generation=snapshot.generation,
    )
    return TreeSpec(
        path=store.path,
        page_size=store.page_size,
        metadata=metadata,
        buffer_capacity=(tree.file.buffer.capacity
                         if buffer_capacity is None else buffer_capacity),
        read_latency=(tree.file.read_latency
                      if read_latency is None else read_latency),
        use_mmap=use_mmap,
    )


# ---------------------------------------------------------------------------
# Shard worker process
# ---------------------------------------------------------------------------

def _worker_query(tree_p: RTree, tree_q: RTree, request, tasks,
                  initial_bound) -> dict:
    """Execute one chunk of partition tasks; returns the reply payload."""
    before_p = tree_p.stats.snapshot()
    before_q = tree_q.stats.snapshot()
    try:
        ctx = CPQContext(
            tree_p, tree_q, request.k, request.metric,
            range_spec=request.range, color_spec=request.colors,
        )
        ctx.bound = initial_bound
        if request.deadline_ms is not None:
            from repro.core.api import _deadline_probe

            ctx.cancel_check = _deadline_probe(request.deadline_ms)
        runner = request.spec.runner
        completed = 0
        for page_p, page_q, minmin in tasks:
            if minmin > ctx.t:
                break  # chunk is ascending: the rest are no better
            ctx.root_p = tree_p.read_node(page_p)
            ctx.root_q = tree_q.read_node(page_q)
            runner(ctx, request)
            completed += 1
        after_p = tree_p.stats.snapshot()
        after_q = tree_q.stats.snapshot()
        return {
            "ok": True,
            "pairs": ctx.kheap.sorted_pairs(),
            "tasks_completed": completed,
            "node_pairs_visited": ctx.stats.node_pairs_visited,
            "distance_computations": ctx.stats.distance_computations,
            "queue_inserts": ctx.stats.queue_inserts,
            "max_queue_size": ctx.stats.max_queue_size,
            "disk_reads": (
                (after_p.disk_reads - before_p.disk_reads)
                + (after_q.disk_reads - before_q.disk_reads)
            ),
            "buffer_hits": (
                (after_p.buffer_hits - before_p.buffer_hits)
                + (after_q.buffer_hits - before_q.buffer_hits)
            ),
        }
    except BaseException as exc:  # noqa: BLE001 -- report, don't die
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            # Deadline expiry says nothing about shard health; the
            # coordinator returns the probe slot instead of
            # recording a breaker failure.
            "deadline": type(exc).__name__ == "DeadlineExceeded",
        }


def shard_worker_main(shard_id: int, spec_p: TreeSpec, spec_q: TreeSpec,
                      inbox, outbox) -> None:
    """Entry point of one shard process.

    Opens both trees through private read-only handles, then serves
    messages from ``inbox`` until the ``None`` sentinel:

    * ``("query", req_id, chunk_id, attempt_id, request, tasks,
      bound)`` -- run one chunk; reply ``("reply", req_id, chunk_id,
      attempt_id, shard_id, frame)`` where ``frame`` CRC-wraps the
      K-heap pairs and counters (or the error that stopped it).
    * ``("probe", ctl_id)`` -- supervisor liveness check; replies
      ``("ctl", ctl_id, shard_id, frame)`` with the pinned
      generations.
    * ``("reload", ctl_id, spec_p, spec_q)`` -- hot-reload: reopen
      both trees at the new specs *without restarting the process*
      (warm interpreter, fresh buffer pools at the new generation),
      then ack over ``ctl``.

    The buffer pools stay warm across jobs (I/O is reported as
    per-job deltas).  Module-level so it pickles by reference under
    the spawn start method.
    """
    import os

    tree_p = spec_p.open()
    tree_q = spec_q.open()
    while True:
        job = inbox.get()
        if job is None:
            return
        kind = job[0]
        if kind == "probe":
            __, ctl_id = job
            payload = {
                "ok": True,
                "pid": os.getpid(),
                "generation_p": tree_p.generation,
                "generation_q": tree_q.generation,
            }
            outbox.put(("ctl", ctl_id, shard_id, encode_frame(payload)))
            continue
        if kind == "reload":
            __, ctl_id, new_p, new_q = job
            try:
                fresh_p = new_p.open()
                fresh_q = new_q.open()
            except BaseException as exc:  # noqa: BLE001 -- report
                payload = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                for old in (tree_p, tree_q):
                    try:
                        old.file.store.close()
                    except (AttributeError, OSError):
                        pass
                tree_p, tree_q = fresh_p, fresh_q
                payload = {
                    "ok": True,
                    "pid": os.getpid(),
                    "generation_p": tree_p.generation,
                    "generation_q": tree_q.generation,
                }
            outbox.put(("ctl", ctl_id, shard_id, encode_frame(payload)))
            continue
        # kind == "query"
        __, req_id, chunk_id, attempt_id, request, tasks, bound = job
        payload = _worker_query(tree_p, tree_q, request, tasks, bound)
        outbox.put(("reply", req_id, chunk_id, attempt_id, shard_id,
                    encode_frame(payload)))


# ---------------------------------------------------------------------------
# Coordinator-side state
# ---------------------------------------------------------------------------

class _Shard:
    """Coordinator-side state of one shard process."""

    __slots__ = ("shard_id", "process", "inbox", "breaker", "jobs",
                 "failures", "respawns", "spawned_at", "backoff_s",
                 "next_spawn_at", "probe_ctl", "probe_sent_at",
                 "probe_misses", "generations")

    def __init__(self, shard_id: int, breaker: CircuitBreaker):
        self.shard_id = shard_id
        self.process = None
        self.inbox = None
        self.breaker = breaker
        self.jobs = 0
        self.failures = 0
        self.respawns = 0
        self.spawned_at = 0.0
        self.backoff_s = 0.0
        self.next_spawn_at = 0.0
        self.probe_ctl: Optional[int] = None
        self.probe_sent_at = 0.0
        self.probe_misses = 0
        #: Last (generation_p, generation_q) a probe or reload ack
        #: reported; None until the first answer.
        self.generations: Optional[Tuple[int, int]] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _Attempt:
    """One dispatch of one chunk to one shard."""

    __slots__ = ("attempt_id", "shard", "started", "timeout_s", "hedge",
                 "done")

    def __init__(self, attempt_id: int, shard: _Shard, started: float,
                 timeout_s: float, hedge: bool):
        self.attempt_id = attempt_id
        self.shard = shard
        self.started = started
        self.timeout_s = timeout_s
        self.hedge = hedge
        self.done = False


class _Chunk:
    """Per-chunk retry state of one in-flight scatter-gather."""

    __slots__ = ("chunk_id", "tasks", "payload", "attempts", "failures",
                 "hedges", "next_retry_at", "tried", "won_by_hedge")

    def __init__(self, chunk_id: int, tasks: List[PartitionTask]):
        self.chunk_id = chunk_id
        self.tasks = tasks
        self.payload: Optional[dict] = None
        self.attempts: List[_Attempt] = []
        self.failures = 0
        self.hedges = 0
        self.next_retry_at = 0.0
        self.tried: Set[int] = set()
        self.won_by_hedge = False

    def live_attempts(self) -> List[_Attempt]:
        return [a for a in self.attempts if not a.done]


class _Gather:
    """One in-flight scatter-gather: replies keyed by attempt id."""

    __slots__ = ("replies", "event")

    def __init__(self):
        self.replies: Dict[int, Tuple[int, object]] = {}
        self.event = threading.Event()


class _CtlWait:
    """One awaited control acknowledgement (probe / reload)."""

    __slots__ = ("event", "frame", "shard_id")

    def __init__(self):
        self.event = threading.Event()
        self.frame: Optional[object] = None
        self.shard_id: Optional[int] = None


class ShardManager:
    """Owns N shard processes over one file-backed tree pair.

    Parameters
    ----------
    spec_p, spec_q:
        :class:`TreeSpec` descriptions of the two trees (see
        :func:`tree_spec`); the manager opens its own coordinator
        handles for partitioning and shard processes reopen them
        read-only.
    shards:
        Worker process count (>= 1).
    pair:
        Name under which the coordinator trees are meant to be
        registered with a :class:`~repro.service.QueryService`; the
        :meth:`service_executor` declines requests for other pairs.
    on_failure:
        ``"recover"`` (exact answers, coordinator re-executes
        exhausted chunks) or ``"partial"`` (flagged partial answers
        from the delivered chunks).
    shard_timeout_s:
        Total gather budget per query; chunks still undelivered when
        it lapses fall to ``on_failure``.
    attempt_timeout_s:
        Per-attempt timeout, additionally capped by the remaining
        gather budget.  Defaults to ``shard_timeout_s /
        retry_policy.max_attempts`` -- the budget carved evenly across
        the retry ladder.
    retry_policy / hedge_policy:
        See :mod:`repro.net.retry`.  ``HedgePolicy(enabled=False)``
        disables hedging.
    transport:
        The coordinator<->shard wire; defaults to the perfect
        :class:`~repro.net.faults.ShardTransport`.  Chaos testing
        passes a :class:`~repro.net.faults.FaultyShardTransport`.
    supervise / probe_interval_s:
        Run the supervisor thread (periodic health probes,
        capped-backoff respawn of dead or hung shards).
    breaker_factory:
        Builds each shard's :class:`~repro.service.breaker.
        CircuitBreaker`; defaults to ``CircuitBreaker()``.
    coordinator_buffer:
        Buffer capacity of the coordinator's own tree handles
        (partitioning working set -- roots plus one or two levels).
    metrics_sink:
        Optional callable ``(event, n)`` receiving every lifetime
        counter increment (retries, hedges, hedge_wins, respawns,
        reloads, frame_errors, ...); ``repro-cpq serve-net`` wires it
        to :meth:`~repro.service.metrics.ServiceMetrics.
        record_net_event` so the counters surface in ``/stats``.
    """

    def __init__(
        self,
        spec_p: TreeSpec,
        spec_q: TreeSpec,
        shards: int = 2,
        *,
        pair: str = "default",
        on_failure: str = "recover",
        shard_timeout_s: float = 30.0,
        attempt_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_policy: Optional[HedgePolicy] = None,
        transport=None,
        supervise: bool = True,
        probe_interval_s: float = 2.0,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        coordinator_buffer: int = 256,
        mp_start_method: str = "spawn",
        metrics_sink: Optional[Callable[[str, int], None]] = None,
        seed: int = 0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if on_failure not in FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {FAILURE_MODES}, "
                f"not {on_failure!r}"
            )
        import multiprocessing

        from repro.net.faults import ShardTransport

        self.spec_p = spec_p
        self.spec_q = spec_q
        self.pair = pair
        self.on_failure = on_failure
        self.shard_timeout_s = shard_timeout_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.hedge_policy = hedge_policy or HedgePolicy()
        self.attempt_timeout_s = (
            attempt_timeout_s if attempt_timeout_s is not None
            else shard_timeout_s / self.retry_policy.max_attempts
        )
        self.probe_interval_s = probe_interval_s
        self.metrics_sink = metrics_sink
        self._transport = transport or ShardTransport()
        self._mp = multiprocessing.get_context(mp_start_method)
        factory = (breaker_factory if breaker_factory is not None
                   else CircuitBreaker)
        # Coordinator-side handles: partitioning reads the top levels
        # only, and the coordinator pays no simulated latency (the
        # shards own the deep I/O).
        self._coordinator_buffer = coordinator_buffer
        self.tree_p = TreeSpec(spec_p.path, spec_p.page_size,
                               spec_p.metadata, coordinator_buffer,
                               0.0).open()
        self.tree_q = TreeSpec(spec_q.path, spec_q.page_size,
                               spec_q.metadata, coordinator_buffer,
                               0.0).open()
        self._outbox = self._mp.Queue()
        self._shards = [_Shard(i, factory()) for i in range(shards)]
        self._lock = threading.Lock()
        self._pending: Dict[int, _Gather] = {}
        self._ctl: Dict[int, _CtlWait] = {}
        self._req_ids = itertools.count()
        self._attempt_ids = itertools.count()
        self._ctl_ids = itertools.count()
        self._jitter_rng = random.Random(seed)
        #: Trailing completed-chunk latencies feeding the hedge
        #: threshold (bounded; coarse is fine for a quantile).
        self._latency_samples: List[float] = []
        #: Lifetime self-healing counters (also mirrored to
        #: ``metrics_sink``); see :meth:`net_stats`.
        self.counters: Dict[str, int] = {
            "retries": 0, "hedges": 0, "hedge_wins": 0, "respawns": 0,
            "reloads": 0, "frame_errors": 0, "dedup_dropped": 0,
            "probe_misses": 0,
        }
        self._closed = False
        self._stop = threading.Event()
        for shard in self._shards:
            self._spawn(shard)
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-collector", daemon=True
        )
        self._collector.start()
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="shard-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # -- lifecycle ---------------------------------------------------------

    def _count(self, event: str, n: int = 1) -> None:
        with self._lock:
            self.counters[event] = self.counters.get(event, 0) + n
        if self.metrics_sink is not None:
            try:
                self.metrics_sink(event, n)
            except Exception:  # pragma: no cover -- sink must not kill us
                pass

    def _spawn(self, shard: _Shard) -> None:
        """(Re)start one shard process with a fresh inbox."""
        shard.inbox = self._mp.Queue()
        shard.process = self._mp.Process(
            target=shard_worker_main,
            args=(shard.shard_id, self.spec_p, self.spec_q,
                  shard.inbox, self._outbox),
            name=f"repro-shard-{shard.shard_id}",
            daemon=True,
        )
        shard.process.start()
        shard.spawned_at = time.monotonic()
        shard.probe_ctl = None
        shard.probe_misses = 0
        shard.generations = None

    def _respawn(self, shard: _Shard) -> bool:
        """Restart a dead shard under capped backoff; True when alive.

        A process that died quickly after its last spawn doubles the
        shard's backoff (bounded) so a crash-looping shard cannot eat
        the coordinator; a longer life resets the ladder.
        """
        with self._lock:
            if shard.alive:
                return True
            now = time.monotonic()
            if now < shard.next_spawn_at:
                return False  # still backing off
            lived = now - shard.spawned_at
            if shard.respawns and lived < _QUICK_DEATH_S:
                shard.backoff_s = min(_MAX_RESPAWN_BACKOFF_S,
                                      max(0.1, shard.backoff_s * 2.0))
            else:
                shard.backoff_s = 0.0
            try:
                self._spawn(shard)
            except OSError:  # pragma: no cover -- spawn failure
                shard.breaker.record_failure()
                return False
            shard.respawns += 1
            shard.next_spawn_at = time.monotonic() + shard.backoff_s
        self._count("respawns")
        return True

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop every shard process, the supervisor and the collector."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout_s)
        self._transport.close()
        for shard in self._shards:
            if shard.alive:
                try:
                    shard.inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout_s
        for shard in self._shards:
            if shard.process is None:
                continue
            shard.process.join(max(0.0, deadline - time.monotonic()))
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(1.0)
        self._collector.join(timeout_s)

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -----------------------------------------------------

    def health(self) -> List[dict]:
        """Per-shard liveness, breaker state, generation and counters."""
        return [
            {
                "shard": shard.shard_id,
                "alive": shard.alive,
                "breaker": shard.breaker.state,
                "jobs": shard.jobs,
                "failures": shard.failures,
                "respawns": shard.respawns,
                "generation": (list(shard.generations)
                               if shard.generations else None),
            }
            for shard in self._shards
        ]

    def net_stats(self) -> Dict[str, Any]:
        """Lifetime self-healing counters plus the pinned generations.

        Includes the transport's injected-fault tally when the wire is
        a :class:`~repro.net.faults.FaultyShardTransport` (chaos runs
        report what they actually injected).
        """
        with self._lock:
            out: Dict[str, Any] = dict(self.counters)
        out["generation_p"] = self.spec_p.generation
        out["generation_q"] = self.spec_q.generation
        faults = getattr(self._transport, "faults", None)
        if faults is not None:
            out["injected_faults"] = faults.as_dict()
        return out

    # -- control plane (supervisor, hot reload) ----------------------------

    def _send_ctl(self, shard: _Shard, message: tuple,
                  ctl_id: int) -> _CtlWait:
        wait = _CtlWait()
        with self._lock:
            self._ctl[ctl_id] = wait
        try:
            self._transport.send(shard, message)
        except (OSError, ValueError):  # pragma: no cover -- torn queue
            with self._lock:
                self._ctl.pop(ctl_id, None)
            raise
        return wait

    def _drop_ctl(self, ctl_id: int) -> None:
        with self._lock:
            self._ctl.pop(ctl_id, None)

    def _supervise_loop(self) -> None:
        """Periodic health probes and capped-backoff respawn.

        Each cycle: dead shards are respawned (subject to their
        backoff); live shards are probed over the normal wire.  A
        probe answered before the next cycle clears the shard's miss
        counter and refreshes its reported generations; ``
        _PROBE_MISS_LIMIT`` consecutive misses declare the shard hung
        and force a kill + respawn (wedged processes look alive to
        ``is_alive`` forever).
        """
        while not self._stop.wait(self.probe_interval_s):
            if self._closed:
                return
            for shard in self._shards:
                if not shard.alive:
                    self._respawn(shard)
                    continue
                if shard.probe_ctl is not None:
                    wait = self._ctl.get(shard.probe_ctl)
                    if wait is not None and wait.event.is_set():
                        shard.probe_misses = 0
                        try:
                            payload = decode_frame(wait.frame)
                            shard.generations = (
                                payload.get("generation_p", 0),
                                payload.get("generation_q", 0),
                            )
                        except FrameError:
                            self._count("frame_errors")
                        self._drop_ctl(shard.probe_ctl)
                        shard.probe_ctl = None
                    else:
                        shard.probe_misses += 1
                        self._count("probe_misses")
                        self._drop_ctl(shard.probe_ctl)
                        shard.probe_ctl = None
                        if shard.probe_misses >= _PROBE_MISS_LIMIT:
                            shard.probe_misses = 0
                            process = shard.process
                            if process is not None:
                                process.kill()
                                process.join(1.0)
                            self._respawn(shard)
                        continue
                ctl_id = next(self._ctl_ids)
                try:
                    self._send_ctl(shard, ("probe", ctl_id), ctl_id)
                except (OSError, ValueError):  # pragma: no cover
                    continue
                shard.probe_ctl = ctl_id
                shard.probe_sent_at = time.monotonic()

    def reload(self, spec_p: TreeSpec, spec_q: TreeSpec,
               timeout_s: float = 10.0) -> Dict[str, Any]:
        """Hot-reload every shard onto newer pinned tree specs.

        No restart on the happy path: each live shard reopens both
        trees in place (warm interpreter, fresh read handles at the
        new generation) and acks; shards that are dead, back off, or
        fail to ack within ``timeout_s`` are respawned instead --
        fresh processes open the new specs anyway.  The coordinator's
        own partitioning handles are reopened too, so the next query
        partitions and scatters entirely at the new generation.

        Returns a report: the new generations, which shards acked in
        place and which had to be respawned.
        """
        with self._lock:
            self.spec_p = spec_p
            self.spec_q = spec_q
        self.tree_p = TreeSpec(spec_p.path, spec_p.page_size,
                               spec_p.metadata, self._coordinator_buffer,
                               0.0).open()
        self.tree_q = TreeSpec(spec_q.path, spec_q.page_size,
                               spec_q.metadata, self._coordinator_buffer,
                               0.0).open()
        waits: Dict[int, Tuple[_Shard, int, _CtlWait]] = {}
        respawned: List[int] = []
        for shard in self._shards:
            if not shard.alive:
                if self._respawn(shard):
                    respawned.append(shard.shard_id)
                continue
            ctl_id = next(self._ctl_ids)
            try:
                wait = self._send_ctl(
                    shard, ("reload", ctl_id, spec_p, spec_q), ctl_id
                )
            except (OSError, ValueError):  # pragma: no cover
                continue
            waits[shard.shard_id] = (shard, ctl_id, wait)
        deadline = time.monotonic() + timeout_s
        acked: List[int] = []
        for shard_id, (shard, ctl_id, wait) in waits.items():
            remaining = max(0.0, deadline - time.monotonic())
            ok = False
            if wait.event.wait(remaining):
                try:
                    payload = decode_frame(wait.frame)
                    ok = bool(payload.get("ok"))
                    if ok:
                        shard.generations = (
                            payload.get("generation_p", 0),
                            payload.get("generation_q", 0),
                        )
                except FrameError:
                    self._count("frame_errors")
            self._drop_ctl(ctl_id)
            if ok:
                acked.append(shard_id)
            else:
                # No ack: restart the shard; the fresh process opens
                # the new specs, so the reload still lands.
                process = shard.process
                if process is not None:
                    process.kill()
                    process.join(1.0)
                if self._respawn(shard):
                    respawned.append(shard_id)
        self._count("reloads")
        return {
            "generation_p": spec_p.generation,
            "generation_q": spec_q.generation,
            "acked": sorted(acked),
            "respawned": sorted(respawned),
        }

    # -- collection --------------------------------------------------------

    def _collect_loop(self) -> None:
        import queue as _queue

        while not self._closed:
            try:
                message = self._outbox.get(timeout=0.2)
            except _queue.Empty:
                continue
            except (OSError, EOFError, ValueError):  # pragma: no cover
                return  # queue torn down under us during close()
            try:
                self._transport.deliver(message, self._dispatch_reply)
            except Exception:  # pragma: no cover -- transport bug
                continue

    def _dispatch_reply(self, message: tuple) -> None:
        """Route one (possibly damaged) reply to its waiter."""
        kind = message[0]
        if kind == "ctl":
            __, ctl_id, shard_id, frame = message
            with self._lock:
                wait = self._ctl.get(ctl_id)
            if wait is not None:
                wait.frame = frame
                wait.shard_id = shard_id
                wait.event.set()
            return
        if kind != "reply":  # pragma: no cover -- unknown message
            return
        __, req_id, __chunk_id, attempt_id, shard_id, frame = message
        duplicate = False
        with self._lock:
            gather = self._pending.get(req_id)
            if gather is None:
                return  # abandoned gather (deadline expiry)
            if attempt_id in gather.replies:
                duplicate = True  # the wire delivered the same reply twice
            else:
                gather.replies[attempt_id] = (shard_id, frame)
                gather.event.set()
        if duplicate:
            self._count("dedup_dropped")

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        request,
        cancel_check: Optional[Callable[[], None]] = None,
        tracer=None,
    ) -> CPQResult:
        """Run one core :class:`~repro.core.api.CPQRequest` sharded.

        The result is byte-identical (pairs and tie order) to
        ``k_closest_pairs(tree_p, tree_q, request=...)`` on the same
        trees, for every algorithm with ``supports_parallel`` -- see
        the determinism argument in :mod:`repro.core.parallel` plus
        the chunk-idempotence argument in the module docstring (one
        accepted payload per chunk, no matter how many attempts).
        """
        if self._closed:
            raise RuntimeError("ShardManager is closed")
        spec = request.spec
        if not spec.supports_parallel:
            raise ValueError(
                f"algorithm {request.algorithm!r} is not shardable"
            )
        ctx = CPQContext(
            self.tree_p, self.tree_q, request.k, request.metric,
            cancel_check=cancel_check, tracer=tracer,
            range_spec=request.range, color_spec=request.colors,
        )
        if ctx.root_p is None or ctx.root_q is None:
            return ctx.result(spec.label)
        with traced_traversal(ctx, spec.label, sharded=True) as span:
            tasks = partition_tasks(ctx, request)
            self._scatter_gather(ctx, request, tasks)
            if span is not None:
                net = ctx.stats.extra.get("net", {})
                span.annotate(
                    net_retries=net.get("retries", 0),
                    net_hedges=net.get("hedges", 0),
                    net_hedge_wins=net.get("hedge_wins", 0),
                    net_frame_errors=net.get("frame_errors", 0),
                )
        return ctx.result(spec.label)

    def _scatter_gather(self, ctx: CPQContext, request,
                        tasks: List[PartitionTask]) -> None:
        initial_bound = ctx.bound
        net: Dict[str, Any] = {
            "shards": 0,
            "tasks": len(tasks),
            "failed_shards": [],
            "recovered_chunks": 0,
            "partial": False,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "frame_errors": 0,
            "dedup_dropped": 0,
        }
        ctx.stats.extra["net"] = net
        if not tasks:
            # Nothing to scatter: decided before consulting breakers,
            # so no half-open probe slot is ever taken and leaked.
            return
        participants = self._healthy_shards()
        net["shards"] = len(participants)
        if not participants:
            # Every breaker open / every process down: the coordinator
            # degrades to local serial execution over the whole
            # frontier (exact, flagged).
            net["local_fallback"] = True
            self._run_chunk_locally(ctx, request, tasks)
            return

        n = len(participants)
        chunks = [_Chunk(i, tasks[i::n]) for i in range(n)]
        req_id = next(self._req_ids)
        gather = _Gather()
        with self._lock:
            self._pending[req_id] = gather
        budget_s = self.shard_timeout_s
        if getattr(request, "deadline_ms", None) is not None:
            # Carve from the request deadline too: no attempt may
            # outlive what the caller is still willing to wait.
            budget_s = min(budget_s, request.deadline_ms / 1000.0)
        deadline = time.monotonic() + budget_s
        failed_shards: Set[int] = set()
        try:
            attempts_by_id: Dict[int, Tuple[_Chunk, _Attempt]] = {}
            for chunk, shard in zip(chunks, participants):
                self._dispatch_attempt(req_id, request, chunk, shard,
                                       deadline, False, initial_bound,
                                       attempts_by_id)
            self._drive_gather(ctx, request, gather, req_id, chunks,
                               participants, deadline, net,
                               failed_shards, initial_bound,
                               attempts_by_id)
        except BaseException:
            # Abandoned gather (service deadline, cancellation): no
            # verdict on any shard's health -- return the half-open
            # probe slots ``allow()`` may have taken, or the breakers
            # would sit half-open forever (the PR 5 probe-leak rule).
            for shard in participants:
                shard.breaker.release_probe()
            raise
        finally:
            with self._lock:
                self._pending.pop(req_id, None)

        # Hedge losers may still be in flight on shards that never got
        # a verdict this query; if such a shard held the half-open
        # probe slot, return it (success/failure was recorded by the
        # attempts that *did* resolve).
        for chunk in chunks:
            for attempt in chunk.live_attempts():
                if chunk.payload is not None:
                    attempt.shard.breaker.release_probe()

        net["failed_shards"] = sorted(failed_shards)
        shard_io = {"disk_reads": 0, "buffer_hits": 0}
        undelivered: List[_Chunk] = []
        for chunk in chunks:
            payload = chunk.payload
            if payload is None:
                undelivered.append(chunk)
                continue
            if chunk.won_by_hedge:
                net["hedge_wins"] += 1
                self._count("hedge_wins")
            for pair in payload["pairs"]:
                ctx.kheap.offer(pair)
            ctx.stats.node_pairs_visited += payload["node_pairs_visited"]
            ctx.stats.distance_computations += (
                payload["distance_computations"]
            )
            ctx.stats.queue_inserts += payload["queue_inserts"]
            ctx.stats.max_queue_size = max(
                ctx.stats.max_queue_size, payload["max_queue_size"]
            )
            shard_io["disk_reads"] += payload["disk_reads"]
            shard_io["buffer_hits"] += payload["buffer_hits"]
        # Shards count their own I/O; fold it into the query's stats
        # (the coordinator's tree counters only saw partitioning).
        ctx.stats.disk_accesses += shard_io["disk_reads"]
        ctx.stats.buffer_hits += shard_io["buffer_hits"]
        net["shard_io"] = shard_io

        if undelivered:
            if self.on_failure == "recover":
                for chunk in undelivered:
                    self._run_chunk_locally(ctx, request, chunk.tasks)
                    net["recovered_chunks"] += 1
            else:
                net["partial"] = True

    def _dispatch_attempt(self, req_id: int, request, chunk: _Chunk,
                          shard: _Shard, deadline: float, hedge: bool,
                          initial_bound,
                          attempts_by_id: Dict[int, Tuple[_Chunk,
                                                          _Attempt]],
                          ) -> None:
        """Send one chunk to one shard as a fresh idempotent attempt."""
        now = time.monotonic()
        remaining = max(0.0, deadline - now)
        timeout_s = min(self.attempt_timeout_s, remaining)
        attempt_id = next(self._attempt_ids)
        attempt = _Attempt(attempt_id, shard, now, timeout_s, hedge)
        chunk.attempts.append(attempt)
        chunk.tried.add(shard.shard_id)
        attempts_by_id[attempt_id] = (chunk, attempt)
        shard.jobs += 1
        message = (
            "query", req_id, chunk.chunk_id, attempt_id, request,
            [(t.node_p.page_id, t.node_q.page_id, t.minmin)
             for t in chunk.tasks],
            initial_bound,
        )
        try:
            self._transport.send(shard, message)
        except (OSError, ValueError):  # pragma: no cover -- torn queue
            attempt.done = True
            chunk.failures += 1

    def _fail_attempt(self, chunk: _Chunk, attempt: _Attempt,
                      net: Dict[str, Any], failed_shards: Set[int],
                      error: Optional[str], deadline_flag: bool) -> None:
        shard = attempt.shard
        attempt.done = True
        if deadline_flag:
            shard.breaker.release_probe()
        else:
            shard.breaker.record_failure()
        shard.failures += 1
        failed_shards.add(shard.shard_id)
        if error:
            net.setdefault("shard_errors", {})[str(shard.shard_id)] = error
        chunk.failures += 1
        with self._lock:
            delay = self.retry_policy.delay(chunk.failures,
                                            self._jitter_rng)
        chunk.next_retry_at = time.monotonic() + delay

    def _pick_shard(self, chunk: _Chunk, participants: List[_Shard],
                    exclude: Set[int]) -> Optional[_Shard]:
        """The retry/hedge target: alive, not excluded, fresh first."""
        candidates = [
            shard for shard in participants
            if shard.alive and shard.shard_id not in exclude
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda s: (s.shard_id in chunk.tried,
                                       s.jobs, s.shard_id))
        return candidates[0]

    def _drive_gather(self, ctx: CPQContext, request, gather: _Gather,
                      req_id: int, chunks: List[_Chunk],
                      participants: List[_Shard], deadline: float,
                      net: Dict[str, Any], failed_shards: Set[int],
                      initial_bound,
                      attempts_by_id: Dict[int, Tuple[_Chunk, _Attempt]],
                      ) -> None:
        """The per-chunk state machine: collect, time out, retry, hedge.

        Runs until every chunk has exactly one accepted payload, the
        gather budget lapses, or every undelivered chunk has exhausted
        its retry ladder with no dispatchable shard left.  The
        coordinator's cancel probe (service deadline) runs at poll
        cadence, so expiry aborts promptly -- in-flight shard work is
        simply abandoned (replies for an unregistered gather are
        dropped by the collector).
        """
        consumed: Set[int] = set()
        max_attempts = self.retry_policy.max_attempts
        while True:
            ctx.check_cancelled()
            now = time.monotonic()

            # 1. Consume newly arrived replies.
            with self._lock:
                fresh = [
                    (attempt_id, shard_id, frame)
                    for attempt_id, (shard_id, frame)
                    in gather.replies.items()
                    if attempt_id not in consumed
                ]
                gather.event.clear()
            for attempt_id, __, frame in fresh:
                consumed.add(attempt_id)
                entry = attempts_by_id.get(attempt_id)
                if entry is None:  # pragma: no cover -- foreign reply
                    continue
                chunk, attempt = entry
                if chunk.payload is not None:
                    # Retried/hedged duplicate after the chunk already
                    # delivered: idempotence in action -- counted,
                    # dropped, never merged twice.
                    attempt.done = True
                    net["dedup_dropped"] += 1
                    self._count("dedup_dropped")
                    continue
                try:
                    payload = decode_frame(frame)
                except FrameError as exc:
                    net["frame_errors"] += 1
                    self._count("frame_errors")
                    self._fail_attempt(chunk, attempt, net, failed_shards,
                                       f"FrameError: {exc}", False)
                    continue
                if payload.get("ok"):
                    attempt.done = True
                    chunk.payload = payload
                    chunk.won_by_hedge = attempt.hedge
                    attempt.shard.breaker.record_success()
                    with self._lock:
                        self._latency_samples.append(now - attempt.started)
                        del self._latency_samples[:-256]
                else:
                    self._fail_attempt(
                        chunk, attempt, net, failed_shards,
                        payload.get("error"),
                        bool(payload.get("deadline")),
                    )

            # 2. Attempt timeouts and dead processes.
            for chunk in chunks:
                if chunk.payload is not None:
                    continue
                for attempt in chunk.live_attempts():
                    if not attempt.shard.alive:
                        self._fail_attempt(chunk, attempt, net,
                                           failed_shards,
                                           "shard process died", False)
                        self._respawn(attempt.shard)
                    elif now - attempt.started > attempt.timeout_s:
                        self._fail_attempt(chunk, attempt, net,
                                           failed_shards,
                                           "attempt timed out", False)

            # 3. Done, out of budget, or out of options?
            pending = [c for c in chunks if c.payload is None]
            if not pending:
                return
            if now >= deadline:
                return
            hopeless = all(
                not chunk.live_attempts()
                and (chunk.failures >= max_attempts
                     or self._pick_shard(chunk, participants, set())
                     is None)
                for chunk in pending
            )
            if hopeless:
                return

            # 4. Retries: exhausted-attempt chunks go back out, to a
            #    different shard when one is available, after backoff.
            for chunk in pending:
                if chunk.live_attempts():
                    continue
                if chunk.failures >= max_attempts:
                    continue
                if now < chunk.next_retry_at:
                    continue
                last = chunk.attempts[-1].shard.shard_id \
                    if chunk.attempts else -1
                shard = (self._pick_shard(chunk, participants, {last})
                         or self._pick_shard(chunk, participants, set()))
                if shard is None:
                    continue
                net["retries"] += 1
                self._count("retries")
                self._dispatch_attempt(req_id, request, chunk, shard,
                                       deadline, False, initial_bound,
                                       attempts_by_id)

            # 5. Hedges: one slow live attempt earns a duplicate on a
            #    sibling once it crosses the latency-quantile threshold.
            if self.hedge_policy.enabled:
                with self._lock:
                    threshold = self.hedge_policy.threshold(
                        self._latency_samples
                    )
                for chunk in pending:
                    live = chunk.live_attempts()
                    if (len(live) != 1
                            or chunk.hedges >= self.hedge_policy.max_hedges):
                        continue
                    slow = live[0]
                    if now - slow.started < threshold:
                        continue
                    sibling = self._pick_shard(
                        chunk, participants, {slow.shard.shard_id}
                    )
                    if sibling is None:
                        continue
                    chunk.hedges += 1
                    net["hedges"] += 1
                    self._count("hedges")
                    self._dispatch_attempt(req_id, request, chunk, sibling,
                                           deadline, True, initial_bound,
                                           attempts_by_id)

            gather.event.wait(_POLL_S)

    def _run_chunk_locally(self, ctx: CPQContext, request,
                           chunk: List[PartitionTask]) -> None:
        """Coordinator-side recovery: execute one chunk serially.

        Offers straight into the query's K-heap; the chunk is
        MINMINDIST-ascending, so the first task beyond the current
        bound ends the loop.
        """
        runner = request.spec.runner
        for task in chunk:
            if task.minmin > ctx.t:
                break
            ctx.root_p = self.tree_p.read_node(task.node_p.page_id)
            ctx.root_q = self.tree_q.read_node(task.node_q.page_id)
            runner(ctx, request)

    def _healthy_shards(self) -> List[_Shard]:
        """Shards whose breaker admits work, respawning dead processes
        the breaker is willing to probe."""
        healthy = []
        for shard in self._shards:
            if not shard.breaker.allow():
                continue
            if not shard.alive and not self._respawn(shard):
                shard.breaker.release_probe()
                continue
            healthy.append(shard)
        return healthy

    # -- service integration ----------------------------------------------

    def service_executor(self) -> Callable:
        """A ``cpq_executor`` for :class:`~repro.service.QueryService`.

        Routes shardable CPQ executions for this manager's pair
        through :meth:`execute`; declines (returns ``None``) other
        pairs and algorithms without ``supports_parallel``, which then
        run in-process as before.
        """

        def executor(pair_name: str, tree_p: RTree, tree_q: RTree,
                     core_request, cancel_check, tracer
                     ) -> Optional[CPQResult]:
            if pair_name != self.pair:
                return None
            if not core_request.spec.supports_parallel:
                return None
            return self.execute(core_request, cancel_check=cancel_check,
                                tracer=tracer)

        return executor
