"""Blocking keep-alive client for the network tier.

:class:`NetClient` wraps one ``http.client.HTTPConnection`` (stdlib,
persistent) and the :mod:`repro.net.wire` codecs: callers hand it the
same :class:`~repro.service.CPQRequest`/:class:`~repro.service.
KNNRequest`/:class:`~repro.service.RangeRequest` objects they would
give a local :class:`~repro.service.QueryService` and get the same
structured :class:`~repro.service.QueryResponse` back -- the network
is invisible apart from latency.  One client is one connection and is
**not** thread-safe; the load generator gives each worker thread its
own (that is what "closed-loop multi-client" means).

A request is retried once, transparently, when the server closed an
idle keep-alive connection between exchanges (the benign race of
persistent HTTP); every other transport failure raises
:class:`NetError`.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict

from repro.net import wire
from repro.service import QueryResponse

#: Transport errors worth one reconnect-and-retry on a fresh exchange.
_RETRYABLE = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    ConnectionError,
    BrokenPipeError,
)


class NetError(RuntimeError):
    """Transport-level failure talking to the edge server."""


class NetClient:
    """One persistent connection to a :class:`~repro.net.NetServer`."""

    def __init__(self, host: str, port: int, timeout_s: float = 60.0,
                 *, faults=None):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        #: Optional :class:`~repro.net.faults.FaultyClientTransport`
        #: injecting connection drops / stalls / damaged bodies into
        #: this client's exchanges (chaos testing of the edge path --
        #: a drop exercises the one-reconnect retry below, damage
        #: exercises the JSON rejection).
        self.faults = faults
        self._conn = http.client.HTTPConnection(
            host, port, timeout=timeout_s
        )

    # -- plumbing ----------------------------------------------------------

    def _exchange(self, method: str, path: str,
                  body: bytes = b"") -> Dict[str, Any]:
        """One HTTP exchange; reconnects once on a stale keep-alive."""
        for attempt in (0, 1):
            try:
                if self.faults is not None:
                    self.faults.before_send()
                self._conn.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"},
                )
                raw = self._conn.getresponse()
                payload = raw.read()
                break
            except _RETRYABLE as exc:
                self._conn.close()
                if attempt:
                    raise NetError(
                        f"{method} {path} failed: {exc}"
                    ) from exc
            except (socket.timeout, OSError) as exc:
                self._conn.close()
                raise NetError(
                    f"{method} {path} failed: {exc}"
                ) from exc
        if self.faults is not None:
            payload = self.faults.transform_response(payload)
        try:
            obj = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise NetError(
                f"non-JSON body from {method} {path} "
                f"(HTTP {raw.status})"
            ) from exc
        if raw.status == 400:
            raise wire.WireError(obj.get("error", "bad request"))
        if "error" in obj and "status" not in obj:
            raise NetError(
                f"HTTP {raw.status} from {method} {path}: "
                f"{obj['error']}"
            )
        return obj

    # -- API ---------------------------------------------------------------

    def query(self, request) -> QueryResponse:
        """Submit one service request; returns the structured response.

        Degraded outcomes (``overloaded``, ``deadline_exceeded`` ...)
        come back as responses with that status, exactly like the
        local service -- only transport and protocol failures raise.
        """
        obj = self._exchange(
            "POST", "/v1/query", wire.dumps_request(request)
        )
        return wire.decode_response(obj)

    def sql(self, statement: str, *, pair: str = None,
            deadline_ms: float = None,
            use_cache: bool = True) -> QueryResponse:
        """Run one CPQL statement on the server's catalog.

        The statement travels as text in a wire-v3 ``sql`` envelope
        (``POST /v1/sql``); the *server* parses it and resolves the
        ``FROM`` datasets against its attached catalog.  Syntax errors
        and unknown datasets surface as :class:`~repro.net.wire.
        WireError` (the 400 mapping), with the parser position in the
        message.
        """
        request = wire.SQLRequest(
            sql=statement, pair=pair,
            deadline_ms=deadline_ms, use_cache=use_cache,
        )
        obj = self._exchange(
            "POST", "/v1/sql", wire.dumps_request(request)
        )
        return wire.decode_response(obj)

    def healthz(self) -> Dict[str, Any]:
        return self._exchange("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._exchange("GET", "/stats")["stats"]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
