"""Public entry points for closest pair queries.

:class:`CPQRequest` is the one description of a K-CPQ: every consumer
-- :func:`k_closest_pairs`, the query service, the planner, the result
cache, and the CLI -- builds or receives the same frozen object instead
of re-plumbing nine keyword arguments.  :data:`ALGORITHM_REGISTRY` is
the single source of truth for the available algorithms and their
capability flags.

:func:`k_closest_pairs` runs any registered algorithm on two R-trees
and returns a :class:`~repro.core.result.CPQResult` carrying the K
pairs and the cost statistics.  The request object is the only way to
describe a query -- the historical keyword shim (deprecated since the
parallel-executor release) is gone; see ``docs/API.md`` for the
changelog note.  :func:`closest_pair` is the 1-CPQ convenience
wrapper.

Range-constrained and colored queries attach a
:class:`~repro.core.constraints.RangeSpec` /
:class:`~repro.core.constraints.ColorSpec` to the request; algorithms
whose registry entry sets ``supports_range`` / ``supports_colors``
honour them, and requesting a constraint on any other algorithm raises
:class:`~repro.errors.UnsupportedCapabilityError` at construction.

Example
-------
>>> from repro.rtree.bulk import bulk_load
>>> from repro.core import CPQRequest, k_closest_pairs
>>> sites = bulk_load([(0.0, 0.0), (5.0, 5.0)])
>>> resorts = bulk_load([(1.0, 1.0), (9.0, 9.0)])
>>> result = k_closest_pairs(
...     sites, resorts, request=CPQRequest(k=1, algorithm="heap")
... )
>>> result.pairs[0].p, result.pairs[0].q
((0.0, 0.0), (1.0, 1.0))
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.core.constraints import ColorSpec, RangeSpec
from repro.core.engine import CPQContext, traced_traversal
from repro.errors import (
    DeadlineExceeded,
    PageCorruptionError,
    UnsupportedCapabilityError,
)
from repro.core.exhaustive import exhaustive
from repro.core.heap import heap_algorithm
from repro.core.height import FIX_AT_ROOT, validate_strategy
from repro.core.naive import naive
from repro.core.parallel import (
    PARALLEL_MODES,
    PARTITION_DEPTHS,
    parallel_k_closest_pairs,
)
from repro.core.result import ClosestPair, CPQResult
from repro.core.simple import simple
from repro.core.sorted_distances import sorted_distances
from repro.core.ties import TieBreak
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.rtree.tree import RTree


# DeadlineExceeded now lives in the unified repro.errors taxonomy; the
# import above re-exports it here (and, transitively, from
# repro.service) for compatibility with every existing import site.


# ---------------------------------------------------------------------------
# Algorithm registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered CPQ algorithm and its capability flags.

    The flags let generic consumers (CLI, planner, service validation)
    reason about an algorithm without hard-coding its name: whether it
    answers K > 1 queries, honours cooperative deadlines, has a
    vectorized kernel path, and whether the cost-model planner may
    select it (NAIVE is correct but exponentially expensive, so it is
    registered as not plannable).

    ``supports_parallel`` marks algorithms the partitioned executor
    (:mod:`repro.core.parallel`) can run with ``workers > 1``.
    ``supports_range`` / ``supports_colors`` mark algorithms that
    honour a request's :class:`~repro.core.constraints.RangeSpec` /
    :class:`~repro.core.constraints.ColorSpec`; request validation
    *enforces* these flags (an incapable combination raises
    :class:`~repro.errors.UnsupportedCapabilityError`).  The
    query-shape flags describe the extension families of Section 6:
    ``self_join`` (P = Q, pass the same tree as both sides), ``semi``
    (all-nearest-neighbour join; reports one pair per P point and
    ignores ``k``), ``multiway`` (aggregate-distance tuples; the
    two-tree registry entry runs the m = 2 chain, equivalent to a
    K-CPQ), and ``incremental`` (Hjaltason & Samet distance join).
    """

    name: str
    label: str
    description: str
    supports_many: bool = True
    supports_deadline: bool = True
    supports_vectorized: bool = True
    plannable: bool = True
    supports_parallel: bool = False
    supports_range: bool = False
    supports_colors: bool = False
    #: A constrained-query specialisation of a core traversal (clipped
    #: pruning, candidate structures); excluded from
    #: :data:`CORE_ALGORITHMS` so the paper's five-algorithm suites
    #: keep their shape.
    specialized: bool = False
    self_join: bool = False
    semi: bool = False
    multiway: bool = False
    incremental: bool = False
    runner: Optional[Callable[..., CPQResult]] = field(
        default=None, repr=False, compare=False
    )


def _run_naive(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    return naive(ctx, request.height_strategy, request.use_vectorized)


def _run_exh(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    return exhaustive(ctx, request.height_strategy, request.use_vectorized)


def _run_sim(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    return simple(
        ctx,
        request.height_strategy,
        request.maxmax_pruning,
        request.use_vectorized,
    )


def _run_std(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    return sorted_distances(
        ctx,
        request.height_strategy,
        request.tie_break,
        request.maxmax_pruning,
        request.use_vectorized,
    )


def _run_heap(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    return heap_algorithm(
        ctx,
        request.height_strategy,
        request.tie_break,
        request.maxmax_pruning,
        request.use_vectorized,
    )


def _run_clipped(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    result = heap_algorithm(
        ctx,
        request.height_strategy,
        request.tie_break,
        request.maxmax_pruning,
        request.use_vectorized,
        clip_mindist=True,
    )
    return replace(result, algorithm="CLIPPED")


def _run_rcp(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    from repro.query.rcp import rcp_k_closest_pairs

    return rcp_k_closest_pairs(ctx, request)


def _run_self(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    from repro.extensions.self_cpq import self_k_closest_pairs

    if ctx.tree_p is not ctx.tree_q:
        raise ValueError(
            "algorithm 'self' joins a tree with itself; pass the same "
            "tree as both sides"
        )
    with traced_traversal(ctx, "SELF-HEAP"):
        result = self_k_closest_pairs(
            ctx.tree_p, request.k, request.metric, reset_stats=False
        )
        # Adopt the extension's counters so the traverse span's exit
        # annotations describe this query, not the unused context.
        ctx.stats = result.stats
    return result


def _run_semi(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    from repro.extensions.semi_cpq import semi_closest_pairs

    with traced_traversal(ctx, "SEMI"):
        result = semi_closest_pairs(
            ctx.tree_p, ctx.tree_q, request.metric, reset_stats=False
        )
        ctx.stats = result.stats
    return result


def _run_multiway(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    from repro.extensions.multiway import multiway_closest_tuples

    with traced_traversal(ctx, "MULTIWAY"):
        mw = multiway_closest_tuples(
            [ctx.tree_p, ctx.tree_q],
            request.k,
            "chain",
            request.metric,
            reset_stats=False,
        )
        # An m = 2 chain aggregates exactly one edge, so each result
        # tuple is an ordinary closest pair.
        pairs = [
            ClosestPair(t.distance, t.points[0], t.points[1],
                        t.oids[0], t.oids[1])
            for t in mw.tuples
        ]
        ctx.stats = mw.stats
    return CPQResult(
        pairs=pairs, stats=mw.stats, algorithm="MULTIWAY", k=request.k
    )


def _run_incremental(ctx: CPQContext, request: "CPQRequest") -> CPQResult:
    from repro.incremental.distance_join import incremental_join_request

    with traced_traversal(ctx, "INC"):
        # Buffer sizing and stats reset already happened in
        # k_closest_pairs; a second reset here would corrupt the
        # tracer's I/O delta baselines.
        result = incremental_join_request(
            ctx.tree_p,
            ctx.tree_q,
            replace(request, buffer_pages=None, reset_stats=False),
        )
        ctx.stats = result.stats
    return result


#: The single source of truth for available algorithms.  CLI choices,
#: planner candidates, and request validation all derive from it.
ALGORITHM_REGISTRY: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="naive",
            label="NAIVE",
            description="recursive, no pruning (ground truth baseline)",
            plannable=False,
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            runner=_run_naive,
        ),
        AlgorithmSpec(
            name="exh",
            label="EXH",
            description="prunes by MINMINDIST against T (Section 3.2)",
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            runner=_run_exh,
        ),
        AlgorithmSpec(
            name="sim",
            label="SIM",
            description="EXH + early T from MINMAXDIST (Section 3.3)",
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            runner=_run_sim,
        ),
        AlgorithmSpec(
            name="std",
            label="STD",
            description="SIM + ascending MINMINDIST order (Section 3.4)",
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            runner=_run_std,
        ),
        AlgorithmSpec(
            name="heap",
            label="HEAP",
            description="global min-heap instead of recursion (Section 3.5)",
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            runner=_run_heap,
        ),
        AlgorithmSpec(
            name="clipped",
            label="CLIPPED",
            description="HEAP with MINMINDIST evaluated on range-clipped "
                        "MBRs (tighter pruning inside a window)",
            plannable=False,
            supports_parallel=True,
            supports_range=True,
            supports_colors=True,
            specialized=True,
            runner=_run_clipped,
        ),
        AlgorithmSpec(
            name="rcp",
            label="RCP",
            description="precomputed-candidate structure for repeated "
                        "ranges (RCP literature); exact, memoised per "
                        "canonical window",
            plannable=False,
            supports_range=True,
            supports_colors=True,
            specialized=True,
            runner=_run_rcp,
        ),
        AlgorithmSpec(
            name="self",
            label="SELF-HEAP",
            description="K closest pairs within one set (Section 6); "
                        "pass the same tree as both sides",
            supports_deadline=False,
            supports_vectorized=False,
            plannable=False,
            self_join=True,
            runner=_run_self,
        ),
        AlgorithmSpec(
            name="semi",
            label="SEMI",
            description="all-nearest-neighbour join (Section 6); one "
                        "pair per P point, k ignored",
            supports_deadline=False,
            supports_vectorized=False,
            plannable=False,
            semi=True,
            runner=_run_semi,
        ),
        AlgorithmSpec(
            name="multiway",
            label="MULTIWAY",
            description="m=2 chain of the multi-way engine (Section 6 "
                        "future work (a)); equivalent to a K-CPQ",
            supports_deadline=False,
            supports_vectorized=False,
            plannable=False,
            multiway=True,
            runner=_run_multiway,
        ),
        AlgorithmSpec(
            name="incremental",
            label="INC",
            description="Hjaltason & Samet incremental distance join, "
                        "K-bounded (SML policy)",
            supports_deadline=False,
            supports_vectorized=False,
            plannable=False,
            incremental=True,
            runner=_run_incremental,
        ),
    )
}

#: Algorithm names in registration order; keys accepted by
#: :func:`k_closest_pairs` (kept for backwards compatibility -- derive
#: capability answers from :data:`ALGORITHM_REGISTRY`).
ALGORITHMS: Tuple[str, ...] = tuple(ALGORITHM_REGISTRY)

#: The five two-tree branch-and-bound K-CPQ algorithms from the paper;
#: the subset of :data:`ALGORITHMS` that answers an ordinary pairwise
#: query over two distinct trees (extension query types -- self join,
#: semi join, multiway, incremental -- are excluded).
CORE_ALGORITHMS: Tuple[str, ...] = tuple(
    name
    for name, spec in ALGORITHM_REGISTRY.items()
    if not (spec.specialized or spec.self_join or spec.semi
            or spec.multiway or spec.incremental)
)

#: Names the cost-model planner may choose between.
PLANNABLE_ALGORITHMS: Tuple[str, ...] = tuple(
    name for name, spec in ALGORITHM_REGISTRY.items() if spec.plannable
)

#: Algorithms that honour a request's range window / color predicates;
#: request validation enforces membership.
RANGE_ALGORITHMS: Tuple[str, ...] = tuple(
    name for name, spec in ALGORITHM_REGISTRY.items() if spec.supports_range
)

COLOR_ALGORITHMS: Tuple[str, ...] = tuple(
    name for name, spec in ALGORITHM_REGISTRY.items() if spec.supports_colors
)


# ---------------------------------------------------------------------------
# Query description
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CPQRequest:
    """Immutable description of one K closest pairs query.

    Validation and normalisation happen at construction (unknown
    algorithm / strategy / tie criterion, non-positive ``k`` or
    ``deadline_ms``, negative ``buffer_pages``), so a request that
    exists is runnable.  ``tie_break`` accepts anything
    :meth:`TieBreak.parse` does and is stored parsed.

    Execution-environment concerns (an externally supplied tracer or
    cancellation probe) stay arguments of :func:`k_closest_pairs`; the
    request describes *what* to compute, plus the ``deadline_ms`` /
    ``trace`` conveniences for callers without a service around them.

    ``workers`` > 1 routes algorithms with ``supports_parallel``
    through the partitioned executor (:mod:`repro.core.parallel`):
    ``partition_depth`` levels of root expansion feed ``workers``
    threads (or spawned processes with ``parallel_mode="process"``,
    which requires file-backed trees).  These are execution-only knobs
    -- the result is byte-identical to serial -- so they are excluded
    from :meth:`cache_key`.

    ``range`` restricts reported pairs to a window
    (:class:`~repro.core.constraints.RangeSpec`; a bare ``(lo, hi)``
    tuple is accepted and normalised) and ``colors`` to category
    combinations (:class:`~repro.core.constraints.ColorSpec`; a bare
    int is taken as the modulus of a distinct-colored query).  Both
    require the algorithm's registry entry to declare the matching
    capability flag, enforced here with
    :class:`~repro.errors.UnsupportedCapabilityError`.
    """

    k: int = 1
    algorithm: str = "heap"
    metric: MinkowskiMetric = EUCLIDEAN
    height_strategy: str = FIX_AT_ROOT
    tie_break: Optional[TieBreak] = None
    buffer_pages: Optional[int] = None
    maxmax_pruning: bool = True
    use_vectorized: bool = True
    deadline_ms: Optional[float] = None
    trace: bool = False
    reset_stats: bool = True
    workers: int = 1
    partition_depth: int = 1
    parallel_mode: str = "thread"
    range: Optional[RangeSpec] = None
    colors: Optional[ColorSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "algorithm", str(self.algorithm).lower())
        if self.algorithm not in ALGORITHM_REGISTRY:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if self.range is not None and not isinstance(self.range, RangeSpec):
            lo, hi = self.range
            object.__setattr__(self, "range", RangeSpec(tuple(lo), tuple(hi)))
        if self.colors is not None and not isinstance(self.colors, ColorSpec):
            if isinstance(self.colors, dict):
                object.__setattr__(self, "colors", ColorSpec(**self.colors))
            else:
                object.__setattr__(
                    self, "colors", ColorSpec(modulus=int(self.colors))
                )
        spec = ALGORITHM_REGISTRY[self.algorithm]
        if self.range is not None and not spec.supports_range:
            raise UnsupportedCapabilityError(
                self.algorithm, "range", RANGE_ALGORITHMS
            )
        if self.colors is not None and not spec.supports_colors:
            raise UnsupportedCapabilityError(
                self.algorithm, "colors", COLOR_ALGORITHMS
            )
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.buffer_pages is not None and self.buffer_pages < 0:
            raise ValueError("buffer_pages must be >= 0")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.partition_depth not in PARTITION_DEPTHS:
            raise ValueError(
                f"partition_depth must be one of {PARTITION_DEPTHS}"
            )
        if self.parallel_mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel_mode {self.parallel_mode!r}; "
                f"expected one of {PARALLEL_MODES}"
            )
        validate_strategy(self.height_strategy)
        if self.tie_break is not None:
            object.__setattr__(self, "tie_break", TieBreak.parse(self.tie_break))

    @property
    def spec(self) -> AlgorithmSpec:
        """The registry entry for this request's algorithm."""
        return ALGORITHM_REGISTRY[self.algorithm]

    def cache_key(self) -> Tuple:
        """The result-identity of this request as primitives.

        Two requests with equal keys return identical pairs on the same
        tree generations: fields that only change *how* the answer is
        computed (buffers, deadline, tracing, stats, and the parallel
        execution knobs ``workers`` / ``partition_depth`` /
        ``parallel_mode``) are excluded; ``use_vectorized`` is excluded
        too because the scalar path is bit-identical by construction
        (and tested to be).  Constraints contribute their *canonical*
        forms -- corners sorted and floats normalised at construction
        -- so a window given as ``(hi, lo)`` hits the cache entry of
        the same window given as ``(lo, hi)``.
        """
        return (
            self.k,
            self.algorithm,
            self.metric.p,
            self.height_strategy,
            repr(self.tie_break) if self.tie_break is not None else None,
            self.maxmax_pruning,
            self.range.canonical() if self.range is not None else None,
            self.colors.canonical() if self.colors is not None else None,
        )


def _deadline_probe(deadline_ms: float) -> Callable[[], None]:
    deadline = time.monotonic() + deadline_ms / 1000.0

    def probe() -> None:
        if time.monotonic() > deadline:
            raise DeadlineExceeded(
                f"query exceeded its deadline of {deadline_ms:g} ms"
            )

    return probe


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def k_closest_pairs(
    tree_p: RTree,
    tree_q: RTree,
    request: Optional[CPQRequest] = None,
    *,
    cancel_check: Optional[Callable[[], None]] = None,
    tracer=None,
) -> CPQResult:
    """Find the K closest pairs between the points of two R-trees.

    Parameters
    ----------
    tree_p, tree_q:
        The two indexed point sets (coordinates in workspace units;
        distances in the result are in the same units).
    request:
        The :class:`CPQRequest` describing *what* to compute -- k,
        algorithm, metric, constraints, every query knob.  ``None``
        runs the default request (1-CPQ via HEAP).  The historical
        keyword signature was removed after a deprecation cycle; build
        a request instead (see ``docs/API.md``).
    cancel_check:
        Cooperative-cancellation probe, called once per visited node
        pair; whatever it raises (a deadline, a shutdown signal)
        propagates out of the traversal.  Used by the query service.
        Beats ``request.deadline_ms`` when both are given.
    tracer:
        A :class:`repro.obs.Tracer` to record this query as a span
        tree (``traverse`` with ``io.p``/``io.q`` I/O-delta leaves and,
        for HEAP, a ``heap`` queue span); ``None`` (the default)
        installs the no-op tracer and leaves the hot path untouched.
        Beats ``request.trace``.  See ``docs/OBSERVABILITY.md``.

    Returns
    -------
    CPQResult
        Pairs sorted by ascending distance plus cost statistics:
        ``stats.disk_accesses`` (the paper's Figures 4-10 metric, in
        node reads that missed the buffer), ``buffer_hits``,
        ``distance_computations``, ``node_pairs_visited``,
        ``max_queue_size`` and ``queue_inserts`` (Section 3.9).
    """
    if request is None:
        request = CPQRequest()
    if request.buffer_pages is not None:
        tree_p.file.set_buffer_capacity(request.buffer_pages // 2)
        tree_q.file.set_buffer_capacity(request.buffer_pages // 2)
    if request.reset_stats:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
    if cancel_check is None and request.deadline_ms is not None:
        cancel_check = _deadline_probe(request.deadline_ms)
    local_tracer = None
    if tracer is None and request.trace:
        from repro.obs.trace import Tracer

        local_tracer = tracer = Tracer()

    if request.workers > 1 and request.spec.supports_parallel:
        try:
            result = parallel_k_closest_pairs(
                tree_p,
                tree_q,
                request,
                cancel_check=cancel_check,
                tracer=tracer,
            )
        except (DeadlineExceeded, ValueError):
            # Cancellation is the caller's intent; ValueError covers
            # misconfiguration (e.g. process mode without file-backed
            # trees) and PageCorruptionError, both deterministic -- a
            # serial rerun would only hit them again.
            raise
        except Exception as exc:  # noqa: BLE001 -- degrade, don't die
            # Graceful degradation: a worker-pool failure (exhausted
            # transient retries in one worker, executor breakage)
            # falls back to the serial engine, which re-reads through
            # the buffer and may well succeed.  The fallback is
            # recorded in the result's stats for observability.
            ctx = CPQContext(
                tree_p,
                tree_q,
                request.k,
                request.metric,
                cancel_check=cancel_check,
                tracer=tracer,
                range_spec=request.range,
                color_spec=request.colors,
            )
            result = request.spec.runner(ctx, request)
            result.stats.extra["parallel_fallback"] = {
                "error": f"{type(exc).__name__}: {exc}",
                "workers_requested": request.workers,
            }
    else:
        ctx = CPQContext(
            tree_p,
            tree_q,
            request.k,
            request.metric,
            cancel_check=cancel_check,
            tracer=tracer,
            range_spec=request.range,
            color_spec=request.colors,
        )
        result = request.spec.runner(ctx, request)
    if local_tracer is not None:
        traces = local_tracer.pop_traces()
        result.trace = traces[-1] if traces else None
    return result


def closest_pair(
    tree_p: RTree,
    tree_q: RTree,
    algorithm: str = "heap",
    **kwargs,
) -> Optional[ClosestPair]:
    """The single closest pair (1-CPQ), or ``None`` if either set is
    empty.

    Parameters
    ----------
    tree_p, tree_q:
        The two indexed point sets.
    algorithm:
        As for :func:`k_closest_pairs`; the 1-CPQ case uses the
        stronger MINMAXDIST bound of Inequality 2 (Section 2.3).
    **kwargs:
        Forwarded to :func:`k_closest_pairs` (metric, buffer_pages,
        tracer, ...).

    Returns
    -------
    Optional[ClosestPair]
        The minimum-distance pair (distance in workspace units), or
        ``None`` when ``|P| * |Q| == 0``.
    """
    tracer = kwargs.pop("tracer", None)
    cancel_check = kwargs.pop("cancel_check", None)
    request = CPQRequest(k=1, algorithm=algorithm, **kwargs)
    result = k_closest_pairs(
        tree_p, tree_q, request=request,
        cancel_check=cancel_check, tracer=tracer,
    )
    return result.pairs[0] if result.pairs else None
