"""Public entry points for closest pair queries.

:func:`k_closest_pairs` runs any of the five algorithms on two R-trees
and returns a :class:`~repro.core.result.CPQResult` carrying the K
pairs and the cost statistics.  :func:`closest_pair` is the 1-CPQ
convenience wrapper.

Example
-------
>>> from repro.rtree.bulk import bulk_load
>>> from repro.core import k_closest_pairs
>>> sites = bulk_load([(0.0, 0.0), (5.0, 5.0)])
>>> resorts = bulk_load([(1.0, 1.0), (9.0, 9.0)])
>>> result = k_closest_pairs(sites, resorts, k=1, algorithm="heap")
>>> result.pairs[0].p, result.pairs[0].q
((0.0, 0.0), (1.0, 1.0))
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.engine import CPQContext
from repro.core.exhaustive import exhaustive
from repro.core.heap import heap_algorithm
from repro.core.height import FIX_AT_ROOT
from repro.core.naive import naive
from repro.core.result import ClosestPair, CPQResult
from repro.core.simple import simple
from repro.core.sorted_distances import sorted_distances
from repro.core.ties import TieBreak
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.rtree.tree import RTree

#: Algorithm registry; keys accepted by :func:`k_closest_pairs`.
ALGORITHMS = ("naive", "exh", "sim", "std", "heap")


def k_closest_pairs(
    tree_p: RTree,
    tree_q: RTree,
    k: int = 1,
    algorithm: str = "heap",
    *,
    metric: MinkowskiMetric = EUCLIDEAN,
    height_strategy: str = FIX_AT_ROOT,
    tie_break: Optional[TieBreak] = None,
    buffer_pages: Optional[int] = None,
    reset_stats: bool = True,
    maxmax_pruning: bool = True,
    cancel_check: Optional[Callable[[], None]] = None,
    tracer=None,
) -> CPQResult:
    """Find the K closest pairs between the points of two R-trees.

    Parameters
    ----------
    tree_p, tree_q:
        The two indexed point sets (coordinates in workspace units;
        distances in the result are in the same units).
    k:
        Number of pairs to report (``1`` gives the 1-CPQ special case
        with its stronger MINMAXDIST pruning).
    algorithm:
        One of ``"naive"``, ``"exh"``, ``"sim"``, ``"std"``, ``"heap"``.
    metric:
        Minkowski metric; Euclidean by default.
    height_strategy:
        ``"fix-at-root"`` (paper's recommendation) or
        ``"fix-at-leaves"`` for trees of different heights.
    tie_break:
        MINMINDIST tie-break chain for STD/HEAP (anything accepted by
        :meth:`TieBreak.parse`); default T1.
    buffer_pages:
        Total LRU buffer size B; each tree receives B // 2 pages
        (Section 4.3.3).  ``None`` leaves the trees' buffers as-is.
    reset_stats:
        Reset I/O counters and cold-start the buffers before running,
        so the result's statistics describe exactly this query.
    maxmax_pruning:
        For K > 1 with SIM/STD/HEAP: use the MAXMAXDIST accumulation
        bound of Section 3.8 (the paper's implemented variant); off
        falls back to the plain K-heap-threshold modification.
    cancel_check:
        Cooperative-cancellation probe, called once per visited node
        pair; whatever it raises (a deadline, a shutdown signal)
        propagates out of the traversal.  Used by the query service.
    tracer:
        A :class:`repro.obs.Tracer` to record this query as a span
        tree (``traverse`` with ``io.p``/``io.q`` I/O-delta leaves and,
        for HEAP, a ``heap`` queue span); ``None`` (the default)
        installs the no-op tracer and leaves the hot path untouched.
        See ``docs/OBSERVABILITY.md``.

    Returns
    -------
    CPQResult
        Pairs sorted by ascending distance plus cost statistics:
        ``stats.disk_accesses`` (the paper's Figures 4-10 metric, in
        node reads that missed the buffer), ``buffer_hits``,
        ``distance_computations``, ``node_pairs_visited``,
        ``max_queue_size`` and ``queue_inserts`` (Section 3.9).
    """
    algorithm = algorithm.lower()
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if k < 1:
        raise ValueError("k must be >= 1")
    ties = TieBreak.parse(tie_break) if tie_break is not None else None
    if buffer_pages is not None:
        if buffer_pages < 0:
            raise ValueError("buffer_pages must be >= 0")
        tree_p.file.set_buffer_capacity(buffer_pages // 2)
        tree_q.file.set_buffer_capacity(buffer_pages // 2)
    if reset_stats:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()

    ctx = CPQContext(
        tree_p, tree_q, k, metric, cancel_check=cancel_check, tracer=tracer
    )
    if algorithm == "naive":
        return naive(ctx, height_strategy)
    if algorithm == "exh":
        return exhaustive(ctx, height_strategy)
    if algorithm == "sim":
        return simple(ctx, height_strategy, maxmax_pruning)
    if algorithm == "std":
        return sorted_distances(ctx, height_strategy, ties, maxmax_pruning)
    return heap_algorithm(ctx, height_strategy, ties, maxmax_pruning)


def closest_pair(
    tree_p: RTree,
    tree_q: RTree,
    algorithm: str = "heap",
    **kwargs,
) -> Optional[ClosestPair]:
    """The single closest pair (1-CPQ), or ``None`` if either set is
    empty.

    Parameters
    ----------
    tree_p, tree_q:
        The two indexed point sets.
    algorithm:
        As for :func:`k_closest_pairs`; the 1-CPQ case uses the
        stronger MINMAXDIST bound of Inequality 2 (Section 2.3).
    **kwargs:
        Forwarded to :func:`k_closest_pairs` (metric, buffer_pages,
        tracer, ...).

    Returns
    -------
    Optional[ClosestPair]
        The minimum-distance pair (distance in workspace units), or
        ``None`` when ``|P| * |Q| == 0``.
    """
    result = k_closest_pairs(tree_p, tree_q, k=1, algorithm=algorithm, **kwargs)
    return result.pairs[0] if result.pairs else None
