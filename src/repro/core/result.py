"""Result types for closest pair queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.storage.stats import QueryStats

Point = Tuple[float, ...]


@dataclass(frozen=True, order=True)
class ClosestPair:
    """One result pair: a point of P and a point of Q with their distance.

    Ordering is by distance (then coordinates), so a sorted list of
    ClosestPair objects is in the paper's result order.
    """

    distance: float
    p: Point
    q: Point
    p_oid: int = 0
    q_oid: int = 0


@dataclass
class CPQResult:
    """The outcome of one K-CPQ execution.

    ``pairs`` holds the K closest pairs sorted by ascending distance
    (fewer than K when ``|P| * |Q| < K``).  ``stats`` carries the cost
    counters -- ``stats.disk_accesses`` is the number the paper plots.
    ``trace`` is the finished root span when the query was issued with
    ``CPQRequest(trace=True)`` and no external tracer; ``None``
    otherwise.
    """

    pairs: List[ClosestPair] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    algorithm: str = ""
    k: int = 1
    trace: Optional[object] = None

    @property
    def max_distance(self) -> float:
        """Distance of the K-th (worst) reported pair."""
        if not self.pairs:
            raise ValueError("empty result has no distances")
        return self.pairs[-1].distance

    @property
    def min_distance(self) -> float:
        """Distance of the closest reported pair."""
        if not self.pairs:
            raise ValueError("empty result has no distances")
        return self.pairs[0].distance

    def distances(self) -> List[float]:
        return [pair.distance for pair in self.pairs]
