"""Result types for closest pair queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.storage.stats import QueryStats

Point = Tuple[float, ...]


@dataclass(frozen=True, order=True)
class ClosestPair:
    """One result pair: a point of P and a point of Q with their distance.

    Ordering is by distance (then coordinates), so a sorted list of
    ClosestPair objects is in the paper's result order.
    """

    distance: float
    p: Point
    q: Point
    p_oid: int = 0
    q_oid: int = 0


@dataclass
class CPQResult:
    """The outcome of one K-CPQ execution.

    ``pairs`` holds the K closest pairs sorted by ascending distance
    (fewer than K when ``|P| * |Q| < K``).  ``stats`` carries the cost
    counters -- ``stats.disk_accesses`` is the number the paper plots.
    ``trace`` is the finished root span when the query was issued with
    ``CPQRequest(trace=True)`` and no external tracer; ``None``
    otherwise.

    ``incremental`` is a live continuation iterator when the query ran
    through the incremental distance join with
    ``incremental_join_request(..., continuation=True)``: consuming it
    yields the (K+1)-th, (K+2)-th, ... closest pairs lazily, in
    ascending distance order, updating ``stats`` as it goes.  ``None``
    for every materialised (non-incremental) execution.
    """

    pairs: List[ClosestPair] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    algorithm: str = ""
    k: int = 1
    trace: Optional[object] = None
    incremental: Optional[Iterator["ClosestPair"]] = None

    @property
    def max_distance(self) -> float:
        """Distance of the K-th (worst) reported pair."""
        if not self.pairs:
            raise ValueError("empty result has no distances")
        return self.pairs[-1].distance

    @property
    def min_distance(self) -> float:
        """Distance of the closest reported pair."""
        if not self.pairs:
            raise ValueError("empty result has no distances")
        return self.pairs[0].distance

    def distances(self) -> List[float]:
        return [pair.distance for pair in self.pairs]
