"""The Naive algorithm (Section 3.1).

Recursively visits *every* pair of subtrees and computes every point
pair distance; no pruning at all.  Exponentially expensive -- the paper
excludes it from the experiments -- but it is the ground truth the test
suite compares everything against on small inputs.
"""

from __future__ import annotations

from repro.core.engine import CPQContext, CPQOptions, run_recursive
from repro.core.height import FIX_AT_ROOT
from repro.core.result import CPQResult

NAME = "NAIVE"


def naive(
    ctx: CPQContext,
    height_strategy: str = FIX_AT_ROOT,
    use_vectorized: bool = True,
) -> CPQResult:
    """Run the Naive algorithm on a prepared query context."""
    options = CPQOptions(
        prune=False,
        update_bound=False,
        sort=False,
        height_strategy=height_strategy,
        use_vectorized=use_vectorized,
    )
    return run_recursive(ctx, options, NAME)
