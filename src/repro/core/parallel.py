"""Intra-query parallel K-CPQ execution.

The paper's branch-and-bound traversals decompose naturally: expanding
both roots one or two levels yields a frontier of subtree pairs whose
point-pair populations are *disjoint* (every point lives in exactly one
leaf), so the frontier partitions the search space.  Each partition is
an independent K-CPQ over a smaller (root_P, root_Q) pair; running the
unmodified serial algorithm on each and merging the per-worker K-heaps
answers the original query.

Execution plan
--------------
1. **Partition** (coordinator thread): expand the root pair
   ``partition_depth`` (1 or 2) levels with the same candidate
   generation the serial algorithms use, then sort the resulting
   subtree pairs by MINMINDIST (ascending, stable) via the batched
   kernel :func:`repro.geometry.vectorized.batch_mindist_argsort` --
   closest work first, so the global bound tightens fastest.
2. **Fan out**: thread workers pull tasks from a shared cursor
   (dynamic load balancing); the opt-in process mode ships static
   round-robin chunks of page-id pairs to spawned workers that reopen
   the trees through read-only :class:`FilePageStore` handles.
3. **Bound sharing** (thread mode): workers periodically publish their
   K-heap snapshot and metric bound to a lock-guarded
   :class:`SharedBound`; ``z`` is the K-th smallest distance over the
   merged snapshots (disjoint partitions -- no pair is ever counted
   twice, keeping z conservative).  Tasks whose MINMINDIST exceeds z
   are skipped without any I/O; since tasks are sorted, the first skip
   ends the worker's loop.
4. **Merge**: per-worker pairs are re-offered to the coordinator's
   K-heap, whose canonical total-order tie-breaking
   (:mod:`repro.core.kheap`) makes the merged result a pure function
   of the offered set -- byte-identical to the serial path, tie order
   included.

Determinism
-----------
Every executor -- serial, threaded, process-chunked, any refresh
cadence -- maintains ``t >= d_K`` (the true K-th smallest distance):
the K-heap threshold is the K-th best of a *subset* of pairs, and the
metric bounds are upper bounds on ``d_K`` by construction (Section
3.8).  Pruning is strict (``> t``), so every pair with ``d <= d_K`` is
offered everywhere; the canonical K-heap then retains exactly the K
canonically-smallest pairs of the universe, regardless of discovery
order.  See ``docs/ARCHITECTURE.md`` ("Parallel execution").
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.engine import (
    CPQContext,
    CPQOptions,
    generate_candidates,
    traced_traversal,
)
from repro.core.result import ClosestPair, CPQResult
from repro.geometry.vectorized import batch_mindist_argsort
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

#: Supported partition depths (levels of root expansion).
PARTITION_DEPTHS = (1, 2)

#: Worker pool flavours.
PARALLEL_MODES = ("thread", "process")

#: Node-pair visits between bound refreshes inside a worker's task.
DEFAULT_REFRESH_INTERVAL = 32

#: Candidate-generation policy per algorithm -- the partitioner must
#: prune (or not) exactly like the algorithm it feeds, so a partition
#: is never dropped that the serial traversal would have descended.
_PARTITION_POLICY = {
    "naive": dict(prune=False, update_bound=False),
    "exh": dict(prune=True, update_bound=False),
    "sim": dict(prune=True, update_bound=True),
    "std": dict(prune=True, update_bound=True),
    "heap": dict(prune=True, update_bound=True),
    # CLIPPED = HEAP policy + range-clipped MINMINDIST.  (The constrained
    # suppression of update_bound happens inside generate_candidates via
    # ctx.constrained, so no constrained variants are needed here.)
    "clipped": dict(prune=True, update_bound=True, clip_mindist=True),
}


class _Aborted(Exception):
    """Internal: another worker failed; unwind quietly."""


@dataclass
class PartitionTask:
    """One subtree pair of the partition frontier."""

    node_p: Node
    node_q: Node
    minmin: float


@dataclass
class WorkerReport:
    """What one worker hands back to the coordinator."""

    worker_id: int
    pairs: List[ClosestPair] = field(default_factory=list)
    tasks_completed: int = 0
    publishes: int = 0
    node_pairs_visited: int = 0
    distance_computations: int = 0
    queue_inserts: int = 0
    max_queue_size: int = 0
    wall_ms: float = 0.0


class SharedBound:
    """Lock-guarded global bound z shared by thread workers.

    Each worker *replaces* its own snapshot (it never appends), so the
    merged view holds every pair at most once even across repeated
    refreshes; combined with partition disjointness this keeps the
    K-th smallest merged distance a valid upper bound on the true
    ``d_K`` at all times.  ``z`` additionally folds in the workers'
    MINMAXDIST-derived metric bounds.
    """

    def __init__(self, k: int, initial: float = float("inf")):
        self.k = k
        self._lock = threading.Lock()
        self._snapshots: dict = {}
        self._metric_bound = initial
        #: Current global bound; read without the lock (a float read is
        #: atomic, and a stale value is merely less tight, never wrong).
        self.z = initial
        self.publishes = 0

    def publish(
        self,
        worker_id: int,
        pairs: List[ClosestPair],
        metric_bound: float = float("inf"),
    ) -> float:
        """Install a worker's snapshot; returns the refreshed z."""
        with self._lock:
            self.publishes += 1
            self._snapshots[worker_id] = pairs
            if metric_bound < self._metric_bound:
                self._metric_bound = metric_bound
            merged: List[ClosestPair] = []
            for snapshot in self._snapshots.values():
                merged.extend(snapshot)
            if len(merged) >= self.k:
                merged.sort()
                kth = merged[self.k - 1].distance
            else:
                kth = float("inf")
            self.z = min(kth, self._metric_bound)
            return self.z


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

def partition_tasks(ctx: CPQContext, request) -> List[PartitionTask]:
    """Expand the root pair into a sorted frontier of subtree pairs.

    Uses the same :func:`generate_candidates` machinery as the serial
    algorithms (same expansion sides, same conservative pruning), then
    orders the frontier by elementwise MINMINDIST through the batched
    kernel.  Mixed-height pairs follow the request's height strategy;
    leaf/leaf pairs pass through unexpanded.
    """
    policy = _PARTITION_POLICY[request.algorithm]
    options = CPQOptions(
        prune=policy["prune"],
        update_bound=policy["update_bound"],
        sort=False,
        height_strategy=request.height_strategy,
        maxmax_k_pruning=request.maxmax_pruning,
        use_vectorized=request.use_vectorized,
        clip_mindist=policy.get("clip_mindist", False),
    )
    frontier: List[Tuple[Node, Node]] = [(ctx.root_p, ctx.root_q)]
    for _ in range(request.partition_depth):
        if all(p.is_leaf and q.is_leaf for p, q in frontier):
            break
        expanded: List[Tuple[Node, Node]] = []
        for node_p, node_q in frontier:
            if node_p.is_leaf and node_q.is_leaf:
                expanded.append((node_p, node_q))
                continue
            ctx.check_cancelled()
            ctx.stats.node_pairs_visited += 1
            candidates = generate_candidates(ctx, node_p, node_q, options)
            for position in range(len(candidates)):
                expanded.append(candidates.child_nodes(ctx, position))
        frontier = expanded
    if not frontier:
        return []
    lo_p = np.array([p.mbr().lo for p, _ in frontier], dtype=float)
    hi_p = np.array([p.mbr().hi for p, _ in frontier], dtype=float)
    lo_q = np.array([q.mbr().lo for _, q in frontier], dtype=float)
    hi_q = np.array([q.mbr().hi for _, q in frontier], dtype=float)
    order, values = batch_mindist_argsort(
        lo_p, hi_p, lo_q, hi_q, ctx.metric
    )
    return [
        PartitionTask(frontier[i][0], frontier[i][1], float(values[i]))
        for i in map(int, order)
    ]


# ---------------------------------------------------------------------------
# Thread mode
# ---------------------------------------------------------------------------

def _thread_worker(
    worker_id: int,
    ctx: CPQContext,
    request,
    tasks: List[PartitionTask],
    cursor: List[int],
    cursor_lock: threading.Lock,
    shared: SharedBound,
    stop: threading.Event,
    base_probe: Optional[Callable[[], None]],
    refresh_interval: int,
) -> WorkerReport:
    runner = request.spec.runner
    wctx = CPQContext(
        ctx.tree_p,
        ctx.tree_q,
        request.k,
        request.metric,
        roots=(ctx.root_p, ctx.root_q),
        root_areas=(ctx.root_area_p, ctx.root_area_q),
        range_spec=request.range,
        color_spec=request.colors,
    )
    wctx.bound = ctx.bound
    report = WorkerReport(worker_id=worker_id)
    visits = 0

    def probe() -> None:
        nonlocal visits
        if stop.is_set():
            raise _Aborted
        if base_probe is not None:
            base_probe()
        visits += 1
        if visits % refresh_interval == 0:
            report.publishes += 1
            wctx.update_bound(
                shared.publish(
                    worker_id, wctx.kheap.sorted_pairs(), wctx.bound
                )
            )

    wctx.cancel_check = probe
    start = time.perf_counter()
    try:
        while not stop.is_set():
            with cursor_lock:
                index = cursor[0]
                cursor[0] += 1
            if index >= len(tasks):
                break
            task = tasks[index]
            if task.minmin > min(wctx.t, shared.z):
                break  # sorted ascending: nothing left can contribute
            wctx.root_p = task.node_p
            wctx.root_q = task.node_q
            runner(wctx, request)
            report.tasks_completed += 1
            report.publishes += 1
            wctx.update_bound(
                shared.publish(
                    worker_id, wctx.kheap.sorted_pairs(), wctx.bound
                )
            )
    except _Aborted:
        pass
    except BaseException:
        stop.set()
        raise
    report.wall_ms = (time.perf_counter() - start) * 1000.0
    report.pairs = wctx.kheap.sorted_pairs()
    # I/O fields of wctx.stats are garbage (each runner call re-merges
    # the shared tree counters); the traversal counters are exact.
    report.node_pairs_visited = wctx.stats.node_pairs_visited
    report.distance_computations = wctx.stats.distance_computations
    report.queue_inserts = wctx.stats.queue_inserts
    report.max_queue_size = wctx.stats.max_queue_size
    return report


def _run_threads(
    ctx: CPQContext,
    request,
    tasks: List[PartitionTask],
    refresh_interval: int,
) -> List[WorkerReport]:
    from concurrent.futures import ThreadPoolExecutor

    n = max(1, min(request.workers, len(tasks)))
    shared = SharedBound(request.k, initial=ctx.bound)
    cursor = [0]
    cursor_lock = threading.Lock()
    stop = threading.Event()
    base_probe = ctx.cancel_check
    with ThreadPoolExecutor(
        max_workers=n, thread_name_prefix="cpq-worker"
    ) as pool:
        futures = [
            pool.submit(
                _thread_worker,
                wid,
                ctx,
                request,
                tasks,
                cursor,
                cursor_lock,
                shared,
                stop,
                base_probe,
                refresh_interval,
            )
            for wid in range(n)
        ]
        reports = [future.result() for future in futures]
    ctx.stats.extra.setdefault("parallel", {})["publishes"] = shared.publishes
    return reports


# ---------------------------------------------------------------------------
# Process mode (opt-in)
# ---------------------------------------------------------------------------

def _open_worker_tree(payload: dict, side: str) -> RTree:
    path, page_size = payload[f"store_{side}"]
    store = FilePageStore(path, page_size, readonly=True)
    file = PagedFile(
        store,
        buffer_capacity=payload[f"buffer_{side}"],
        page_size=page_size,
        read_latency=payload[f"latency_{side}"],
    )
    return RTree.from_storage(file, payload[f"meta_{side}"])


def _process_worker(payload: dict) -> dict:
    """Run one chunk of tasks in a spawned process.

    Reopens both trees through fresh read-only file handles, runs the
    serial algorithm per task with the coordinator's partition-time
    bound as the initial z (no cross-process refresh), and returns
    pairs plus counters.  Module-level so it pickles by reference.
    """
    request = payload["request"]
    tree_p = _open_worker_tree(payload, "p")
    tree_q = _open_worker_tree(payload, "q")
    ctx = CPQContext(
        tree_p, tree_q, request.k, request.metric,
        range_spec=request.range, color_spec=request.colors,
    )
    ctx.bound = payload["initial_bound"]
    if request.deadline_ms is not None:
        from repro.core.api import _deadline_probe

        ctx.cancel_check = _deadline_probe(request.deadline_ms)
    runner = request.spec.runner
    completed = 0
    for page_p, page_q, minmin in payload["tasks"]:
        if minmin > ctx.t:
            break  # chunk is ascending: the rest are no better
        ctx.root_p = tree_p.read_node(page_p)
        ctx.root_q = tree_q.read_node(page_q)
        runner(ctx, request)
        completed += 1
    return {
        "pairs": ctx.kheap.sorted_pairs(),
        "tasks_completed": completed,
        "node_pairs_visited": ctx.stats.node_pairs_visited,
        "distance_computations": ctx.stats.distance_computations,
        "queue_inserts": ctx.stats.queue_inserts,
        "max_queue_size": ctx.stats.max_queue_size,
        "disk_reads": tree_p.stats.disk_reads + tree_q.stats.disk_reads,
        "buffer_hits": tree_p.stats.buffer_hits + tree_q.stats.buffer_hits,
    }


def _run_process(
    ctx: CPQContext, request, tasks: List[PartitionTask]
) -> List[WorkerReport]:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    payload_base = {}
    for side, tree in (("p", ctx.tree_p), ("q", ctx.tree_q)):
        store = tree.file.store
        if not isinstance(store, FilePageStore):
            raise ValueError(
                "parallel_mode='process' requires file-backed trees "
                "(FilePageStore); in-memory trees cannot be reopened "
                "by worker processes"
            )
        store.flush()  # workers read through their own descriptors
        payload_base[f"store_{side}"] = (store.path, store.page_size)
        payload_base[f"meta_{side}"] = tree.metadata()
        payload_base[f"buffer_{side}"] = tree.file.buffer.capacity
        payload_base[f"latency_{side}"] = tree.file.read_latency
    payload_base["request"] = request
    payload_base["initial_bound"] = ctx.bound

    n = max(1, min(request.workers, len(tasks)))
    chunks = [tasks[i::n] for i in range(n)]  # round-robin, stays sorted
    payloads = [
        dict(
            payload_base,
            tasks=[
                (t.node_p.page_id, t.node_q.page_id, t.minmin)
                for t in chunk
            ],
        )
        for chunk in chunks
        if chunk
    ]
    with ProcessPoolExecutor(
        max_workers=len(payloads),
        mp_context=multiprocessing.get_context("spawn"),
    ) as pool:
        raw = list(pool.map(_process_worker, payloads))
    reports = []
    child_disk = child_hits = 0
    for wid, r in enumerate(raw):
        reports.append(
            WorkerReport(
                worker_id=wid,
                pairs=r["pairs"],
                tasks_completed=r["tasks_completed"],
                node_pairs_visited=r["node_pairs_visited"],
                distance_computations=r["distance_computations"],
                queue_inserts=r["queue_inserts"],
                max_queue_size=r["max_queue_size"],
            )
        )
        child_disk += r["disk_reads"]
        child_hits += r["buffer_hits"]
    # Children count their own I/O; fold it into the query stats (the
    # coordinator's tree counters only saw the partitioning reads).
    ctx.stats.disk_accesses += child_disk
    ctx.stats.buffer_hits += child_hits
    ctx.stats.extra.setdefault("parallel", {})["child_io"] = {
        "disk_reads": child_disk, "buffer_hits": child_hits,
    }
    return reports


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def parallel_k_closest_pairs(
    tree_p: RTree,
    tree_q: RTree,
    request,
    *,
    cancel_check: Optional[Callable[[], None]] = None,
    tracer=None,
    refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
) -> CPQResult:
    """Run one K-CPQ with ``request.workers`` parallel workers.

    Called by :func:`repro.core.api.k_closest_pairs` when the request
    asks for more than one worker; the result (pairs, tie order) is
    byte-identical to the serial path for every registered algorithm
    that sets ``supports_parallel``.
    """
    spec = request.spec
    ctx = CPQContext(
        tree_p,
        tree_q,
        request.k,
        request.metric,
        cancel_check=cancel_check,
        tracer=tracer,
        range_spec=request.range,
        color_spec=request.colors,
    )
    if ctx.root_p is None or ctx.root_q is None:
        return ctx.result(spec.label)
    buffers = (tree_p.file.buffer, tree_q.file.buffer)
    base_contentions = sum(b.contentions for b in buffers)
    with traced_traversal(
        ctx,
        spec.label,
        workers=request.workers,
        parallel_mode=request.parallel_mode,
        partition_depth=request.partition_depth,
    ):
        tasks = partition_tasks(ctx, request)
        if request.parallel_mode == "process":
            reports = _run_process(ctx, request, tasks)
        else:
            reports = _run_threads(ctx, request, tasks, refresh_interval)
        for report in reports:
            for pair in report.pairs:
                ctx.kheap.offer(pair)
            ctx.stats.node_pairs_visited += report.node_pairs_visited
            ctx.stats.distance_computations += report.distance_computations
            ctx.stats.queue_inserts += report.queue_inserts
            ctx.stats.max_queue_size = max(
                ctx.stats.max_queue_size, report.max_queue_size
            )
        completed = sum(r.tasks_completed for r in reports)
        info = ctx.stats.extra.setdefault("parallel", {})
        info.update(
            mode=request.parallel_mode,
            workers=len(reports),
            partition_depth=request.partition_depth,
            tasks=len(tasks),
            tasks_completed=completed,
            tasks_skipped=len(tasks) - completed,
            buffer_contentions=(
                sum(b.contentions for b in buffers) - base_contentions
            ),
        )
        if ctx.tracer.enabled:
            for report in reports:
                with ctx.tracer.span(
                    "worker", worker=report.worker_id
                ) as span:
                    span.annotate(
                        tasks_completed=report.tasks_completed,
                        pairs=len(report.pairs),
                        node_pairs_visited=report.node_pairs_visited,
                        publishes=report.publishes,
                    )
                span.duration_ms = round(report.wall_ms, 3)
    return ctx.result(spec.label)
