"""The K-heap: running set of the K closest pairs found so far.

Section 3.8: "an extra structure that holds the K Closest Pairs ... is
organized as a max heap (called K-heap) and holds pairs of points
according to their distance.  The pair of points with the largest
distance resides on top."  Once full, its top distance is the pruning
bound ``T``; a newly discovered pair replaces the top only if closer.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List, Tuple

from repro.core.result import ClosestPair


class KHeap:
    """Bounded max-heap of the best (smallest-distance) K pairs.

    Implemented over :mod:`heapq` (a min-heap) with negated distances.
    A monotonically increasing sequence number breaks distance ties so
    heap items never compare payloads.
    """

    __slots__ = ("k", "_heap", "_seq")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: List[Tuple[float, int, ClosestPair]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current pruning bound: the K-th best distance, or +inf.

        While the heap has empty slots every pair is a candidate, so
        the bound is infinite (Section 3.8).
        """
        if not self.full:
            return math.inf
        return -self._heap[0][0]

    def offer(self, pair: ClosestPair) -> bool:
        """Consider a pair; returns True when it entered the heap."""
        if not self.full:
            self._seq += 1
            heapq.heappush(self._heap, (-pair.distance, self._seq, pair))
            return True
        if pair.distance < self.threshold:
            self._seq += 1
            heapq.heapreplace(self._heap, (-pair.distance, self._seq, pair))
            return True
        return False

    def sorted_pairs(self) -> List[ClosestPair]:
        """The held pairs in ascending distance order."""
        return sorted(pair for __, __, pair in self._heap)

    def __iter__(self) -> Iterator[ClosestPair]:
        return (pair for __, __, pair in self._heap)
