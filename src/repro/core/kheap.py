"""The K-heap: running set of the K closest pairs found so far.

Section 3.8: "an extra structure that holds the K Closest Pairs ... is
organized as a max heap (called K-heap) and holds pairs of points
according to their distance.  The pair of points with the largest
distance resides on top."  Once full, its top distance is the pruning
bound ``T``; a newly discovered pair replaces the top only if closer.

Tie-breaking is *canonical*: pairs are compared by the full
:class:`~repro.core.result.ClosestPair` total order (distance, then
point coordinates, then object ids), not by discovery order.  The
retained set is therefore exactly the K smallest pairs in that total
order among all pairs ever offered -- a pure function of the offered
*set*, independent of offer order.  This is what makes the parallel
executor (:mod:`repro.core.parallel`) byte-identical to the serial
path: any traversal that offers every pair within the final bound
yields the same K-heap content, including tie order.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List

from repro.core.result import ClosestPair


class _MaxItem:
    """Inverts :class:`ClosestPair` ordering so heapq acts as a max-heap."""

    __slots__ = ("pair",)

    def __init__(self, pair: ClosestPair):
        self.pair = pair

    def __lt__(self, other: "_MaxItem") -> bool:
        return other.pair < self.pair


class KHeap:
    """Bounded max-heap of the best (smallest-distance) K pairs.

    Implemented over :mod:`heapq` (a min-heap) with inverted-comparison
    items.  The heap top is the *canonically largest* retained pair;
    once full, an offered pair enters only when it is canonically
    smaller than the top, so equal-distance ties resolve by the pair's
    own total order rather than by arrival order.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: List[_MaxItem] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Current pruning bound: the K-th best distance, or +inf.

        While the heap has empty slots every pair is a candidate, so
        the bound is infinite (Section 3.8).
        """
        if not self.full:
            return math.inf
        return self._heap[0].pair.distance

    def offer(self, pair: ClosestPair) -> bool:
        """Consider a pair; returns True when it entered the heap."""
        if not self.full:
            heapq.heappush(self._heap, _MaxItem(pair))
            return True
        if pair < self._heap[0].pair:
            heapq.heapreplace(self._heap, _MaxItem(pair))
            return True
        return False

    def sorted_pairs(self) -> List[ClosestPair]:
        """The held pairs in ascending canonical order."""
        return sorted(item.pair for item in self._heap)

    def __iter__(self) -> Iterator[ClosestPair]:
        return (item.pair for item in self._heap)
