"""The Sorted Distances recursive algorithm, STD (Section 3.4).

Improves SIM by visiting the surviving child pairs in ascending order
of MINMINDIST: pairs with smaller MINMINDIST are more likely to contain
the closest pair, so processing them first tightens ``T`` sooner and
prunes more of the remaining pairs.  Sorting uses a stable mergesort
(the paper compared six sorting methods and chose MergeSort); equal
MINMINDIST values are resolved by a tie-break chain (Section 3.6,
default T1 -- the experimental winner of Figure 2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import CPQContext, CPQOptions, run_recursive
from repro.core.height import FIX_AT_ROOT
from repro.core.result import CPQResult
from repro.core.ties import DEFAULT_TIE_BREAK, TieBreak

NAME = "STD"


def sorted_distances(
    ctx: CPQContext,
    height_strategy: str = FIX_AT_ROOT,
    tie_break: Optional[TieBreak] = None,
    maxmax_pruning: bool = True,
    use_vectorized: bool = True,
) -> CPQResult:
    """Run the Sorted Distances algorithm on a prepared query context.

    ``maxmax_pruning`` toggles the Section 3.8 MAXMAXDIST accumulation
    bound for K > 1 (off = the simple K-heap-threshold modification).
    """
    options = CPQOptions(
        prune=True,
        update_bound=True,
        sort=True,
        tie_break=tie_break if tie_break is not None else DEFAULT_TIE_BREAK,
        height_strategy=height_strategy,
        maxmax_k_pruning=maxmax_pruning,
        use_vectorized=use_vectorized,
    )
    return run_recursive(
        ctx, options, NAME,
        span_attrs={
            "tie_break": repr(options.tie_break),
            "height_strategy": height_strategy,
            "maxmax_k_pruning": maxmax_pruning,
        } if ctx.tracer.enabled else None,
    )
