"""The Simple recursive algorithm, SIM (Section 3.3).

Improves EXH by tightening ``T`` as early as possible using
Inequality 2: when a pair of internal nodes is visited, the minimum
MINMAXDIST over all child MBR pairs bounds the distance of at least
one point pair, so ``T`` can shrink before any leaf is reached.

For K > 1 Inequality 2 does not bound K pairs; following Section 3.8
the implementation instead accumulates MAXMAXDIST guarantees (the
paper's "alternative ... modification (used in the implementation of
the K-CP versions)").
"""

from __future__ import annotations

from repro.core.engine import CPQContext, CPQOptions, run_recursive
from repro.core.height import FIX_AT_ROOT
from repro.core.result import CPQResult

NAME = "SIM"


def simple(
    ctx: CPQContext,
    height_strategy: str = FIX_AT_ROOT,
    maxmax_pruning: bool = True,
    use_vectorized: bool = True,
) -> CPQResult:
    """Run the Simple recursive algorithm on a prepared query context.

    ``maxmax_pruning`` toggles the Section 3.8 MAXMAXDIST accumulation
    bound for K > 1 (off = the simple K-heap-threshold modification).
    """
    options = CPQOptions(
        prune=True,
        update_bound=True,
        sort=False,
        height_strategy=height_strategy,
        maxmax_k_pruning=maxmax_pruning,
        use_vectorized=use_vectorized,
    )
    return run_recursive(
        ctx, options, NAME,
        span_attrs={
            "height_strategy": height_strategy,
            "maxmax_k_pruning": maxmax_pruning,
        } if ctx.tracer.enabled else None,
    )
