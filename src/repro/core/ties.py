"""Tie-break criteria T1-T5 (Section 3.6).

The STD and HEAP algorithms order candidate MBR pairs by MINMINDIST;
ties are frequent for overlapping data sets (many pairs share
MINMINDIST = 0).  The paper proposes five heuristics for choosing
among tied pairs; T1 is the experimental winner (Figure 2).

Each criterion produces a *sort key* (smaller = processed earlier) from
a candidate pair.  Criteria can be chained: "in case the criterion we
use can not resolve the tie, another criterion may be used at a second
stage."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.metrics import minmaxdist


@dataclass
class CandidateGeometry:
    """The geometric context a tie criterion may consult."""

    mbr_p: MBR
    mbr_q: MBR
    #: MINMAXDIST of the pair when the algorithm already computed it.
    minmax: Optional[float] = None
    #: Areas of the two tree roots (T1 normalises by them).
    root_area_p: float = 1.0
    root_area_q: float = 1.0

    def minmaxdist(self) -> float:
        if self.minmax is None:
            self.minmax = minmaxdist(self.mbr_p, self.mbr_q)
        return self.minmax


class TieCriterion:
    """A named tie-break heuristic."""

    def __init__(
        self,
        name: str,
        description: str,
        key: Callable[[CandidateGeometry], float],
    ):
        self.name = name
        self.description = description
        self._key = key

    def key(self, candidate: CandidateGeometry) -> float:
        """Sort key; the smallest key wins the tie."""
        return self._key(candidate)

    def __repr__(self) -> str:
        return f"TieCriterion({self.name})"


def _t1_largest_root_relative_mbr(c: CandidateGeometry) -> float:
    # T1: the pair having as one of its elements the largest MBR, with
    # area expressed as a percentage of the area of the relevant root.
    rel_p = c.mbr_p.area() / c.root_area_p if c.root_area_p > 0 else 0.0
    rel_q = c.mbr_q.area() / c.root_area_q if c.root_area_q > 0 else 0.0
    return -max(rel_p, rel_q)


def _t2_smallest_minmaxdist(c: CandidateGeometry) -> float:
    # T2: the smallest MINMAXDIST between the pair's two elements.
    return c.minmaxdist()


def _t3_largest_area_sum(c: CandidateGeometry) -> float:
    # T3: the largest sum of the areas of the two elements.
    return -(c.mbr_p.area() + c.mbr_q.area())


def _t4_smallest_dead_space(c: CandidateGeometry) -> float:
    # T4: the smallest difference between the area of the MBR embedding
    # both elements and the elements' own areas.
    embedding = c.mbr_p.union(c.mbr_q).area()
    return embedding - (c.mbr_p.area() + c.mbr_q.area())


def _t5_largest_intersection(c: CandidateGeometry) -> float:
    # T5: the largest area of intersection between the two elements.
    return -c.mbr_p.intersection_area(c.mbr_q)


T1 = TieCriterion("T1", "largest root-relative MBR", _t1_largest_root_relative_mbr)
T2 = TieCriterion("T2", "smallest MINMAXDIST", _t2_smallest_minmaxdist)
T3 = TieCriterion("T3", "largest sum of areas", _t3_largest_area_sum)
T4 = TieCriterion("T4", "smallest embedding dead space", _t4_smallest_dead_space)
T5 = TieCriterion("T5", "largest intersection area", _t5_largest_intersection)

#: All five criteria by name, as evaluated in Figure 2.
TIE_CRITERIA: Dict[str, TieCriterion] = {
    t.name: t for t in (T1, T2, T3, T4, T5)
}


class TieBreak:
    """A chain of criteria applied in order (first that differs wins)."""

    def __init__(self, criteria: Sequence[TieCriterion]):
        self.criteria = list(criteria)

    @classmethod
    def parse(cls, spec) -> "TieBreak":
        """Accept a TieBreak, a criterion, a name, or a name sequence."""
        if isinstance(spec, TieBreak):
            return spec
        if isinstance(spec, TieCriterion):
            return cls([spec])
        if isinstance(spec, str):
            return cls([_lookup(spec)])
        return cls([
            c if isinstance(c, TieCriterion) else _lookup(c) for c in spec
        ])

    def key(self, candidate: CandidateGeometry) -> Tuple[float, ...]:
        return tuple(c.key(candidate) for c in self.criteria)

    def __repr__(self) -> str:
        return "TieBreak(" + "+".join(c.name for c in self.criteria) + ")"


def _lookup(name: str) -> TieCriterion:
    try:
        return TIE_CRITERIA[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown tie criterion {name!r}; expected one of "
            f"{sorted(TIE_CRITERIA)}"
        ) from None


#: The default used by STD and HEAP -- the paper's winner.
DEFAULT_TIE_BREAK = TieBreak([T1])
