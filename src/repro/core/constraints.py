"""Query-family constraints: range windows and category predicates.

The RCP literature (Xue et al., "New bounds for range closest-pair
problems"; Xue, "Colored range closest-pair problem under general
distance functions") restricts a closest-pair query to a rectangle
and/or to category combinations.  :class:`RangeSpec` and
:class:`ColorSpec` are the frozen descriptions of those restrictions
that ride on :class:`repro.core.CPQRequest`; algorithms whose registry
entry sets ``supports_range`` / ``supports_colors`` honour them.

Both specs canonicalise at construction so that *semantically equal*
constraints compare (and hash, and cache-key) equal:

* :class:`RangeSpec` sorts the two corners per dimension -- a window
  given as ``(hi, lo)`` equals the same window given as ``(lo, hi)`` --
  and normalises every coordinate through ``float(v) + 0.0``, which
  collapses ``-0.0`` onto ``0.0`` and integer inputs onto their float
  value.
* :class:`ColorSpec` sorts and de-duplicates its residue filters.

Colors derive from object identifiers: ``color(oid) = oid % modulus``.
Leaf entries carry only a point and an oid, so category membership is
a pure function of data already on every page -- no storage change and
nothing extra on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.mbr import MBR

#: Which side(s) of the pair the window restricts.
RANGE_MODES = ("both", "p", "q")


def _canonical_floats(values) -> Tuple[float, ...]:
    # ``+ 0.0`` maps -0.0 to 0.0 so equal windows hash equal.
    return tuple(float(v) + 0.0 for v in values)


@dataclass(frozen=True)
class RangeSpec:
    """A query rectangle restricting which points may form pairs.

    ``mode`` selects the clip semantics: ``"both"`` (the default)
    requires both endpoints of a reported pair inside the window,
    ``"p"`` / ``"q"`` constrain only that side (the other endpoint may
    lie anywhere).  Corners are canonicalised per dimension, so
    ``RangeSpec((4, 4), (0, 0)) == RangeSpec((0, 0), (4, 4))``.
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]
    mode: str = "both"

    def __post_init__(self) -> None:
        lo = _canonical_floats(self.lo)
        hi = _canonical_floats(self.hi)
        if len(lo) != len(hi):
            raise ValueError("range lo and hi must have the same dimension")
        if not lo:
            raise ValueError("range must have at least one dimension")
        object.__setattr__(
            self, "lo", tuple(min(a, b) for a, b in zip(lo, hi))
        )
        object.__setattr__(
            self, "hi", tuple(max(a, b) for a, b in zip(lo, hi))
        )
        if self.mode not in RANGE_MODES:
            raise ValueError(
                f"unknown range mode {self.mode!r}; "
                f"expected one of {RANGE_MODES}"
            )

    @property
    def dimension(self) -> int:
        return len(self.lo)

    @property
    def constrains_p(self) -> bool:
        return self.mode in ("both", "p")

    @property
    def constrains_q(self) -> bool:
        return self.mode in ("both", "q")

    def mbr(self) -> MBR:
        """The window as an :class:`~repro.geometry.mbr.MBR`."""
        return MBR(self.lo, self.hi)

    def contains_point(self, point) -> bool:
        return all(
            l <= float(v) <= h
            for v, l, h in zip(point, self.lo, self.hi)
        )

    def contains(self, other: "RangeSpec") -> bool:
        """True when ``other``'s window lies inside this one (same
        mode required -- different clip semantics never substitute)."""
        return (
            self.mode == other.mode
            and self.dimension == other.dimension
            and all(sl <= ol for sl, ol in zip(self.lo, other.lo))
            and all(oh <= sh for oh, sh in zip(other.hi, self.hi))
        )

    def canonical(self) -> Tuple:
        """Primitive-only identity for cache keys and wire payloads."""
        return (self.lo, self.hi, self.mode)


@dataclass(frozen=True)
class ColorSpec:
    """Category predicates for colored closest-pair queries.

    The color of an object is ``oid % modulus``.  ``colors_p`` /
    ``colors_q`` restrict each side to a set of colors (``None`` =
    unrestricted); ``distinct`` additionally requires the two endpoints
    of a pair to carry *different* colors -- the classical colored
    closest pair (nearest hospital/accident pair needs
    ``modulus=2, distinct=True``).
    """

    modulus: int = 2
    colors_p: Optional[Tuple[int, ...]] = None
    colors_q: Optional[Tuple[int, ...]] = None
    distinct: bool = True

    def __post_init__(self) -> None:
        if int(self.modulus) < 1:
            raise ValueError("color modulus must be >= 1")
        object.__setattr__(self, "modulus", int(self.modulus))
        for name in ("colors_p", "colors_q"):
            allowed = getattr(self, name)
            if allowed is None:
                continue
            normalized = tuple(sorted({int(c) for c in allowed}))
            if not normalized:
                raise ValueError(f"{name} must not be empty; use None")
            if any(c < 0 or c >= self.modulus for c in normalized):
                raise ValueError(
                    f"{name} entries must lie in [0, {self.modulus})"
                )
            object.__setattr__(self, name, normalized)
        if self.distinct and self.modulus < 2:
            raise ValueError(
                "distinct colored pairs need a modulus of at least 2"
            )

    def color(self, oid: int) -> int:
        return int(oid) % self.modulus

    def admits_p(self, oid: int) -> bool:
        return self.colors_p is None or self.color(oid) in self.colors_p

    def admits_q(self, oid: int) -> bool:
        return self.colors_q is None or self.color(oid) in self.colors_q

    def admits_pair(self, oid_p: int, oid_q: int) -> bool:
        if not (self.admits_p(oid_p) and self.admits_q(oid_q)):
            return False
        return not self.distinct or self.color(oid_p) != self.color(oid_q)

    def canonical(self) -> Tuple:
        """Primitive-only identity for cache keys and wire payloads."""
        return (self.modulus, self.colors_p, self.colors_q, self.distinct)
