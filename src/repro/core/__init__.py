"""The paper's contribution: K closest pair query (K-CPQ) algorithms.

Five algorithms discover the K closest pairs between two R-tree-indexed
point sets (Section 3 of the paper):

* :mod:`~repro.core.naive` -- recursive, no pruning (baseline only).
* :mod:`~repro.core.exhaustive` -- EXH: prunes subtree pairs whose
  MINMINDIST exceeds the best distance ``T`` (Inequality 1, left).
* :mod:`~repro.core.simple` -- SIM: additionally tightens ``T`` from
  MINMAXDIST before descending (Inequality 2).
* :mod:`~repro.core.sorted_distances` -- STD: SIM plus processing
  candidate pairs in ascending MINMINDIST order (merge-sorted), with
  the T1-T5 tie-break criteria of Section 3.6.
* :mod:`~repro.core.heap` -- HEAP: the iterative algorithm; a global
  main-memory min-heap of internal-node pairs replaces recursion.

:func:`~repro.core.api.k_closest_pairs` is the public entry point.
"""

from repro.core.api import (
    ALGORITHM_REGISTRY,
    ALGORITHMS,
    COLOR_ALGORITHMS,
    CORE_ALGORITHMS,
    PLANNABLE_ALGORITHMS,
    RANGE_ALGORITHMS,
    AlgorithmSpec,
    CPQRequest,
    DeadlineExceeded,
    closest_pair,
    k_closest_pairs,
)
from repro.core.constraints import ColorSpec, RangeSpec
from repro.core.height import FIX_AT_LEAVES, FIX_AT_ROOT
from repro.core.kheap import KHeap
from repro.core.parallel import parallel_k_closest_pairs
from repro.core.result import ClosestPair, CPQResult
from repro.core.ties import TIE_CRITERIA, TieCriterion

__all__ = [
    "k_closest_pairs",
    "closest_pair",
    "parallel_k_closest_pairs",
    "CPQRequest",
    "AlgorithmSpec",
    "ALGORITHM_REGISTRY",
    "ALGORITHMS",
    "CORE_ALGORITHMS",
    "PLANNABLE_ALGORITHMS",
    "RANGE_ALGORITHMS",
    "COLOR_ALGORITHMS",
    "RangeSpec",
    "ColorSpec",
    "DeadlineExceeded",
    "ClosestPair",
    "CPQResult",
    "KHeap",
    "TieCriterion",
    "TIE_CRITERIA",
    "FIX_AT_ROOT",
    "FIX_AT_LEAVES",
]
