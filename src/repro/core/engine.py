"""Shared machinery of the CPQ algorithms.

The four pruning algorithms of the paper differ only in *policy*:

===========  =======  ==================  ==========
algorithm    prunes   tightens T from     processing order
===========  =======  ==================  ==========
NAIVE        no       --                  natural
EXH          yes      found pairs only    natural
SIM          yes      + MINMAXDIST        natural
STD          yes      + MINMAXDIST        ascending MINMINDIST (+ ties)
HEAP         yes      + MINMAXDIST        global ascending MINMINDIST
===========  =======  ==================  ==========

This module implements the shared mechanics: the query context (K-heap,
pruning bound ``T``, statistics), vectorised leaf-pair scanning,
candidate generation with the height strategies of Section 3.7, the
K > 1 bound update from MAXMAXDIST (Section 3.8), and the recursive
driver parameterised by :class:`CPQOptions`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.height import (
    EXPAND_BOTH,
    EXPAND_P,
    EXPAND_Q,
    FIX_AT_ROOT,
    expansion,
    validate_strategy,
)
from repro.core.kheap import KHeap
from repro.core.result import ClosestPair, CPQResult
from repro.core.ties import CandidateGeometry, TieBreak
from repro.geometry import metrics as scalar_metrics
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.geometry.vectorized import (
    KERNEL_STATS,
    pairwise_maxdist,
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
)
from repro.obs.trace import NULL_TRACER, Span
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats


@dataclass
class CPQOptions:
    """Policy knobs distinguishing the algorithms."""

    #: Skip candidate pairs with MINMINDIST > T (all but NAIVE).
    prune: bool = True
    #: Tighten T from MINMAXDIST (K = 1) / MAXMAXDIST (K > 1) before
    #: descending (SIM, STD, HEAP).
    update_bound: bool = True
    #: Process candidates in ascending MINMINDIST order (STD, HEAP).
    sort: bool = False
    #: Tie-break chain for equal MINMINDIST (STD, HEAP); None keeps the
    #: stable sort / insertion order.
    tie_break: Optional[TieBreak] = None
    #: Height strategy for trees of different heights (Section 3.7).
    height_strategy: str = FIX_AT_ROOT
    #: For K > 1: use the MAXMAXDIST accumulation bound (the paper's
    #: "alternative, although more complicated, modification").
    maxmax_k_pruning: bool = True
    #: Evaluate node expansions through the NumPy pairwise kernels
    #: (:mod:`repro.geometry.vectorized`).  The scalar path computes the
    #: same matrices entry-by-entry via :mod:`repro.geometry.metrics`
    #: with bit-identical arithmetic, and exists for parity testing and
    #: as the microbenchmark baseline.
    use_vectorized: bool = True
    #: For range-constrained queries: evaluate MINMINDIST on the
    #: intersection of each constrained-side MBR with the query window
    #: instead of the raw MBR (the CLIPPED algorithm).  A clipped box
    #: bounds exactly the in-window points below it, so its MINMINDIST
    #: is a *tighter* valid lower bound on qualifying pair distances.
    clip_mindist: bool = False

    def __post_init__(self) -> None:
        validate_strategy(self.height_strategy)


class CPQContext:
    """Mutable state of one query execution."""

    def __init__(
        self,
        tree_p: RTree,
        tree_q: RTree,
        k: int,
        metric: MinkowskiMetric = EUCLIDEAN,
        cancel_check: Optional[Callable[[], None]] = None,
        tracer=None,
        roots=None,
        root_areas=None,
        range_spec=None,
        color_spec=None,
    ):
        if tree_p.dimension != tree_q.dimension:
            raise ValueError("trees index points of different dimensions")
        self.tree_p = tree_p
        self.tree_q = tree_q
        self.k = k
        self.metric = metric
        #: Query-family constraints (:mod:`repro.core.constraints`).
        #: When either is set the traversal filters qualifying pairs at
        #: the leaves and *suppresses* the MINMAXDIST / MAXMAXDIST
        #: bound updates -- the point those bounds guarantee may be
        #: out-of-window or wrong-colored, so only the K-heap threshold
        #: (built from qualifying pairs) may tighten T.  MINMINDIST
        #: pruning stays valid: it lower-bounds every pair, qualifying
        #: ones included.
        self.range_spec = range_spec
        self.color_spec = color_spec
        self.constrained = range_spec is not None or color_spec is not None
        if range_spec is not None:
            if range_spec.dimension != tree_p.dimension:
                raise ValueError(
                    "range window dimension does not match the trees"
                )
            self._range_lo = np.array(range_spec.lo, dtype=float)
            self._range_hi = np.array(range_spec.hi, dtype=float)
            self._range_mbr = range_spec.mbr()
        #: Cooperative cancellation: called once per visited node pair;
        #: raising from it (e.g. a service deadline) aborts the
        #: traversal, leaving trees and buffers consistent.
        self.cancel_check = cancel_check
        #: Observability hook (:mod:`repro.obs`); the no-op tracer by
        #: default, so hot paths pay one ``enabled`` test at most.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: The open ``traverse`` span while one exists (see
        #: :func:`traced_traversal`); counters go through
        #: :meth:`trace_add`.
        self.trace_span: Optional[Span] = None
        if self.tracer.enabled:
            # Baselines for the per-tree I/O delta spans, captured
            # *before* the root reads below so they are attributed too.
            self._trace_io_base = (
                tree_p.stats.snapshot(), tree_q.stats.snapshot()
            )
        self.kheap = KHeap(k)
        #: Extra upper bound on the K-th best distance, tightened from
        #: MINMAXDIST / MAXMAXDIST (independent of the K-heap content).
        self.bound = math.inf
        self.stats = QueryStats()
        # Read each root exactly once; algorithms reuse these handles so
        # context construction plus execution costs two root I/Os total.
        # ``roots`` lets the parallel executor point worker contexts at
        # already-read nodes (partition roots) without re-paying the
        # root I/O; ``root_areas`` then pins the tie-key normalisation
        # areas to the *tree* roots so tie keys match the serial path.
        if roots is not None:
            self.root_p, self.root_q = roots
        else:
            self.root_p = tree_p.read_root()
            self.root_q = tree_q.read_root()
        if root_areas is not None:
            self.root_area_p, self.root_area_q = root_areas
        else:
            self.root_area_p = (
                self.root_p.mbr().area() if self.root_p else 1.0
            )
            self.root_area_q = (
                self.root_q.mbr().area() if self.root_q else 1.0
            )

    @property
    def t(self) -> float:
        """The pruning bound T: best of the K-heap top and the metric
        bound."""
        return min(self.kheap.threshold, self.bound)

    def check_cancelled(self) -> None:
        """Run the caller-supplied cancellation probe, if any."""
        if self.cancel_check is not None:
            self.cancel_check()

    def trace_add(self, key: str, amount: float = 1) -> None:
        """Accumulate a counter on the open traversal span, if any.

        Callers guard with ``ctx.tracer.enabled`` so the untraced path
        never reaches this method.
        """
        if self.trace_span is not None:
            self.trace_span.add(key, amount)

    def update_bound(self, value: float) -> None:
        if value < self.bound:
            self.bound = value

    def offer(self, entry_p, entry_q, distance: float) -> None:
        self.kheap.offer(
            ClosestPair(
                distance=float(distance),
                p=entry_p.point,
                q=entry_q.point,
                p_oid=entry_p.oid,
                q_oid=entry_q.oid,
            )
        )

    def result(self, algorithm: str) -> CPQResult:
        self.stats.merge_io(self.tree_p.stats, self.tree_q.stats)
        return CPQResult(
            pairs=self.kheap.sorted_pairs(),
            stats=self.stats,
            algorithm=algorithm,
            k=self.k,
        )


# ---------------------------------------------------------------------------
# Traversal tracing (repro.obs)
# ---------------------------------------------------------------------------

def _finish_io_span(tracer, label: str, base, after, collector) -> None:
    """Attach one ``io.<label>`` leaf carrying the tree's I/O delta.

    ``disk_reads`` / ``buffer_hits`` are delta-snapshots of the tree's
    :class:`~repro.storage.stats.IOStats` across the traversal (exact
    when the query has the trees to itself); ``observed_*`` and
    ``distinct_pages`` come from the buffer observer and are exact for
    this thread even under concurrency.
    """
    with tracer.span(label) as child:
        child.annotate(
            disk_reads=after.disk_reads - base.disk_reads,
            buffer_hits=after.buffer_hits - base.buffer_hits,
            reads=after.reads - base.reads,
        )
        # Resilience counters are annotated only when they moved, so
        # fault-free traces (and the explain golden output) stay
        # byte-stable while faulted runs show their retries.
        retries = after.read_retries - base.read_retries
        if retries:
            child.annotate(read_retries=retries)
        corrupt = after.corrupt_reads - base.corrupt_reads
        if corrupt:
            child.annotate(corrupt_reads=corrupt)
        if collector is not None and collector.reads:
            child.annotate(
                observed_reads=collector.reads,
                observed_disk_reads=collector.disk_reads,
                distinct_pages=collector.distinct_pages,
            )
    child.duration_ms = 0.0  # accounting leaf, not a timed phase


@contextmanager
def traced_traversal(ctx: CPQContext, algorithm: str, **attrs):
    """Wrap one algorithm execution in a ``traverse`` span.

    Opens the span (child of whatever span is current on this thread,
    e.g. a service ``request``), installs the buffer observers and
    per-thread I/O collectors, and on exit attaches the ``io.p`` /
    ``io.q`` leaf spans whose ``disk_reads`` sum to the query's
    :class:`~repro.storage.stats.IOStats` delta, plus the traversal
    counter rollup.  A no-op (single ``enabled`` test) when ``ctx``
    carries the null tracer.
    """
    tracer = ctx.tracer
    if not tracer.enabled:
        yield None
        return
    base_p, base_q = ctx._trace_io_base
    tracer.watch_buffer(ctx.tree_p.file.buffer, "p")
    tracer.watch_buffer(ctx.tree_q.file.buffer, "q")
    try:
        with tracer.span("traverse", algorithm=algorithm, k=ctx.k,
                         **attrs) as span:
            ctx.trace_span = span
            collectors = {"p": None, "q": None}
            try:
                with tracer.collect_io(("p", "q")) as collectors:
                    yield span
            finally:
                ctx.trace_span = None
                span.annotate(
                    node_pairs_visited=ctx.stats.node_pairs_visited,
                    distance_computations=ctx.stats.distance_computations,
                )
                _finish_io_span(tracer, "io.p", base_p,
                                ctx.tree_p.stats.snapshot(), collectors["p"])
                _finish_io_span(tracer, "io.q", base_q,
                                ctx.tree_q.stats.snapshot(), collectors["q"])
    finally:
        # Without this, repeated queries on the same trees leak the
        # buffers' on_read observers past the traversal that set them.
        tracer.unwatch_buffer(ctx.tree_p.file.buffer)
        tracer.unwatch_buffer(ctx.tree_q.file.buffer)


# ---------------------------------------------------------------------------
# Leaf-pair scanning (step CP3)
# ---------------------------------------------------------------------------

def _scalar_point_distances(leaf_p: Node, leaf_q: Node, metric) -> np.ndarray:
    out = np.array(
        [
            [metric.distance(a.point, b.point) for b in leaf_q.entries]
            for a in leaf_p.entries
        ],
        dtype=np.float64,
    )
    KERNEL_STATS.record("points_scalar", out.size)
    return out


def _qualifying_mask(
    ctx: CPQContext, leaf_p: Node, leaf_q: Node
) -> np.ndarray:
    """Boolean (|P|, |Q|) mask of point pairs the constraints admit.

    Range containment is evaluated per side from the leaves' point
    arrays; colors derive from oids (``oid % modulus``), so the mask is
    a pure function of data already on the pages.
    """
    mask_p = np.ones(len(leaf_p.entries), dtype=bool)
    mask_q = np.ones(len(leaf_q.entries), dtype=bool)
    spec = ctx.range_spec
    if spec is not None:
        if spec.constrains_p:
            pts = leaf_p.points_array()
            mask_p &= np.all(
                (pts >= ctx._range_lo) & (pts <= ctx._range_hi), axis=1
            )
        if spec.constrains_q:
            pts = leaf_q.points_array()
            mask_q &= np.all(
                (pts >= ctx._range_lo) & (pts <= ctx._range_hi), axis=1
            )
    mask = mask_p[:, None] & mask_q[None, :]
    colors = ctx.color_spec
    if colors is not None:
        color_p = np.array(
            [e.oid for e in leaf_p.entries], dtype=np.int64
        ) % colors.modulus
        color_q = np.array(
            [e.oid for e in leaf_q.entries], dtype=np.int64
        ) % colors.modulus
        if colors.colors_p is not None:
            mask &= np.isin(
                color_p, np.array(colors.colors_p, dtype=np.int64)
            )[:, None]
        if colors.colors_q is not None:
            mask &= np.isin(
                color_q, np.array(colors.colors_q, dtype=np.int64)
            )[None, :]
        if colors.distinct:
            mask &= color_p[:, None] != color_q[None, :]
    return mask


def scan_leaf_pair(
    ctx: CPQContext,
    leaf_p: Node,
    leaf_q: Node,
    options: Optional[CPQOptions] = None,
) -> None:
    """Compute all point-pair distances of two leaves and update the
    K-heap (step CP3 of every algorithm).

    Constrained queries AND a qualifying mask into the selection, so
    only admitted pairs ever reach the K-heap.  (The mask must gate the
    selection itself, not just inflate distances: while T is still
    infinite, ``inf <= inf`` would admit a masked pair.)
    """
    if options is None or options.use_vectorized:
        distances = pairwise_point_distances(
            leaf_p.points_array(), leaf_q.points_array(), ctx.metric
        )
    else:
        distances = _scalar_point_distances(leaf_p, leaf_q, ctx.metric)
    ctx.stats.distance_computations += distances.size
    mask = _qualifying_mask(ctx, leaf_p, leaf_q) if ctx.constrained else None
    if ctx.k == 1:
        if mask is not None:
            if not mask.any():
                return
            distances = np.where(mask, distances, np.inf)
        flat = int(np.argmin(distances))
        i, j = divmod(flat, distances.shape[1])
        d = float(distances[i, j])
        if d <= ctx.t and math.isfinite(d):
            ctx.offer(leaf_p.entries[i], leaf_q.entries[j], d)
        return
    qualifies = distances <= ctx.t
    if mask is not None:
        qualifies &= mask
    rows, cols = np.nonzero(qualifies)
    if rows.size == 0:
        return
    values = distances[rows, cols]
    # Offer in ascending order so the K-heap threshold tightens fastest.
    order = np.argsort(values, kind="stable")
    for r in order:
        d = float(values[r])
        if d > ctx.t:
            break
        ctx.offer(leaf_p.entries[rows[r]], leaf_q.entries[cols[r]], d)


# ---------------------------------------------------------------------------
# Candidate generation (steps CP2 / CP2.1)
# ---------------------------------------------------------------------------

@dataclass
class CandidateSet:
    """The surviving child pairs of one visited node pair.

    ``idx_p`` / ``idx_q`` address entries of the expanded side(s); a
    fixed (unexpanded) side is represented by index 0 into the visited
    node itself.
    """

    node_p: Node
    node_q: Node
    expand_p: bool
    expand_q: bool
    minmin: np.ndarray  # (n_candidates,)
    idx_p: np.ndarray
    idx_q: np.ndarray
    minmax: Optional[np.ndarray] = None  # same shape, when computed

    def child_nodes(self, ctx: CPQContext, position: int):
        """Read (with I/O accounting) the node pair of one candidate."""
        if self.expand_p:
            entry = self.node_p.entries[int(self.idx_p[position])]
            node_p = ctx.tree_p.read_node(entry.child_id)
        else:
            node_p = self.node_p
        if self.expand_q:
            entry = self.node_q.entries[int(self.idx_q[position])]
            node_q = ctx.tree_q.read_node(entry.child_id)
        else:
            node_q = self.node_q
        return node_p, node_q

    def geometry(self, ctx: CPQContext, position: int) -> CandidateGeometry:
        """Geometric context of one candidate (for tie criteria)."""
        mbr_p = (
            self.node_p.entries[int(self.idx_p[position])].mbr
            if self.expand_p
            else self.node_p.mbr()
        )
        mbr_q = (
            self.node_q.entries[int(self.idx_q[position])].mbr
            if self.expand_q
            else self.node_q.mbr()
        )
        minmax = (
            float(self.minmax[position]) if self.minmax is not None else None
        )
        return CandidateGeometry(
            mbr_p=mbr_p,
            mbr_q=mbr_q,
            minmax=minmax,
            root_area_p=ctx.root_area_p,
            root_area_q=ctx.root_area_q,
        )

    def __len__(self) -> int:
        return len(self.minmin)


def _side_arrays(node: Node, expand: bool):
    if expand:
        return node.lo_array(), node.hi_array()
    mbr = node.mbr()
    return (
        np.array([mbr.lo], dtype=float),
        np.array([mbr.hi], dtype=float),
    )


def _side_mbrs(node: Node, expand: bool):
    if expand:
        return [e.mbr for e in node.entries]
    return [node.mbr()]


def _clip_side_arrays(ctx: CPQContext, lo, hi, constrained: bool):
    """Clip one side's boxes against the query window (vectorized path).

    Returns ``(lo', hi', infeasible)`` where ``infeasible`` flags boxes
    disjoint from the window -- no qualifying point can lie below them.
    Unconstrained sides pass through with an all-False flag.  Rows
    flagged infeasible may carry inverted bounds; callers must mask
    them out rather than trust distances computed from them.
    """
    if not constrained:
        return lo, hi, np.zeros(len(lo), dtype=bool)
    clipped_lo = np.maximum(lo, ctx._range_lo)
    clipped_hi = np.minimum(hi, ctx._range_hi)
    infeasible = np.any(clipped_lo > clipped_hi, axis=1)
    return clipped_lo, clipped_hi, infeasible


def _clip_side_mbrs(ctx: CPQContext, mbrs, constrained: bool):
    """Scalar twin of :func:`_clip_side_arrays` over MBR objects.

    :meth:`MBR.intersection` uses the same ``max`` / ``min`` float
    operations as ``np.maximum`` / ``np.minimum``, preserving the
    scalar/vectorized bit-parity contract through the clip.  Disjoint
    boxes keep their original MBR as a placeholder (their distances are
    masked out by the infeasible flag).
    """
    if not constrained:
        return mbrs, [False] * len(mbrs)
    clipped, infeasible = [], []
    for box in mbrs:
        overlap = box.intersection(ctx._range_mbr)
        clipped.append(box if overlap is None else overlap)
        infeasible.append(overlap is None)
    return clipped, infeasible


def _scalar_matrix(fn, name: str, mbrs_p, mbrs_q, metric) -> np.ndarray:
    """Entry-by-entry pairwise metric matrix for the scalar path."""
    out = np.array(
        [[fn(a, b, metric) for b in mbrs_q] for a in mbrs_p],
        dtype=np.float64,
    )
    KERNEL_STATS.record(name, out.size)
    return out


def _guaranteed_points(tree: RTree, node: Node, expanded: bool) -> np.ndarray:
    """Minimum number of points under each candidate reference.

    A non-root node at level ``l`` holds at least ``m ** (l + 1)``
    points (minimum occupancy compounds per level).  Children of a
    visited node are never roots; a fixed side may be the root, for
    which only weaker guarantees hold.
    """
    m = tree.min_entries
    if expanded:
        # children are non-root nodes at level node.level - 1
        return np.full(len(node.entries), m ** node.level, dtype=float)
    if node.page_id == tree.root_id:
        guaranteed = 1 if node.is_leaf else 2 * m ** node.level
    else:
        guaranteed = m ** (node.level + 1)
    return np.array([guaranteed], dtype=float)


def _kcp_bound_from_maxmax(
    minmax: np.ndarray,
    maxmax: np.ndarray,
    counts: np.ndarray,
    k: int,
) -> float:
    """Upper bound on the K-th smallest pair distance (Section 3.8).

    Each candidate MBR pair guarantees one point pair within its
    MINMAXDIST (Inequality 2) and ``counts`` point pairs within its
    MAXMAXDIST (Inequality 1, right).  The point-pair populations of
    distinct candidates are disjoint, so sorting the guarantees by
    distance and accumulating counts until K are covered yields a valid
    bound on the K-th best distance.
    """
    values = np.concatenate([minmax, maxmax])
    weights = np.concatenate(
        [np.ones_like(minmax), np.maximum(counts - 1.0, 0.0)]
    )
    order = np.argsort(values, kind="stable")
    cumulative = np.cumsum(weights[order])
    position = int(np.searchsorted(cumulative, k))
    if position >= len(values):
        return math.inf
    return float(values[order][position])


def generate_candidates(
    ctx: CPQContext, node_p: Node, node_q: Node, options: CPQOptions
) -> CandidateSet:
    """Steps CP2/CP2.1: form child MBR pairs, tighten T, prune by
    MINMINDIST."""
    side = expansion(node_p, node_q, options.height_strategy)
    expand_p = side in (EXPAND_BOTH, EXPAND_P)
    expand_q = side in (EXPAND_BOTH, EXPAND_Q)
    spec = ctx.range_spec if ctx.constrained else None
    infeasible = None
    if options.use_vectorized:
        lo_p, hi_p = _side_arrays(node_p, expand_p)
        lo_q, hi_q = _side_arrays(node_q, expand_q)
        if spec is not None and options.prune:
            clip_lo_p, clip_hi_p, bad_p = _clip_side_arrays(
                ctx, lo_p, hi_p, spec.constrains_p
            )
            clip_lo_q, clip_hi_q, bad_q = _clip_side_arrays(
                ctx, lo_q, hi_q, spec.constrains_q
            )
            infeasible = bad_p[:, None] | bad_q[None, :]
            if options.clip_mindist:
                minmin = pairwise_mindist(
                    clip_lo_p, clip_hi_p, clip_lo_q, clip_hi_q, ctx.metric
                )
            else:
                minmin = pairwise_mindist(lo_p, hi_p, lo_q, hi_q, ctx.metric)
        else:
            minmin = pairwise_mindist(lo_p, hi_p, lo_q, hi_q, ctx.metric)
    else:
        mbrs_p = _side_mbrs(node_p, expand_p)
        mbrs_q = _side_mbrs(node_q, expand_q)
        if spec is not None and options.prune:
            clip_p, bad_p = _clip_side_mbrs(ctx, mbrs_p, spec.constrains_p)
            clip_q, bad_q = _clip_side_mbrs(ctx, mbrs_q, spec.constrains_q)
            infeasible = (
                np.array(bad_p, dtype=bool)[:, None]
                | np.array(bad_q, dtype=bool)[None, :]
            )
            use_p = clip_p if options.clip_mindist else mbrs_p
            use_q = clip_q if options.clip_mindist else mbrs_q
            minmin = _scalar_matrix(
                scalar_metrics.mindist, "minmin_scalar", use_p, use_q,
                ctx.metric,
            )
        else:
            minmin = _scalar_matrix(
                scalar_metrics.mindist, "minmin_scalar", mbrs_p, mbrs_q,
                ctx.metric,
            )
    minmax_matrix = None
    # Constrained queries must not tighten T from MINMAXDIST /
    # MAXMAXDIST: the point pair those bounds guarantee may lie outside
    # the window or carry an inadmissible color, so treating them as
    # upper bounds on the K-th *qualifying* distance would prune real
    # answers.  Only the K-heap threshold (built from qualifying pairs)
    # tightens T; MINMINDIST pruning below stays valid unchanged.
    if options.update_bound and not ctx.constrained:
        if options.use_vectorized:
            minmax_matrix = pairwise_minmaxdist(
                lo_p, hi_p, lo_q, hi_q, ctx.metric
            )
        else:
            minmax_matrix = _scalar_matrix(
                scalar_metrics.minmaxdist,
                "minmax_scalar",
                mbrs_p,
                mbrs_q,
                ctx.metric,
            )
        if ctx.k == 1:
            ctx.update_bound(float(minmax_matrix.min()))
        elif options.maxmax_k_pruning:
            if options.use_vectorized:
                maxmax = pairwise_maxdist(lo_p, hi_p, lo_q, hi_q, ctx.metric)
            else:
                maxmax = _scalar_matrix(
                    scalar_metrics.maxdist,
                    "maxmax_scalar",
                    mbrs_p,
                    mbrs_q,
                    ctx.metric,
                )
            counts = (
                _guaranteed_points(ctx.tree_p, node_p, expand_p)[:, None]
                * _guaranteed_points(ctx.tree_q, node_q, expand_q)[None, :]
            )
            ctx.update_bound(
                _kcp_bound_from_maxmax(
                    minmax_matrix.ravel(),
                    maxmax.ravel(),
                    counts.ravel(),
                    ctx.k,
                )
            )

    flat = minmin.ravel()
    columns = minmin.shape[1]
    if options.prune:
        within = flat <= ctx.t
        if infeasible is not None:
            # Subtrees disjoint from the window hold no qualifying
            # point; drop them outright (an explicit mask, because
            # ``inf <= inf`` would keep them while T is infinite).
            within &= ~infeasible.ravel()
        keep = np.nonzero(within)[0]
    else:
        keep = np.arange(flat.size)
    if ctx.tracer.enabled:
        ctx.trace_add("candidates_generated", int(flat.size))
        ctx.trace_add("pairs_pruned_minmin", int(flat.size - keep.size))
    return CandidateSet(
        node_p=node_p,
        node_q=node_q,
        expand_p=expand_p,
        expand_q=expand_q,
        minmin=flat[keep],
        idx_p=keep // columns,
        idx_q=keep % columns,
        minmax=minmax_matrix.ravel()[keep] if minmax_matrix is not None else None,
    )


def order_candidates(
    ctx: CPQContext, candidates: CandidateSet, options: CPQOptions
) -> np.ndarray:
    """Processing order of a candidate set.

    Natural (index) order unless ``options.sort``; then a stable
    mergesort on MINMINDIST (the paper found MergeSort best), with the
    tie-break chain applied inside runs of equal MINMINDIST only --
    tie keys are comparatively expensive and ties are what they exist
    for.
    """
    if not options.sort:
        return np.arange(len(candidates))
    order = np.argsort(candidates.minmin, kind="stable")
    if ctx.tracer.enabled:
        ctx.trace_add("sorts", 1)
        ctx.trace_add("sorted_candidates", len(order))
    if options.tie_break is None or len(order) < 2:
        return order
    values = candidates.minmin[order]
    result: List[int] = []
    run_start = 0
    for i in range(1, len(order) + 1):
        if i < len(order) and values[i] == values[run_start]:
            continue
        run = order[run_start:i]
        if len(run) > 1:
            if ctx.tracer.enabled:
                ctx.trace_add("tie_break_keys", len(run))
            run = sorted(
                run,
                key=lambda pos: options.tie_break.key(
                    candidates.geometry(ctx, int(pos))
                ),
            )
        result.extend(int(r) for r in run)
        run_start = i
    return np.array(result, dtype=int)


# ---------------------------------------------------------------------------
# Recursive driver (NAIVE, EXH, SIM, STD)
# ---------------------------------------------------------------------------

def run_recursive(
    ctx: CPQContext,
    options: CPQOptions,
    algorithm: str,
    span_attrs: Optional[dict] = None,
) -> CPQResult:
    """Execute a recursive CPQ algorithm configured by ``options``.

    ``span_attrs`` are extra annotations the algorithm module wants on
    the ``traverse`` span (tie-break chain, height strategy, ...);
    ignored when ``ctx`` carries the no-op tracer.
    """
    if ctx.root_p is None or ctx.root_q is None:
        return ctx.result(algorithm)
    with traced_traversal(ctx, algorithm, **(span_attrs or {})):
        _visit(ctx, ctx.root_p, ctx.root_q, options)
    return ctx.result(algorithm)


def _visit(
    ctx: CPQContext, node_p: Node, node_q: Node, options: CPQOptions
) -> None:
    ctx.check_cancelled()
    ctx.stats.node_pairs_visited += 1
    if node_p.is_leaf and node_q.is_leaf:
        scan_leaf_pair(ctx, node_p, node_q, options)
        return
    candidates = generate_candidates(ctx, node_p, node_q, options)
    order = order_candidates(ctx, candidates, options)
    for i, position in enumerate(order):
        # T may have tightened since generation; re-check before paying
        # the I/O of the descent.
        if options.prune:
            if candidates.minmin[position] > ctx.t:
                if options.sort:
                    if ctx.tracer.enabled:
                        ctx.trace_add("pairs_repruned", len(order) - i)
                    break  # sorted ascending: the rest are no better
                if ctx.tracer.enabled:
                    ctx.trace_add("pairs_repruned", 1)
                continue
        child_p, child_q = candidates.child_nodes(ctx, int(position))
        _visit(ctx, child_p, child_q, options)
