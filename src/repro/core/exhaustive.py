"""The Exhaustive algorithm, EXH (Section 3.2).

Improves Naive with the left part of Inequality 1: a pair of subtrees
is descended only if MINMINDIST of their MBRs does not exceed the best
distance ``T`` found so far (the K-heap top once full, for K > 1).
Candidates are processed in natural (index) order and ``T`` is updated
from discovered point pairs only.
"""

from __future__ import annotations

from repro.core.engine import CPQContext, CPQOptions, run_recursive
from repro.core.height import FIX_AT_ROOT
from repro.core.result import CPQResult

NAME = "EXH"


def exhaustive(
    ctx: CPQContext,
    height_strategy: str = FIX_AT_ROOT,
    use_vectorized: bool = True,
) -> CPQResult:
    """Run the Exhaustive algorithm on a prepared query context."""
    options = CPQOptions(
        prune=True,
        update_bound=False,
        sort=False,
        height_strategy=height_strategy,
        use_vectorized=use_vectorized,
    )
    return run_recursive(ctx, options, NAME)
