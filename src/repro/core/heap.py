"""The Heap algorithm, HEAP (Section 3.5).

The only non-recursive algorithm: a global main-memory min-heap keyed
by MINMINDIST replaces the recursion stack.  Processing a node pair
(step CP2) tightens ``T`` from MINMAXDIST, then inserts the surviving
child *node pairs* into the heap; the main loop (CP4/CP5) repeatedly
pops the pair with the smallest MINMINDIST and stops as soon as that
value exceeds ``T`` -- every remaining pair is then prunable.

Unlike the incremental algorithms of Hjaltason & Samet, the heap holds
node/node items only (never node/object or object/object), which keeps
it small enough to live entirely in main memory (Section 3.9); the
``max_queue_size`` statistic lets experiments verify that claim.

Ties of MINMINDIST are resolved by a tie-break chain (Section 3.6,
default T1) encoded directly in the heap key.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.core.engine import (
    CPQContext,
    CPQOptions,
    generate_candidates,
    scan_leaf_pair,
    traced_traversal,
)
from repro.core.height import FIX_AT_ROOT
from repro.core.result import CPQResult
from repro.core.ties import DEFAULT_TIE_BREAK, TieBreak
from repro.rtree.node import Node

NAME = "HEAP"


def heap_algorithm(
    ctx: CPQContext,
    height_strategy: str = FIX_AT_ROOT,
    tie_break: Optional[TieBreak] = None,
    maxmax_pruning: bool = True,
    use_vectorized: bool = True,
    clip_mindist: bool = False,
) -> CPQResult:
    """Run the Heap algorithm on a prepared query context.

    ``maxmax_pruning`` toggles the Section 3.8 MAXMAXDIST accumulation
    bound for K > 1 (off = the simple K-heap-threshold modification).
    ``clip_mindist`` keys the heap by MINMINDIST of range-clipped MBRs
    instead of raw ones (the CLIPPED algorithm; requires a range on the
    context to differ from plain HEAP).
    """
    options = CPQOptions(
        prune=True,
        update_bound=True,
        sort=False,
        height_strategy=height_strategy,
        maxmax_k_pruning=maxmax_pruning,
        use_vectorized=use_vectorized,
        clip_mindist=clip_mindist,
    )
    ties = tie_break if tie_break is not None else DEFAULT_TIE_BREAK
    root_p = ctx.root_p
    root_q = ctx.root_q
    if root_p is None or root_q is None:
        return ctx.result(NAME)

    # Items: (MINMINDIST, tie-key tuple, sequence, page_p, page_q).
    heap: List[Tuple[float, Tuple[float, ...], int, int, int]] = []
    seq = 0

    def process_pair(node_p: Node, node_q: Node) -> None:
        """Step CP2/CP3 for one visited pair."""
        nonlocal seq
        ctx.check_cancelled()
        ctx.stats.node_pairs_visited += 1
        if node_p.is_leaf and node_q.is_leaf:
            scan_leaf_pair(ctx, node_p, node_q, options)
            return
        candidates = generate_candidates(ctx, node_p, node_q, options)
        for position in range(len(candidates)):
            minmin = float(candidates.minmin[position])
            if minmin > ctx.t:
                continue
            key = ties.key(candidates.geometry(ctx, position))
            if candidates.expand_p:
                entry = node_p.entries[int(candidates.idx_p[position])]
                page_p = entry.child_id
            else:
                page_p = node_p.page_id
            if candidates.expand_q:
                entry = node_q.entries[int(candidates.idx_q[position])]
                page_q = entry.child_id
            else:
                page_q = node_q.page_id
            seq += 1
            heapq.heappush(heap, (minmin, key, seq, page_p, page_q))
            ctx.stats.queue_inserts += 1
        if len(heap) > ctx.stats.max_queue_size:
            ctx.stats.max_queue_size = len(heap)

    with traced_traversal(ctx, NAME, tie_break=repr(ties),
                          height_strategy=height_strategy):
        tracer = ctx.tracer
        with tracer.span("heap") if tracer.enabled else _noop() as heap_span:
            process_pair(root_p, root_q)  # CP1/CP2 on the root pair
            pops = 0
            while heap:  # CP4
                minmin, __, __, page_p, page_q = heapq.heappop(heap)
                pops += 1
                if minmin > ctx.t:  # CP5: everything left is prunable
                    break
                node_p = ctx.tree_p.read_node(page_p)
                node_q = ctx.tree_q.read_node(page_q)
                process_pair(node_p, node_q)
            if tracer.enabled:
                # High-water mark and final size of the global queue
                # (Section 3.9's main-memory-residency argument).
                heap_span.annotate(
                    inserts=ctx.stats.queue_inserts,
                    pops=pops,
                    max_size=ctx.stats.max_queue_size,
                    leftover=len(heap),
                )
    return ctx.result(NAME)


@contextmanager
def _noop():
    yield None
