"""Strategies for trees of different heights (Section 3.7).

When the two R-trees differ in height, a visited pair may hold nodes at
different levels.  Two strategies decide which side(s) to expand:

* ``fix-at-leaves`` -- the classic spatial-join treatment: descend both
  trees together; once one side reaches a leaf, keep it fixed and
  continue descending the other.
* ``fix-at-root`` -- the paper's novel alternative: fix the *shorter*
  tree's node immediately (at its root level) and descend only the
  taller tree until both sides sit at the same level, then descend
  together.

Levels are counted from the leaves (leaf = 0), so "same level" is
directly comparable across trees.
"""

from __future__ import annotations

from repro.rtree.node import Node

FIX_AT_LEAVES = "fix-at-leaves"
FIX_AT_ROOT = "fix-at-root"

STRATEGIES = (FIX_AT_LEAVES, FIX_AT_ROOT)

EXPAND_BOTH = "both"
EXPAND_P = "p"
EXPAND_Q = "q"


def validate_strategy(strategy: str) -> str:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown height strategy {strategy!r}; expected one of "
            f"{STRATEGIES}"
        )
    return strategy


def expansion(node_p: Node, node_q: Node, strategy: str) -> str:
    """Which side(s) of a visited pair to expand.

    Never called with two leaves (that is the distance-scan base case).
    """
    if node_p.is_leaf and node_q.is_leaf:
        raise ValueError("leaf/leaf pairs are scanned, not expanded")
    if node_p.is_leaf:
        return EXPAND_Q
    if node_q.is_leaf:
        return EXPAND_P
    if strategy == FIX_AT_ROOT and node_p.level != node_q.level:
        # Descend only the taller side until the levels meet.
        return EXPAND_P if node_p.level > node_q.level else EXPAND_Q
    return EXPAND_BOTH
