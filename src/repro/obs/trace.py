"""Hierarchical spans and the tracer that records them.

The paper's evaluation is an I/O-cost story (Figures 4-10 plot disk
accesses), and the service layer added latency on top of it; this
module makes both attributable.  A :class:`Tracer` records a tree of
:class:`Span` objects per query -- service request, planner decision,
core traversal, heap ops, buffer/page I/O -- each carrying wall time
plus whatever counters the instrumented layer adds (page-read/hit
deltas snapshotted from :class:`~repro.storage.stats.IOStats`, node
pairs visited, MINMINDIST prunes, heap high-water marks).

Two design rules keep the instrumentation honest:

* **No-op by default.**  Every instrumented call site receives
  :data:`NULL_TRACER` unless a caller opts in.  Hot paths guard their
  bookkeeping behind ``tracer.enabled`` (a plain attribute read), so
  an untraced query executes the same arithmetic as before the
  instrumentation existed.
* **Thread-correct attribution.**  The active-span stack is
  thread-local, so concurrent service workers trace their own queries
  without cross-talk, and the buffer observer installed by
  :meth:`Tracer.watch_buffer` routes each page read to the I/O
  collector of the thread that issued it -- exact per-query I/O even
  when queries overlap on shared trees (which the aggregate
  :class:`~repro.storage.stats.IOStats` deltas cannot distinguish).

See ``docs/OBSERVABILITY.md`` for the span schema and worked examples.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional


class Span:
    """One node of a trace tree: a named period with counters.

    Attributes
    ----------
    name:
        Span kind, e.g. ``"request"``, ``"plan"``, ``"traverse"``,
        ``"heap"``, ``"io.p"``.
    span_id / parent_id:
        Tracer-unique integers; ``parent_id`` is ``None`` for roots.
    attrs:
        Free-form counters and annotations.  Counters added via
        :meth:`add` accumulate; :meth:`annotate` overwrites.
    offset_ms / duration_ms:
        Start offset relative to the root span, and wall time from
        start to finish, both in milliseconds.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "children",
                 "offset_ms", "duration_ms", "_t0")

    def __init__(
        self,
        name: str,
        span_id: int = 0,
        parent_id: Optional[int] = None,
        attrs: Optional[dict] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.offset_ms: float = 0.0
        self.duration_ms: float = 0.0
        self._t0: float = 0.0

    # -- recording ---------------------------------------------------------

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate ``amount`` into the counter ``key``."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def annotate(self, **attrs) -> None:
        """Set (overwrite) attributes on the span."""
        self.attrs.update(attrs)

    # -- reading -----------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield the span and its descendants, depth-first, in
        recording order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["Span"]:
        """Yield the childless descendants (the attribution leaves)."""
        for span in self.walk():
            if not span.children:
                yield span

    def total(self, key: str) -> float:
        """Sum a counter over the span and its whole subtree."""
        return sum(span.attrs.get(key, 0) for span in self.walk())

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name, else None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (and self) with the given name, in order."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"attrs={self.attrs}, children={len(self.children)})")


class _IOCollector:
    """Per-thread, per-tree page-read tally fed by the buffer observer.

    Counts are *raw* (one increment per observed read) and therefore
    exact for the observing thread even when other threads hammer the
    same buffer; tests cross-check them against the aggregate
    :class:`~repro.storage.stats.IOStats` deltas on serial workloads.
    """

    __slots__ = ("disk_reads", "buffer_hits", "pages")

    def __init__(self):
        self.disk_reads = 0
        self.buffer_hits = 0
        self.pages: set = set()

    def record(self, page_id: int, hit: bool) -> None:
        if hit:
            self.buffer_hits += 1
        else:
            self.disk_reads += 1
        self.pages.add(page_id)

    @property
    def reads(self) -> int:
        """Total observed logical reads (hits + misses)."""
        return self.disk_reads + self.buffer_hits

    @property
    def distinct_pages(self) -> int:
        """Number of distinct pages touched (re-read detector)."""
        return len(self.pages)


class Tracer:
    """Records span trees; thread-safe, one instance per service/CLI run.

    Parameters
    ----------
    max_traces:
        Retain at most this many finished root spans (oldest dropped
        first), bounding memory on long ``serve`` sessions.

    Usage::

        tracer = Tracer()
        with tracer.span("request", kind="cpq") as root:
            with tracer.span("plan") as plan:
                plan.annotate(algorithm="heap")
        finished = tracer.traces()[-1]
    """

    enabled: bool = True

    def __init__(self, max_traces: int = 4096):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._traces: List[Span] = []
        #: id(buffer) -> [observer, refcount] for watched buffer pools.
        self._watched: Dict[int, list] = {}

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(self, name: str, **attrs) -> Span:
        """Open a span as a child of the thread's current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            attrs=attrs,
        )
        span._t0 = time.perf_counter()
        if parent is not None:
            parent.children.append(span)
            span.offset_ms = (span._t0 - stack[0]._t0) * 1000.0
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close a span; a closed root is appended to :meth:`traces`."""
        span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
        stack = self._stack()
        while stack and stack[-1] is not span:
            stack.pop()  # tolerate mis-nested manual use
        if stack:
            stack.pop()
        if span.parent_id is None:
            with self._lock:
                self._traces.append(span)
                overflow = len(self._traces) - self.max_traces
                if overflow > 0:
                    del self._traces[:overflow]

    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager form of :meth:`start` / :meth:`finish`."""
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    # -- counters on the current span -------------------------------------

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a counter on the calling thread's current span."""
        span = self.current()
        if span is not None:
            span.add(key, amount)

    def annotate(self, **attrs) -> None:
        """Set attributes on the calling thread's current span."""
        span = self.current()
        if span is not None:
            span.annotate(**attrs)

    # -- finished traces ---------------------------------------------------

    def traces(self) -> List[Span]:
        """Snapshot of the finished root spans (oldest first)."""
        with self._lock:
            return list(self._traces)

    def pop_traces(self) -> List[Span]:
        """Drain and return the finished root spans."""
        with self._lock:
            drained, self._traces = self._traces, []
            return drained

    # -- buffer/page I/O attribution ---------------------------------------

    def watch_buffer(self, buffer, label: str) -> None:
        """Install this tracer's page-read observer on a buffer pool.

        Every subsequent :meth:`LRUBuffer.read` reports ``(page_id,
        hit)`` to the *calling thread's* active I/O collector for
        ``label`` (see :meth:`collect_io`); threads with no active
        collector pay one dictionary probe and move on.  Watches are
        reference-counted per buffer: concurrent traversals sharing a
        tree each watch/unwatch, and the observer comes off only when
        the last one releases it.  Installing a second tracer on the
        same buffer replaces the first.
        """
        def observe(page_id: int, hit: bool,
                    _tracer=self, _label=label) -> None:
            collectors = getattr(_tracer._local, "collectors", None)
            if collectors:
                collector = collectors.get(_label)
                if collector is not None:
                    collector.record(page_id, hit)

        with self._lock:
            entry = self._watched.get(id(buffer))
            if entry is None:
                self._watched[id(buffer)] = [observe, 1]
            else:
                entry[0] = observe
                entry[1] += 1
        buffer.on_read = observe

    def unwatch_buffer(self, buffer) -> None:
        """Release one :meth:`watch_buffer` registration on a buffer.

        The observer is removed when the final registration drops (and
        only if this tracer's observer is still the installed one, so
        an unrelated replacement survives).  Unbalanced calls -- e.g.
        against a buffer another tracer watched -- are no-ops.
        """
        with self._lock:
            entry = self._watched.get(id(buffer))
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            observer = entry[0]
            del self._watched[id(buffer)]
        if buffer.on_read is observer:
            buffer.on_read = None

    @contextmanager
    def collect_io(self, labels: Iterable[str]):
        """Activate per-label I/O collectors for the calling thread.

        Yields ``{label: _IOCollector}``.  Reads observed on watched
        buffers during the ``with`` block accumulate into the matching
        collector; nesting restores the outer collectors on exit.
        """
        collectors: Dict[str, _IOCollector] = {
            label: _IOCollector() for label in labels
        }
        previous = getattr(self._local, "collectors", None)
        self._local.collectors = collectors
        try:
            yield collectors
        finally:
            self._local.collectors = previous


class _NullContext:
    """A reusable context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> "Span":
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


class NullTracer:
    """The do-nothing tracer installed at every call site by default.

    ``enabled`` is False, which is what hot paths test before doing any
    tracing work; the methods exist so that cold paths may call them
    unconditionally.  All spans handed out are the shared
    :data:`NULL_SPAN`, whose mutators discard their input.
    """

    enabled: bool = False

    def span(self, name: str, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def start(self, name: str, **attrs) -> Span:
        return NULL_SPAN

    def finish(self, span: Span) -> None:
        pass

    def current(self) -> Optional[Span]:
        return None

    def add(self, key: str, amount: float = 1) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def traces(self) -> List[Span]:
        return []

    def pop_traces(self) -> List[Span]:
        return []

    def watch_buffer(self, buffer, label: str) -> None:
        pass

    def unwatch_buffer(self, buffer) -> None:
        pass

    def collect_io(self, labels: Iterable[str]) -> _NullContext:
        return _NULL_CONTEXT


class _NullSpan(Span):
    """Shared inert span; mutators drop their input."""

    __slots__ = ()

    def add(self, key: str, amount: float = 1) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass


#: The span returned by :class:`NullTracer`; safe to call, never records.
NULL_SPAN = _NullSpan("null")
_NULL_CONTEXT = _NullContext()

#: Module-level no-op tracer; the default at every instrumented site.
NULL_TRACER = NullTracer()
