"""repro.obs -- end-to-end query tracing and profiling.

The observability layer of the reproduction: hierarchical spans
(service request -> planner decision -> core traversal -> heap ops ->
buffer/page I/O) recording wall time, page-read/hit deltas, node-pair
counts, MINMINDIST prunes and heap high-water marks.  Exports as JSONL
(:func:`write_trace_jsonl` / :func:`load_trace_jsonl`) and as the
``repro-cpq explain`` tree (:func:`render_trace`).

Tracing is opt-in everywhere: call sites default to
:data:`NULL_TRACER`, whose ``enabled`` flag short-circuits all
instrumentation, so untraced queries run the pre-instrumentation code
path.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    load_trace_jsonl,
    render_trace,
    span_records,
    write_trace_jsonl,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "load_trace_jsonl",
    "render_trace",
    "span_records",
    "write_trace_jsonl",
]
