"""Trace export: JSONL spans and the ``EXPLAIN ANALYZE``-style tree.

Two output formats, one source of truth (:class:`~repro.obs.trace.Span`
trees):

* **JSONL** -- one JSON object per span, hierarchy encoded by
  ``span``/``parent`` ids and ``trace`` grouping.  Written by
  :func:`write_trace_jsonl`, read back by :func:`load_trace_jsonl`
  (the loader the acceptance round-trip test exercises).  Lines are
  self-contained, so files are streamable and ``grep``-able.
* **Rendered tree** -- :func:`render_trace` draws one trace as an
  indented tree with durations and counters, the output of
  ``repro-cpq explain``.

The JSONL schema per line::

    {"trace": <root span id>, "span": <id>, "parent": <id or null>,
     "name": "...", "offset_ms": float, "duration_ms": float,
     "attrs": {...}}

``attrs`` values are whatever the instrumentation recorded (ints,
floats, strings); non-finite floats survive the round trip via
Python's JSON extensions (``NaN``/``Infinity``).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

from repro.obs.trace import Span


def span_records(root: Span) -> Iterator[dict]:
    """Flatten one trace into its JSONL record dicts, depth-first."""
    for span in root.walk():
        yield {
            "trace": root.span_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "offset_ms": round(span.offset_ms, 3),
            "duration_ms": round(span.duration_ms, 3),
            "attrs": span.attrs,
        }


def write_trace_jsonl(
    sink: Union[str, IO[str]], traces: Iterable[Span]
) -> int:
    """Append every span of every trace to ``sink`` as JSON lines.

    ``sink`` is a path (opened for writing) or an open text handle.
    Returns the number of span lines written.
    """
    def emit(handle: IO[str]) -> int:
        count = 0
        for root in traces:
            for record in span_records(root):
                handle.write(json.dumps(record) + "\n")
                count += 1
        return count

    if isinstance(sink, str):
        with open(sink, "w") as handle:
            return emit(handle)
    return emit(sink)


def load_trace_jsonl(source: Union[str, IO[str]]) -> List[Span]:
    """Reconstruct span trees from a JSONL trace file.

    The inverse of :func:`write_trace_jsonl`: returns the root spans in
    file order with children attached in their recorded order.  Raises
    ``ValueError`` on a child whose parent is missing from the file.
    """
    def parse(handle: IO[str]) -> List[Span]:
        roots: List[Span] = []
        by_id: dict = {}
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            span = Span(
                record["name"],
                span_id=record["span"],
                parent_id=record.get("parent"),
                attrs=record.get("attrs") or {},
            )
            span.offset_ms = float(record.get("offset_ms", 0.0))
            span.duration_ms = float(record.get("duration_ms", 0.0))
            by_id[span.span_id] = span
            if span.parent_id is None:
                roots.append(span)
            else:
                parent = by_id.get(span.parent_id)
                if parent is None:
                    raise ValueError(
                        f"line {line_no}: span {span.span_id} references "
                        f"unknown parent {span.parent_id}"
                    )
                parent.children.append(span)
        return roots

    if isinstance(source, str):
        with open(source) as handle:
            return parse(handle)
    return parse(source)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    if " " in text:
        return f'"{text}"'
    return text


def _format_attrs(span: Span) -> str:
    return " ".join(
        f"{key}={_format_value(value)}"
        for key, value in span.attrs.items()
    )


def render_trace(root: Span, show_durations: bool = True) -> str:
    """Draw one trace as an ``EXPLAIN ANALYZE``-style indented tree.

    Each line shows the span name, its duration (suppressed by
    ``show_durations=False`` for deterministic golden tests), and its
    counters in recording order, e.g.::

        request  (12.416 ms)  kind=cpq pair=default status=ok
        |-- plan  (0.210 ms)  algorithm=heap ...
        `-- traverse  (11.902 ms)  algorithm=HEAP k=4 ...
            |-- heap  (11.316 ms)  inserts=210 pops=87 max_size=54
            |-- io.p  disk_reads=51 buffer_hits=120 reads=171 ...
            `-- io.q  disk_reads=49 buffer_hits=118 reads=167 ...

    Spans with zero duration (pure accounting spans, like the I/O
    leaves) omit the parenthesised time.
    """
    lines: List[str] = []

    def draw(span: Span, prefix: str, connector: str,
             child_prefix: str) -> None:
        parts = [f"{connector}{span.name}"]
        if show_durations and span.duration_ms > 0.0:
            parts.append(f"({span.duration_ms:.3f} ms)")
        attrs = _format_attrs(span)
        if attrs:
            parts.append(attrs)
        lines.append(prefix + "  ".join(parts))
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            draw(
                child,
                prefix + child_prefix,
                "`-- " if last else "|-- ",
                "    " if last else "|   ",
            )

    draw(root, "", "", "")
    return "\n".join(lines)
