"""NumPy batch versions of the Section 2.3 metrics.

The CPQ algorithms repeatedly evaluate metrics between *every* pair of
entries of two R-tree nodes (up to M x M = 441 pairs per node pair with
the paper's 1 KiB pages).  These helpers compute whole matrices of
MINMINDIST / MAXMAXDIST / MINMAXDIST values in a handful of vectorised
operations, which is what keeps the pure-Python reproduction fast
enough for paper-scale experiments.

All functions take rectangle arrays ``lo`` / ``hi`` of shape ``(n, k)``
and return an ``(n, m)`` matrix for the cross product of the two sides.
Points are passed as degenerate rectangles or as ``(n, k)`` coordinate
arrays where noted.

Every public kernel tallies its invocation into :data:`KERNEL_STATS`
(calls and entry pairs evaluated), which the service metrics snapshot
exposes for cost-model recalibration.

The MINMAXDIST kernel uses a branch-free closed form of Definition 3
for finite-``p`` Minkowski metrics instead of enumerating the 2k x 2k
face pairs.  Fixing a face means pinning one dimension of one rectangle
to a bound; only the pinned dimensions change their per-dimension
MAXDIST contribution, so with ``S`` the powered MAXDIST sum the face
minimum is the best of

* ``S - Mx_j^p + pAB_j^p`` when both faces pin the *same* dimension
  ``j`` (``pAB_j`` is the closest bound-to-bound gap), and
* ``S + (pA_j^p - Mx_j^p) + (pB_l^p - Mx_l^p)`` over ``j != l`` when
  they pin different dimensions (``pA_j`` / ``pB_l`` are the best
  pinned-bound MAXDIST deltas of the respective sides).

The cross-dimension minimum is found without materialising the
``k x k`` grid by combining each ``j`` with the best ``l != j`` via the
two smallest values of the ``B``-side deltas.
"""

from __future__ import annotations

import math
import threading
from typing import Dict

import numpy as np

from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric


class KernelStats:
    """Process-wide tally of pairwise-kernel invocations.

    Tracks, per kernel name, how many times it ran and how many entry
    pairs it evaluated.  The scalar engine path records under
    ``*_scalar`` names so the two implementations can be compared from
    one service metrics snapshot (``snapshot()["kernels"]``) and the
    cost model recalibrated against real pair counts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, list] = {}

    def record(self, kernel: str, pairs: int) -> None:
        """Count one invocation of ``kernel`` covering ``pairs`` pairs."""
        with self._lock:
            cell = self._counts.setdefault(kernel, [0, 0])
            cell[0] += 1
            cell[1] += int(pairs)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Return ``{kernel: {"calls": c, "pairs": p}}``."""
        with self._lock:
            return {
                name: {"calls": cell[0], "pairs": cell[1]}
                for name, cell in sorted(self._counts.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: Shared tally used by all kernels in this module and by the scalar
#: fallback helpers in ``repro.core.engine``.
KERNEL_STATS = KernelStats()


def _combine(deltas: np.ndarray, metric: MinkowskiMetric) -> np.ndarray:
    """Aggregate a (..., k) delta array into (...) distances."""
    p = metric.p
    if p == 2.0:
        return np.sqrt(np.sum(deltas * deltas, axis=-1))
    if p == 1.0:
        return np.sum(deltas, axis=-1)
    if p == math.inf:
        return np.max(deltas, axis=-1)
    return np.sum(deltas ** p, axis=-1) ** (1.0 / p)


def _power(deltas: np.ndarray, p: float) -> np.ndarray:
    """Per-dimension power term of a finite-``p`` Minkowski metric."""
    if p == 2.0:
        return deltas * deltas
    if p == 1.0:
        return deltas
    return deltas ** p


def _finish(powered: np.ndarray, p: float) -> np.ndarray:
    """Invert :func:`_power` sums into distances (finite ``p`` only)."""
    if p == 2.0:
        return np.sqrt(powered)
    if p == 1.0:
        return powered
    return powered ** (1.0 / p)


def pairwise_point_distances(
    points_a: np.ndarray,
    points_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """All distances between two point arrays; shape ``(n, m)``."""
    deltas = np.abs(points_a[:, None, :] - points_b[None, :, :])
    out = _combine(deltas, metric)
    KERNEL_STATS.record("points", out.size)
    return out


def pairwise_mindist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINMINDIST matrix between two rectangle arrays; shape ``(n, m)``."""
    gap_ab = lo_a[:, None, :] - hi_b[None, :, :]
    gap_ba = lo_b[None, :, :] - hi_a[:, None, :]
    deltas = np.maximum(np.maximum(gap_ab, gap_ba), 0.0)
    out = _combine(deltas, metric)
    KERNEL_STATS.record("minmin", out.size)
    return out


def _maxdist_matrix(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric,
) -> np.ndarray:
    deltas = np.maximum(
        np.abs(hi_a[:, None, :] - lo_b[None, :, :]),
        np.abs(hi_b[None, :, :] - lo_a[:, None, :]),
    )
    return _combine(deltas, metric)


def pairwise_maxdist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MAXMAXDIST matrix between two rectangle arrays; shape ``(n, m)``."""
    out = _maxdist_matrix(lo_a, hi_a, lo_b, hi_b, metric)
    KERNEL_STATS.record("maxmax", out.size)
    return out


def _minmaxdist_faces(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric,
) -> np.ndarray:
    """Literal Definition 3: min over 2k x 2k face pairs of MAXDIST.

    Kept as the Chebyshev (``p = inf``) path, where the powered-sum
    decomposition of the branch-free form does not apply.
    """
    n, k = lo_a.shape
    m = lo_b.shape[0]
    best = np.full((n, m), np.inf)
    bounds_a = (lo_a, hi_a)
    bounds_b = (lo_b, hi_b)
    for da in range(k):
        for side_a in range(2):
            face_lo_a = lo_a.copy()
            face_hi_a = hi_a.copy()
            face_lo_a[:, da] = face_hi_a[:, da] = bounds_a[side_a][:, da]
            for db in range(k):
                for side_b in range(2):
                    face_lo_b = lo_b.copy()
                    face_hi_b = hi_b.copy()
                    face_lo_b[:, db] = face_hi_b[:, db] = (
                        bounds_b[side_b][:, db]
                    )
                    d = _maxdist_matrix(
                        face_lo_a, face_hi_a, face_lo_b, face_hi_b, metric
                    )
                    np.minimum(best, d, out=best)
    return best


def _minmaxdist_powered(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    p: float,
) -> np.ndarray:
    """Branch-free powered MINMAXDIST (see module docstring)."""
    k = lo_a.shape[1]
    a_lo = lo_a[:, None, :]
    a_hi = hi_a[:, None, :]
    b_lo = lo_b[None, :, :]
    b_hi = hi_b[None, :, :]

    # Per-dimension MAXDIST delta and its powered running sum S.
    mx = np.maximum(np.abs(a_hi - b_lo), np.abs(b_hi - a_lo))
    mxp = _power(mx, p)
    total = mxp[..., 0].copy()
    for j in range(1, k):
        total += mxp[..., j]

    # Best pinned-bound deltas: pa pins side A to one bound, pb pins
    # side B, pab pins both (same dimension).
    pa = np.minimum(
        np.maximum(np.abs(a_lo - b_lo), np.abs(b_hi - a_lo)),
        np.maximum(np.abs(a_hi - b_lo), np.abs(b_hi - a_hi)),
    )
    pb = np.minimum(
        np.maximum(np.abs(b_lo - a_lo), np.abs(a_hi - b_lo)),
        np.maximum(np.abs(b_hi - a_lo), np.abs(a_hi - b_hi)),
    )
    pab = np.minimum(
        np.minimum(np.abs(a_lo - b_lo), np.abs(a_lo - b_hi)),
        np.minimum(np.abs(a_hi - b_lo), np.abs(a_hi - b_hi)),
    )
    pabp = _power(pab, p)

    # Both faces pin the same dimension j.
    best = np.min((total[..., None] - mxp) + pabp, axis=-1)

    # Faces pin different dimensions j (side A) and l != j (side B):
    # for each j, the best l is either the global minimum of the B-side
    # deltas or, when that minimum sits at j itself, the runner-up.
    if k > 1:
        u = _power(pa, p) - mxp
        v = _power(pb, p) - mxp
        v_sorted = np.sort(v, axis=-1)
        v_best = v_sorted[..., 0]
        v_second = v_sorted[..., 1]
        v_arg = np.argmin(v, axis=-1)
        dims = np.arange(k)
        v_excl = np.where(
            v_arg[..., None] == dims, v_second[..., None], v_best[..., None]
        )
        cross = np.min(u + v_excl, axis=-1)
        best = np.minimum(best, total + cross)
    return best


def pairwise_minmaxdist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINMAXDIST matrix between two rectangle arrays; shape ``(n, m)``.

    For finite ``p`` this evaluates the branch-free closed form of the
    face-pair minimum (module docstring); for the Chebyshev metric it
    falls back to literal face enumeration.  ``repro.geometry.metrics``
    mirrors the same arithmetic so the scalar engine path produces
    bit-identical values for p in {1, 2, inf}; other p agree to the
    last ulp (NumPy's array power and CPython's scalar ``pow`` may
    round differently).
    """
    if metric.p == math.inf:
        out = _minmaxdist_faces(lo_a, hi_a, lo_b, hi_b, metric)
    else:
        out = _finish(
            _minmaxdist_powered(lo_a, hi_a, lo_b, hi_b, metric.p), metric.p
        )
    KERNEL_STATS.record("minmax", out.size)
    return out


def batch_mindist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """Elementwise MINMINDIST of N rectangle *pairs*; shape ``(n,)``.

    Unlike :func:`pairwise_mindist` (the ``(n, m)`` cross product of
    two sides), this evaluates row ``i`` of side A against row ``i`` of
    side B only -- the shape needed to order an already-formed list of
    candidate pairs, e.g. the subtree-pair frontier of the parallel
    executor.  Same arithmetic as the pairwise kernel, so values are
    bit-identical to the corresponding matrix entries.
    """
    gap_ab = lo_a - hi_b
    gap_ba = lo_b - hi_a
    deltas = np.maximum(np.maximum(gap_ab, gap_ba), 0.0)
    out = _combine(deltas, metric)
    KERNEL_STATS.record("minmin_batch", out.size)
    return out


def batch_mindist_argsort(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
):
    """Ascending stable MINMINDIST order of N rectangle pairs.

    Returns ``(order, values)`` where ``values`` is the elementwise
    MINMINDIST vector of :func:`batch_mindist` and ``order`` a stable
    mergesort argsort of it -- equal distances keep their input
    (deterministic) order, matching the paper's stable candidate
    sorting.
    """
    values = batch_mindist(lo_a, hi_a, lo_b, hi_b, metric)
    order = np.argsort(values, kind="stable")
    return order, values


def point_rect_mindist(
    points: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINDIST from each point to each rectangle; shape ``(n, m)``."""
    below = lo[None, :, :] - points[:, None, :]
    above = points[:, None, :] - hi[None, :, :]
    deltas = np.maximum(np.maximum(below, above), 0.0)
    return _combine(deltas, metric)
