"""NumPy batch versions of the Section 2.3 metrics.

The CPQ algorithms repeatedly evaluate metrics between *every* pair of
entries of two R-tree nodes (up to M x M = 441 pairs per node pair with
the paper's 1 KiB pages).  These helpers compute whole matrices of
MINMINDIST / MAXMAXDIST / MINMAXDIST values in a handful of vectorised
operations, which is what keeps the pure-Python reproduction fast
enough for paper-scale experiments.

All functions take rectangle arrays ``lo`` / ``hi`` of shape ``(n, k)``
and return an ``(n, m)`` matrix for the cross product of the two sides.
Points are passed as degenerate rectangles or as ``(n, k)`` coordinate
arrays where noted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric


def _combine(deltas: np.ndarray, metric: MinkowskiMetric) -> np.ndarray:
    """Aggregate a (..., k) delta array into (...) distances."""
    p = metric.p
    if p == 2.0:
        return np.sqrt(np.sum(deltas * deltas, axis=-1))
    if p == 1.0:
        return np.sum(deltas, axis=-1)
    if p == math.inf:
        return np.max(deltas, axis=-1)
    return np.sum(deltas ** p, axis=-1) ** (1.0 / p)


def pairwise_point_distances(
    points_a: np.ndarray,
    points_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """All distances between two point arrays; shape ``(n, m)``."""
    deltas = np.abs(points_a[:, None, :] - points_b[None, :, :])
    return _combine(deltas, metric)


def pairwise_mindist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINMINDIST matrix between two rectangle arrays; shape ``(n, m)``."""
    gap_ab = lo_a[:, None, :] - hi_b[None, :, :]
    gap_ba = lo_b[None, :, :] - hi_a[:, None, :]
    deltas = np.maximum(np.maximum(gap_ab, gap_ba), 0.0)
    return _combine(deltas, metric)


def pairwise_maxdist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MAXMAXDIST matrix between two rectangle arrays; shape ``(n, m)``."""
    deltas = np.maximum(
        np.abs(hi_a[:, None, :] - lo_b[None, :, :]),
        np.abs(hi_b[None, :, :] - lo_a[:, None, :]),
    )
    return _combine(deltas, metric)


def pairwise_minmaxdist(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINMAXDIST matrix between two rectangle arrays; shape ``(n, m)``.

    Implements the paper's definition literally: the minimum over all
    2k x 2k face pairs of MAXDIST(face_a, face_b).  Each face fixes one
    dimension of its rectangle to one of the two bounds; the loop below
    enumerates the (fixed-dim, bound) combinations while every other
    operation is broadcast over the ``(n, m)`` pair matrix.
    """
    n, k = lo_a.shape
    m = lo_b.shape[0]
    best = np.full((n, m), np.inf)
    bounds_a = (lo_a, hi_a)
    bounds_b = (lo_b, hi_b)
    for da in range(k):
        for side_a in range(2):
            face_lo_a = lo_a.copy()
            face_hi_a = hi_a.copy()
            face_lo_a[:, da] = face_hi_a[:, da] = bounds_a[side_a][:, da]
            for db in range(k):
                for side_b in range(2):
                    face_lo_b = lo_b.copy()
                    face_hi_b = hi_b.copy()
                    face_lo_b[:, db] = face_hi_b[:, db] = (
                        bounds_b[side_b][:, db]
                    )
                    d = pairwise_maxdist(
                        face_lo_a, face_hi_a, face_lo_b, face_hi_b, metric
                    )
                    np.minimum(best, d, out=best)
    return best


def point_rect_mindist(
    points: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> np.ndarray:
    """MINDIST from each point to each rectangle; shape ``(n, m)``."""
    below = lo[None, :, :] - points[:, None, :]
    above = points[:, None, :] - hi[None, :, :]
    deltas = np.maximum(np.maximum(below, above), 0.0)
    return _combine(deltas, metric)
