"""Distance metrics between MBRs and points (paper Section 2.3).

The CPQ algorithms prune the search space with three metrics between a
pair of MBRs ``(MP, MQ)``:

* ``MINMINDIST`` -- the smallest possible distance between a point in
  MP and a point in MQ (0 when the boxes intersect).  Lower bound of
  Inequality 1.
* ``MAXMAXDIST`` -- the largest possible such distance.  Upper bound of
  Inequality 1 and the pruning bound of the K-CPQ variants.
* ``MINMAXDIST`` -- an upper bound on the distance of *at least one*
  pair of points (Inequality 2), valid because every face of an MBR
  touches at least one indexed point.  Used by the 1-CPQ algorithms to
  tighten ``T`` early.

The point-to-MBR metrics of Roussopoulos et al. (``point_mbr_mindist``
and ``point_mbr_minmaxdist``) power the K-NN substrate query and are
also exercised by the property tests as the 1-point degenerate case of
the pairwise metrics.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.mbr import MBR
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric


def mindist(a: MBR, b: MBR, metric: MinkowskiMetric = EUCLIDEAN) -> float:
    """Minimum distance between any point of ``a`` and any point of ``b``.

    Zero when the boxes intersect.  This is the box-level form of the
    paper's MINMINDIST (the minimum over face pairs of the face-level
    MINDIST equals the box-level value).
    """
    deltas = []
    for al, ah, bl, bh in zip(a.lo, a.hi, b.lo, b.hi):
        if al > bh:
            deltas.append(al - bh)
        elif bl > ah:
            deltas.append(bl - ah)
        else:
            deltas.append(0.0)
    return metric.finish(metric.combine(deltas))


def maxdist(a: MBR, b: MBR, metric: MinkowskiMetric = EUCLIDEAN) -> float:
    """Maximum distance between any point of ``a`` and any point of ``b``."""
    deltas = [
        max(abs(ah - bl), abs(bh - al))
        for al, ah, bl, bh in zip(a.lo, a.hi, b.lo, b.hi)
    ]
    return metric.finish(metric.combine(deltas))


def minmindist(a: MBR, b: MBR, metric: MinkowskiMetric = EUCLIDEAN) -> float:
    """MINMINDIST(MP, MQ): lower bound for every point pair (Ineq. 1)."""
    return mindist(a, b, metric)


def maxmaxdist(a: MBR, b: MBR, metric: MinkowskiMetric = EUCLIDEAN) -> float:
    """MAXMAXDIST(MP, MQ): upper bound for every point pair (Ineq. 1)."""
    return maxdist(a, b, metric)


def _power(delta: float, p: float) -> float:
    if p == 2.0:
        return delta * delta
    if p == 1.0:
        return delta
    return delta ** p


def minmaxdist(a: MBR, b: MBR, metric: MinkowskiMetric = EUCLIDEAN) -> float:
    """MINMAXDIST(MP, MQ): min over face pairs of the face MAXDIST.

    Guarantees that at least one pair of indexed points (one from each
    box) lies within this distance, because every face of an MBR
    contains at least one point and any two points on a pair of faces
    are at most MAXDIST(face, face) apart (Inequality 2 of the paper).

    For finite ``p`` this uses the same branch-free closed form as
    ``repro.geometry.vectorized.pairwise_minmaxdist`` with the identical
    operation order, so the scalar and vectorized engine paths produce
    bit-identical values; the Chebyshev metric keeps the literal face
    enumeration (as does the kernel).
    """
    p = metric.p
    if p == math.inf:
        best = None
        for fa in a.faces():
            for fb in b.faces():
                d = maxdist(fa, fb, metric)
                if best is None or d < best:
                    best = d
        assert best is not None
        return best

    k = len(a.lo)
    mxp = []
    pap = []
    pbp = []
    pabp = []
    total = 0.0
    for j, (al, ah, bl, bh) in enumerate(zip(a.lo, a.hi, b.lo, b.hi)):
        mp = _power(max(abs(ah - bl), abs(bh - al)), p)
        total = mp if j == 0 else total + mp
        mxp.append(mp)
        pap.append(
            _power(
                min(
                    max(abs(al - bl), abs(bh - al)),
                    max(abs(ah - bl), abs(bh - ah)),
                ),
                p,
            )
        )
        pbp.append(
            _power(
                min(
                    max(abs(bl - al), abs(ah - bl)),
                    max(abs(bh - al), abs(ah - bh)),
                ),
                p,
            )
        )
        pabp.append(
            _power(
                min(
                    min(abs(al - bl), abs(al - bh)),
                    min(abs(ah - bl), abs(ah - bh)),
                ),
                p,
            )
        )
    # Both faces pin the same dimension j.
    best = min((total - mxp[j]) + pabp[j] for j in range(k))
    # Faces pin different dimensions j (side a) and l != j (side b).
    if k > 1:
        u = [pap[j] - mxp[j] for j in range(k)]
        v = [pbp[j] - mxp[j] for j in range(k)]
        cross = min(
            u[j] + v[l] for j in range(k) for l in range(k) if l != j
        )
        best = min(best, total + cross)
    return metric.finish(best)


def point_mbr_mindist(
    point: Sequence[float], box: MBR, metric: MinkowskiMetric = EUCLIDEAN
) -> float:
    """MINDIST(p, R) of Roussopoulos et al.: distance to the nearest
    possible location inside ``box``."""
    deltas = []
    for v, lo, hi in zip(point, box.lo, box.hi):
        if v < lo:
            deltas.append(lo - v)
        elif v > hi:
            deltas.append(v - hi)
        else:
            deltas.append(0.0)
    return metric.finish(metric.combine(deltas))


def point_mbr_minmaxdist(
    point: Sequence[float], box: MBR, metric: MinkowskiMetric = EUCLIDEAN
) -> float:
    """MINMAXDIST(p, R) of Roussopoulos et al.

    Upper bound on the distance from ``point`` to at least one object
    inside ``box``: along one dimension go to the *nearer* face, along
    every other dimension go to the *farther* bound, and take the best
    choice of pinned dimension.
    """
    dims = len(point)
    # Farthest per-dimension delta (used for the non-pinned dimensions).
    far = [
        max(abs(v - lo), abs(v - hi))
        for v, lo, hi in zip(point, box.lo, box.hi)
    ]
    # Nearer-face delta per dimension (used for the pinned dimension).
    near = []
    for v, lo, hi in zip(point, box.lo, box.hi):
        nearer_face = lo if v <= (lo + hi) / 2.0 else hi
        near.append(abs(v - nearer_face))
    best = None
    for k in range(dims):
        deltas = [near[d] if d == k else far[d] for d in range(dims)]
        d = metric.finish(metric.combine(deltas))
        if best is None or d < best:
            best = d
    assert best is not None
    return best
