"""Geometric primitives and distance metrics.

This subpackage provides the building blocks used by every other part of
the library:

* :class:`~repro.geometry.mbr.MBR` -- axis-aligned minimum bounding
  rectangles in arbitrary dimension.
* :mod:`~repro.geometry.minkowski` -- the family of Minkowski metrics
  (the paper uses Euclidean distance but notes that "the presented
  methods can be easily adapted to any Minkowski metric").
* :mod:`~repro.geometry.metrics` -- the MBR-to-MBR metrics of Section
  2.3 of the paper: MINMINDIST, MINMAXDIST and MAXMAXDIST, together
  with the point-to-MBR metrics of Roussopoulos et al. used by the
  K-nearest-neighbour substrate query.
* :mod:`~repro.geometry.vectorized` -- NumPy batch versions of the
  metrics, used on the hot paths of the CPQ algorithms.
"""

from repro.geometry.mbr import MBR
from repro.geometry.minkowski import (
    EUCLIDEAN,
    CHEBYSHEV,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.geometry.metrics import (
    maxdist,
    maxmaxdist,
    mindist,
    minmaxdist,
    minmindist,
    point_mbr_mindist,
    point_mbr_minmaxdist,
)

__all__ = [
    "MBR",
    "MinkowskiMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHEBYSHEV",
    "mindist",
    "maxdist",
    "minmindist",
    "minmaxdist",
    "maxmaxdist",
    "point_mbr_mindist",
    "point_mbr_minmaxdist",
]
