"""Minkowski (L_p) metrics.

The paper's algorithms are stated for Euclidean distance but Section 2.1
notes that they "can be easily adapted to any Minkowski metric".  All
distance computations in the library therefore go through a
:class:`MinkowskiMetric` object, so that swapping the metric swaps the
behaviour of every algorithm consistently.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class MinkowskiMetric:
    """The L_p metric on R^k for ``1 <= p <= inf``.

    ``p`` may be any float ``>= 1`` or ``math.inf`` (Chebyshev).  The
    class exposes both the plain distance and the *aggregation* helpers
    (:meth:`combine`, :meth:`finish`) used by the MBR metrics, which
    accumulate per-dimension deltas before applying the final root.
    """

    __slots__ = ("p",)

    def __init__(self, p: float = 2.0):
        if p != math.inf and p < 1.0:
            raise ValueError(f"Minkowski order must be >= 1 or inf, got {p}")
        self.p = float(p)

    # -- aggregation protocol ------------------------------------------------

    def combine(self, deltas: Iterable[float]) -> float:
        """Aggregate non-negative per-dimension deltas into a 'powered' sum.

        For finite ``p`` this is ``sum(d ** p)``; for ``p = inf`` it is
        ``max(d)``.  The result is comparable between calls (monotone in
        the true distance) and is turned into a distance by
        :meth:`finish`.
        """
        if self.p == math.inf:
            return max(deltas, default=0.0)
        if self.p == 2.0:
            return sum(d * d for d in deltas)
        if self.p == 1.0:
            return sum(deltas)
        return sum(d ** self.p for d in deltas)

    def finish(self, powered: float) -> float:
        """Turn a :meth:`combine` result into an actual distance."""
        if self.p == math.inf or self.p == 1.0:
            return powered
        if self.p == 2.0:
            return math.sqrt(powered)
        return powered ** (1.0 / self.p)

    # -- distances -----------------------------------------------------------

    def distance(self, a: Sequence[float], b: Sequence[float]) -> float:
        """Distance between two points of equal dimension."""
        if len(a) != len(b):
            raise ValueError(
                f"dimension mismatch: {len(a)} vs {len(b)}"
            )
        return self.finish(self.combine(abs(x - y) for x, y in zip(a, b)))

    # -- niceties ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        name = {1.0: "MANHATTAN", 2.0: "EUCLIDEAN", math.inf: "CHEBYSHEV"}
        return name.get(self.p, f"MinkowskiMetric(p={self.p})")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MinkowskiMetric) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("MinkowskiMetric", self.p))


#: The Euclidean metric (the paper's default).
EUCLIDEAN = MinkowskiMetric(2.0)

#: The L1 / city-block metric.
MANHATTAN = MinkowskiMetric(1.0)

#: The L-infinity / maximum metric.
CHEBYSHEV = MinkowskiMetric(math.inf)
