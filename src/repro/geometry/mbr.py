"""Axis-aligned minimum bounding rectangles (MBRs).

An :class:`MBR` is the basic shape stored in every R-tree node.  MBRs
are immutable; operations that "modify" a rectangle (union, extension)
return a new one.  Dimension is arbitrary (the paper focuses on 2-d but
notes the extension to k-d is straightforward; we support both).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

Point = Tuple[float, ...]


class MBR:
    """An axis-aligned box given by per-dimension (low, high) bounds."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same dimension")
        if len(lo) == 0:
            raise ValueError("MBR must have at least one dimension")
        for low, high in zip(lo, hi):
            if low > high:
                raise ValueError(f"invalid MBR bounds: lo={lo} hi={hi}")
        self.lo: Point = tuple(float(v) for v in lo)
        self.hi: Point = tuple(float(v) for v in hi)

    # -- constructors ----------------------------------------------------

    @classmethod
    def _trusted(cls, lo: Point, hi: Point) -> "MBR":
        """Internal fast path: bounds already validated float tuples.

        Used by union/intersection-style operations whose outputs are
        valid by construction; skips the per-coordinate checks that
        dominate hot loops.
        """
        box = object.__new__(cls)
        box.lo = lo
        box.hi = hi
        return box

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        """The degenerate MBR covering a single point."""
        return cls(point, point)

    @classmethod
    def from_points(cls, points: Iterable[Sequence[float]]) -> "MBR":
        """The tightest MBR covering all the given points."""
        it = iter(points)
        try:
            first = tuple(next(it))
        except StopIteration:
            raise ValueError("cannot bound an empty point collection")
        lo = list(first)
        hi = list(first)
        for p in it:
            for d, v in enumerate(p):
                if v < lo[d]:
                    lo[d] = v
                elif v > hi[d]:
                    hi[d] = v
        return cls(lo, hi)

    @classmethod
    def union_all(cls, boxes: Iterable["MBR"]) -> "MBR":
        """The tightest MBR covering all the given boxes."""
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot union an empty box collection")
        lo = list(first.lo)
        hi = list(first.hi)
        for b in it:
            for d in range(len(lo)):
                if b.lo[d] < lo[d]:
                    lo[d] = b.lo[d]
                if b.hi[d] > hi[d]:
                    hi[d] = b.hi[d]
        return cls._trusted(tuple(lo), tuple(hi))

    # -- basic properties --------------------------------------------------

    @property
    def dimension(self) -> int:
        return len(self.lo)

    @property
    def center(self) -> Point:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def side(self, d: int) -> float:
        """Extent of the box along dimension ``d``."""
        return self.hi[d] - self.lo[d]

    def area(self) -> float:
        """Volume of the box (area in 2-d)."""
        result = 1.0
        for l, h in zip(self.lo, self.hi):
            result *= h - l
        return result

    def margin(self) -> float:
        """Sum of side lengths (half-perimeter in 2-d); the R* split measure."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    # -- predicates --------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(
            l <= v <= h for v, l, h in zip(point, self.lo, self.hi)
        )

    def contains(self, other: "MBR") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersects(self, other: "MBR") -> bool:
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # -- combination ---------------------------------------------------------

    def union(self, other: "MBR") -> "MBR":
        return MBR._trusted(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersection(self, other: "MBR") -> "MBR | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return MBR(lo, hi)

    def intersection_area(self, other: "MBR") -> float:
        """Area of overlap with ``other`` (0.0 when disjoint)."""
        result = 1.0
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            side = min(sh, oh) - max(sl, ol)
            if side <= 0.0:
                return 0.0
            result *= side
        return result

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed for this box to also cover ``other``."""
        return self.union(other).area() - self.area()

    def extended_to_point(self, point: Sequence[float]) -> "MBR":
        return MBR._trusted(
            tuple(min(l, float(v)) for l, v in zip(self.lo, point)),
            tuple(max(h, float(v)) for h, v in zip(self.hi, point)),
        )

    # -- faces ----------------------------------------------------------------

    def faces(self) -> Iterator["MBR"]:
        """Yield the 2k faces of the box as degenerate MBRs.

        Each face fixes one dimension to one of its bounds; the paper's
        MBR property guarantees at least one indexed point lies on each
        face, which is what makes MINMAXDIST a valid upper bound.
        """
        for d in range(self.dimension):
            for bound in (self.lo[d], self.hi[d]):
                lo = list(self.lo)
                hi = list(self.hi)
                lo[d] = hi[d] = bound
                yield MBR(lo, hi)

    def corners(self) -> Iterator[Point]:
        """Yield the 2^k corner points of the box."""
        dims = self.dimension
        for mask in range(1 << dims):
            yield tuple(
                self.hi[d] if mask & (1 << d) else self.lo[d]
                for d in range(dims)
            )

    # -- niceties ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MBR)
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"MBR(lo={self.lo}, hi={self.hi})"
