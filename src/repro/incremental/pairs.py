"""Priority-queue items of the incremental distance join.

Each side of a pair is either a *node reference* (page id plus the MBR
and level recorded in its parent entry -- the node itself is read only
when the pair is expanded) or an *object* (a leaf entry; for point
data the object and its bounding rectangle coincide, so Hjaltason &
Samet's node/obr and node/object item types collapse into one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.geometry.mbr import MBR
from repro.geometry.metrics import mindist, point_mbr_mindist
from repro.geometry.minkowski import MinkowskiMetric
from repro.rtree.entries import LeafEntry

#: Objects are "deeper than any leaf" for the depth tie policies.
OBJECT_LEVEL = -1


@dataclass(frozen=True)
class NodeRef:
    """An un-read node: page id plus the geometry its parent recorded."""

    page_id: int
    mbr: MBR
    level: int


Side = Union[NodeRef, LeafEntry]


def side_level(side: Side) -> int:
    """Tree level of one pair side (objects count as deepest)."""
    return side.level if isinstance(side, NodeRef) else OBJECT_LEVEL


def is_object(side: Side) -> bool:
    return isinstance(side, LeafEntry)


def pair_distance(a: Side, b: Side, metric: MinkowskiMetric) -> float:
    """Queue key: MINMINDIST / MINDIST / true distance by item type."""
    a_obj = is_object(a)
    b_obj = is_object(b)
    if a_obj and b_obj:
        return metric.distance(a.point, b.point)
    if a_obj:
        return point_mbr_mindist(a.point, b.mbr, metric)
    if b_obj:
        return point_mbr_mindist(b.point, a.mbr, metric)
    return mindist(a.mbr, b.mbr, metric)
