"""Incremental distance-join algorithms of Hjaltason & Samet (1998).

The comparison baseline of the paper (Sections 3.9 and 5.2).  A single
priority queue keyed by distance holds items of four types --
node/node, node/object, object/node and object/object -- and pairs are
reported *incrementally*, in ascending distance order, as object/object
items surface.

Three tree-traversal policies are implemented, as in the original
paper and the comparison experiments:

* ``BAS`` -- basic: always expand one designated tree's node first.
* ``EVN`` -- even: expand the node at the shallower depth.
* ``SML`` -- simultaneous: expand both nodes of a node/node pair.

plus the two distance-tie policies (depth-first / breadth-first).
"""

from repro.incremental.distance_join import (
    POLICIES,
    incremental_distance_join,
    k_distance_join,
)

__all__ = ["incremental_distance_join", "k_distance_join", "POLICIES"]
