"""The incremental distance join (Hjaltason & Samet, SIGMOD 1998).

:func:`incremental_distance_join` yields closest pairs one at a time in
ascending distance order -- the defining property of the incremental
approach.  :func:`k_distance_join` materialises the first K pairs and
returns a :class:`~repro.core.result.CPQResult` with the same cost
statistics as the paper's algorithms, enabling the Figure 10
comparison.

Key differences from the paper's HEAP algorithm (Section 3.9):

* the queue holds items of all four types (node/node, node/object,
  object/node, object/object), so it grows much larger -- visible in
  ``stats.max_queue_size``;
* results stream out in order instead of being computed together;
* traversal follows one of three policies (BAS / EVN / SML) instead of
  always-simultaneous.

When ``k_bound`` is given, the algorithm applies Hjaltason & Samet's
K-bounding modification: a max-heap of the best K object/object
distances seen so far provides a threshold; queue insertions beyond it
are skipped.  After this the join is "incremental up to K, only".
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator, List, Optional, Tuple

from repro.core.kheap import KHeap
from repro.core.result import ClosestPair, CPQResult
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.incremental.pairs import (
    NodeRef,
    Side,
    is_object,
    pair_distance,
    side_level,
)
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats

#: Traversal policies: which side(s) of a node/node pair to expand.
BASIC = "bas"
EVEN = "evn"
SIMULTANEOUS = "sml"
POLICIES = (BASIC, EVEN, SIMULTANEOUS)

#: Distance-tie policies.
DEPTH_FIRST = "depth"
BREADTH_FIRST = "breadth"
TIE_POLICIES = (DEPTH_FIRST, BREADTH_FIRST)


def incremental_distance_join(
    tree_p: RTree,
    tree_q: RTree,
    policy: str = SIMULTANEOUS,
    tie_policy: str = DEPTH_FIRST,
    metric: MinkowskiMetric = EUCLIDEAN,
    k_bound: Optional[int] = None,
    stats: Optional[QueryStats] = None,
) -> Iterator[ClosestPair]:
    """Yield closest pairs of (P, Q) in ascending distance order.

    The generator is lazy: consuming n pairs performs only the work
    needed for the n closest.  Pass ``stats`` to collect cost counters
    while iterating.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; expected one of {POLICIES}"
        )
    if tie_policy not in TIE_POLICIES:
        raise ValueError(
            f"unknown tie policy {tie_policy!r}; expected one of "
            f"{TIE_POLICIES}"
        )
    if k_bound is not None and k_bound < 1:
        raise ValueError("k_bound must be >= 1 when given")
    if stats is None:
        stats = QueryStats()
    if tree_p.root_id is None or tree_q.root_id is None:
        return

    # I/O is accounted as deltas against snapshots taken at generator
    # start, so iterating never mutates the trees' own counters --
    # essential when the trees are shared with concurrent queries (the
    # service engine attributes I/O per query from the same counters).
    base_p = tree_p.stats.snapshot()
    base_q = tree_q.stats.snapshot()

    def _sync() -> None:
        nonlocal base_p, base_q
        cur_p = tree_p.stats.snapshot()
        cur_q = tree_q.stats.snapshot()
        stats.disk_accesses += (
            (cur_p.disk_reads - base_p.disk_reads)
            + (cur_q.disk_reads - base_q.disk_reads)
        )
        stats.buffer_hits += (
            (cur_p.buffer_hits - base_p.buffer_hits)
            + (cur_q.buffer_hits - base_q.buffer_hits)
        )
        base_p, base_q = cur_p, cur_q

    tie_sign = 1 if tie_policy == DEPTH_FIRST else -1
    bound_heap = KHeap(k_bound) if k_bound is not None else None
    # Queue items: (distance, tie value, sequence, side_p, side_q).
    queue: List[Tuple[float, int, int, Side, Side]] = []
    seq = 0

    def threshold() -> float:
        return bound_heap.threshold if bound_heap is not None else math.inf

    def push(side_p: Side, side_q: Side) -> None:
        nonlocal seq
        distance = pair_distance(side_p, side_q, metric)
        if is_object(side_p) and is_object(side_q):
            stats.distance_computations += 1
            if bound_heap is not None:
                # Feed the K-bound with every candidate object pair; do
                # not enqueue pairs that can no longer make the top K.
                if distance > threshold():
                    return
                bound_heap.offer(
                    ClosestPair(
                        distance, side_p.point, side_q.point,
                        side_p.oid, side_q.oid,
                    )
                )
        elif distance > threshold():
            return
        # Depth-first prefers deeper (smaller-level) items among equal
        # distances; breadth-first the opposite.
        tie = tie_sign * (side_level(side_p) + side_level(side_q))
        seq += 1
        heapq.heappush(queue, (distance, tie, seq, side_p, side_q))
        stats.queue_inserts += 1
        if len(queue) > stats.max_queue_size:
            stats.max_queue_size = len(queue)

    def children(tree: RTree, ref: NodeRef) -> List[Side]:
        node: Node = tree.read_node(ref.page_id)
        if node.is_leaf:
            return list(node.entries)
        return [
            NodeRef(e.child_id, e.mbr, node.level - 1) for e in node.entries
        ]

    def expand(side_p: Side, side_q: Side) -> None:
        """Replace a popped non-final pair by its refinement."""
        stats.node_pairs_visited += 1
        p_is_node = not is_object(side_p)
        q_is_node = not is_object(side_q)
        if p_is_node and q_is_node:
            if policy == SIMULTANEOUS:
                kids_p = children(tree_p, side_p)
                kids_q = children(tree_q, side_q)
                for cp in kids_p:
                    for cq in kids_q:
                        push(cp, cq)
                return
            if policy == EVEN:
                # Expand the node at the shallower depth (higher level).
                expand_p = side_p.level >= side_q.level
            else:  # BASIC: priority to tree P, arbitrarily.
                expand_p = True
            if expand_p:
                for cp in children(tree_p, side_p):
                    push(cp, side_q)
            else:
                for cq in children(tree_q, side_q):
                    push(side_p, cq)
            return
        if p_is_node:
            for cp in children(tree_p, side_p):
                push(cp, side_q)
        else:
            for cq in children(tree_q, side_q):
                push(side_p, cq)

    root_p = tree_p.read_node(tree_p.root_id)
    root_q = tree_q.read_node(tree_q.root_id)
    push(
        NodeRef(root_p.page_id, root_p.mbr(), root_p.level),
        NodeRef(root_q.page_id, root_q.mbr(), root_q.level),
    )

    reported = 0
    while queue:
        distance, __, __, side_p, side_q = heapq.heappop(queue)
        if distance > threshold():
            break
        if is_object(side_p) and is_object(side_q):
            _sync()
            yield ClosestPair(
                distance, side_p.point, side_q.point,
                side_p.oid, side_q.oid,
            )
            reported += 1
            if k_bound is not None and reported >= k_bound:
                return
            continue
        expand(side_p, side_q)
    _sync()


def k_distance_join(
    tree_p: RTree,
    tree_q: RTree,
    k: int,
    policy: str = SIMULTANEOUS,
    tie_policy: str = DEPTH_FIRST,
    metric: MinkowskiMetric = EUCLIDEAN,
    *,
    buffer_pages: Optional[int] = None,
    reset_stats: bool = True,
) -> CPQResult:
    """Materialise the K closest pairs via the incremental join.

    Mirrors :func:`repro.core.api.k_closest_pairs` so the two families
    are directly comparable (Figure 10).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if buffer_pages is not None:
        tree_p.file.set_buffer_capacity(buffer_pages // 2)
        tree_q.file.set_buffer_capacity(buffer_pages // 2)
    if reset_stats:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
    stats = QueryStats()
    pairs = list(
        incremental_distance_join(
            tree_p,
            tree_q,
            policy=policy,
            tie_policy=tie_policy,
            metric=metric,
            k_bound=k,
            stats=stats,
        )
    )
    return CPQResult(pairs=pairs, stats=stats, algorithm=policy.upper(), k=k)


def incremental_join_request(
    tree_p: RTree,
    tree_q: RTree,
    request,
    *,
    continuation: bool = False,
) -> CPQResult:
    """Run the incremental distance join for a :class:`CPQRequest`.

    The ``CPQRequest``-native entry point registered as algorithm
    ``"incremental"`` in :data:`repro.core.api.ALGORITHM_REGISTRY`.
    Honours the request's ``k``, ``metric``, ``buffer_pages`` and
    ``reset_stats`` fields; the traversal policy is always SML (the
    paper's best, Section 5.2) and the result's ``algorithm`` label is
    ``"INC-SML"``.

    With ``continuation=True`` the K-bounding optimisation is disabled
    and the live generator is attached as ``result.incremental``:
    consuming it yields the (K+1)-th, (K+2)-th, ... pairs lazily,
    accumulating I/O into the same ``result.stats`` object.
    """
    if request.buffer_pages is not None:
        tree_p.file.set_buffer_capacity(request.buffer_pages // 2)
        tree_q.file.set_buffer_capacity(request.buffer_pages // 2)
    if request.reset_stats:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
    stats = QueryStats()
    gen = incremental_distance_join(
        tree_p,
        tree_q,
        policy=SIMULTANEOUS,
        metric=request.metric,
        k_bound=None if continuation else request.k,
        stats=stats,
    )
    pairs = list(itertools.islice(gen, request.k))
    return CPQResult(
        pairs=pairs,
        stats=stats,
        algorithm="INC-SML",
        k=request.k,
        incremental=gen if continuation else None,
    )
