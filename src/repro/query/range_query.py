"""Range (window) query: all points inside a query rectangle."""

from __future__ import annotations

from typing import List

from repro.geometry.mbr import MBR
from repro.rtree.entries import LeafEntry
from repro.rtree.tree import RTree


def range_query(tree: RTree, window: MBR) -> List[LeafEntry]:
    """Return every leaf entry whose point lies inside ``window``.

    Standard R-tree descent: a subtree is visited only if its directory
    MBR intersects the window.
    """
    if window.dimension != tree.dimension:
        raise ValueError("window dimension does not match the tree")
    results: List[LeafEntry] = []
    if tree.root_id is None:
        return results
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        if node.is_leaf:
            results.extend(
                e for e in node.entries if window.contains_point(e.point)
            )
        else:
            stack.extend(
                e.child_id
                for e in node.entries
                if window.intersects(e.mbr)
            )
    return results
