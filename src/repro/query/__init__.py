"""Classic spatial queries over a single R-tree.

These are the substrate queries named in the paper's introduction
(point location, range, nearest neighbour).  Besides being part of any
credible spatial-database library, they cross-validate the R-tree
implementation: the test suite checks each against brute force.
"""

from repro.query.cpql import KEYWORDS as CPQL_KEYWORDS
from repro.query.cpql import ParsedQuery, parse_cpql
from repro.query.epsilon_join import distance_range_join
from repro.query.knn import nearest_neighbor, nearest_neighbors
from repro.query.point_location import point_location
from repro.query.range_query import range_query
from repro.query.rcp import RangeCandidateIndex, rcp_k_closest_pairs

__all__ = [
    "CPQL_KEYWORDS",
    "ParsedQuery",
    "parse_cpql",
    "range_query",
    "point_location",
    "nearest_neighbors",
    "nearest_neighbor",
    "distance_range_join",
    "rcp_k_closest_pairs",
    "RangeCandidateIndex",
]
