"""CPQL: a tiny declarative front end for closest pair queries.

The catalog (:mod:`repro.catalog`) names datasets; CPQL names queries
over them.  One statement form is spoken::

    SELECT CLOSEST PAIRS K 10
    FROM parks, schools
    WHERE RANGE (0.1, 0.1, 0.6, 0.7) ON BOTH
      AND COLORS MOD 4 DISTINCT P (1, 3) Q (0, 2)
    USING heap

Grammar (keywords case-insensitive, ``[]`` optional)::

    query    := SELECT CLOSEST PAIRS [K n] FROM ident [, ident]
                [WHERE pred (AND pred)*] [USING ident]
    pred     := RANGE ( num {, num} ) [ON side]
              | COLORS [MOD n] [DISTINCT] [P ( ints )] [Q ( ints )]
    side     := P | Q | BOTH

``FROM a`` alone is the self-join ``FROM a, a``.  ``RANGE`` takes an
even number of coordinates, low corner then high corner.  ``COLORS``
needs at least one of ``MOD`` / ``DISTINCT``; ``COLORS DISTINCT``
alone is the classical bichromatic query (modulus 2).  ``USING``
forces an algorithm (any of :data:`repro.core.api.ALGORITHMS`);
omitted, the service planner chooses (``auto``).

:func:`parse` produces a frozen :class:`ParsedQuery`;
:meth:`ParsedQuery.to_service_request` projects it onto the service's
:class:`~repro.service.CPQRequest` (the pair name is the two dataset
names joined by ``","``) and :meth:`ParsedQuery.to_core_request` onto
the core :class:`repro.core.api.CPQRequest`.  Compilation adds
nothing the programmatic API lacks: a compiled query returns
byte-identical pairs and tie order to the equivalent hand-built
request -- the parity the CPQL test suite asserts in-process, through
the CLI and over a sharded socket.

Syntax errors raise :class:`~repro.errors.CPQLError` with the 0-based
character position of the offending token (``exc.caret()`` renders
the standard source/caret display).  Semantic errors -- capability
mismatches, bad residues -- surface from the constraint specs and the
algorithm registry exactly as they do for programmatic requests.

``tools/check_docs.py`` verifies the keyword table in
``docs/CATALOG.md`` against :data:`KEYWORDS`, so the documented
grammar cannot drift from the tokenizer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.constraints import ColorSpec, RangeSpec
from repro.errors import CPQLError

#: Every keyword the tokenizer recognises, alphabetically.  The
#: documented grammar (docs/CATALOG.md) is checked against this tuple.
KEYWORDS = (
    "AND",
    "BOTH",
    "CLOSEST",
    "COLORS",
    "DISTINCT",
    "FROM",
    "K",
    "MOD",
    "ON",
    "P",
    "PAIRS",
    "Q",
    "RANGE",
    "SELECT",
    "USING",
    "WHERE",
)

_KEYWORD_SET = frozenset(KEYWORDS)

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<punct>[(),])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexed token: kind, raw text, 0-based source position."""

    kind: str  # "number" | "ident" | "punct" | "end"
    text: str
    position: int

    @property
    def keyword(self) -> Optional[str]:
        """The upper-cased keyword this token spells, if any."""
        if self.kind == "ident" and self.text.upper() in _KEYWORD_SET:
            return self.text.upper()
        return None


def tokenize(source: str) -> List[Token]:
    """Lex ``source``; raises :class:`CPQLError` on a stray character."""
    tokens: List[Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN.match(source, position)
        if match is None:
            raise CPQLError(
                f"unexpected character {source[position]!r}",
                source=source, position=position,
            )
        if match.lastgroup != "ws":
            tokens.append(Token(
                kind=match.lastgroup, text=match.group(),
                position=position,
            ))
        position = match.end()
    tokens.append(Token(kind="end", text="", position=len(source)))
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """A validated CPQL statement, ready to compile to a request.

    ``algorithm`` is ``"auto"`` when no ``USING`` clause was given --
    the service planner then picks, exactly as for programmatic
    ``algorithm="auto"`` requests.
    """

    dataset_p: str
    dataset_q: str
    k: int = 1
    range_spec: Optional[RangeSpec] = None
    colors: Optional[ColorSpec] = None
    algorithm: str = "auto"

    @property
    def pair_name(self) -> str:
        """The service pair name this query addresses."""
        return f"{self.dataset_p},{self.dataset_q}"

    def to_service_request(self, pair: Optional[str] = None, **kwargs):
        """This query as a :class:`repro.service.CPQRequest`.

        ``pair`` overrides the derived :attr:`pair_name`; ``kwargs``
        pass through to the service request (``deadline_ms``,
        ``use_cache`` ...).
        """
        # Imported here: repro.service pulls in the query engine, and
        # the parser must stay importable from repro.query without it.
        from repro.service import CPQRequest

        return CPQRequest(
            pair=pair if pair is not None else self.pair_name,
            k=self.k,
            algorithm=self.algorithm,
            range=self.range_spec,
            colors=self.colors,
            **kwargs,
        )

    def to_core_request(self, algorithm: Optional[str] = None, **kwargs):
        """This query as a core :class:`repro.core.api.CPQRequest`.

        The core request needs a concrete algorithm; pass one to
        resolve an ``auto`` query (the planner's pick, or a test's
        fixed choice).
        """
        from repro.core.api import CPQRequest

        if algorithm is None:
            algorithm = self.algorithm
        if algorithm == "auto":
            raise ValueError(
                "an 'auto' query needs a planner; pass algorithm= or "
                "compile via to_service_request()"
            )
        return CPQRequest(
            k=self.k,
            algorithm=algorithm,
            range=self.range_spec,
            colors=self.colors,
            **kwargs,
        )


class _Parser:
    """Recursive descent over the token list."""

    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def error(self, message: str, token: Optional[Token] = None) -> CPQLError:
        token = token if token is not None else self.current
        found = f", found {token.text!r}" if token.kind != "end" else (
            ", found end of query"
        )
        return CPQLError(
            f"{message}{found}", source=self.source,
            position=token.position,
        )

    def at_keyword(self, *keywords: str) -> bool:
        return self.current.keyword in keywords

    def take_keyword(self, keyword: str) -> Token:
        if self.current.keyword != keyword:
            raise self.error(f"expected {keyword}")
        token = self.current
        self.index += 1
        return token

    def accept_keyword(self, keyword: str) -> Optional[Token]:
        if self.current.keyword == keyword:
            return self.take_keyword(keyword)
        return None

    def take_punct(self, char: str) -> Token:
        if not (self.current.kind == "punct"
                and self.current.text == char):
            raise self.error(f"expected {char!r}")
        token = self.current
        self.index += 1
        return token

    def take_ident(self, what: str) -> Token:
        # Keywords are reserved: "FROM SELECT, x" must not silently
        # read SELECT as a dataset name.
        if self.current.kind != "ident" or self.current.keyword:
            raise self.error(f"expected {what}")
        token = self.current
        self.index += 1
        return token

    def take_int(self, what: str) -> int:
        if self.current.kind != "number":
            raise self.error(f"expected {what}")
        token = self.current
        try:
            value = int(token.text)
        except ValueError:
            raise self.error(f"expected an integer {what}",
                             token) from None
        self.index += 1
        return value

    def take_number(self, what: str = "a number") -> float:
        if self.current.kind != "number":
            raise self.error(f"expected {what}")
        token = self.current
        self.index += 1
        return float(token.text)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self.take_keyword("SELECT")
        self.take_keyword("CLOSEST")
        self.take_keyword("PAIRS")
        k = 1
        if self.accept_keyword("K"):
            k = self.take_int("the result cardinality K")
            if k < 1:
                raise self.error("K must be >= 1",
                                 self.tokens[self.index - 1])
        self.take_keyword("FROM")
        dataset_p = self.take_ident("a dataset name").text
        dataset_q = dataset_p  # FROM a == self-join FROM a, a
        if self.current.kind == "punct" and self.current.text == ",":
            self.take_punct(",")
            dataset_q = self.take_ident("a dataset name").text
        range_spec = None
        colors = None
        if self.accept_keyword("WHERE"):
            while True:
                if self.at_keyword("RANGE"):
                    if range_spec is not None:
                        raise self.error("duplicate RANGE predicate")
                    range_spec = self.parse_range()
                elif self.at_keyword("COLORS"):
                    if colors is not None:
                        raise self.error("duplicate COLORS predicate")
                    colors = self.parse_colors()
                else:
                    raise self.error("expected RANGE or COLORS")
                if not self.accept_keyword("AND"):
                    break
        algorithm = "auto"
        if self.accept_keyword("USING"):
            algorithm = self.take_ident("an algorithm name").text.lower()
            from repro.core.api import ALGORITHMS

            if algorithm not in ALGORITHMS:
                raise self.error(
                    f"unknown algorithm; expected one of "
                    f"{', '.join(ALGORITHMS)}",
                    self.tokens[self.index - 1],
                )
        if self.current.kind != "end":
            raise self.error("expected end of query")
        try:
            return ParsedQuery(
                dataset_p=dataset_p,
                dataset_q=dataset_q,
                k=k,
                range_spec=range_spec,
                colors=colors,
                algorithm=algorithm,
            )
        except ValueError as exc:
            # Constraint-spec validation (bad residues, bad modulus)
            # re-raised with the query context attached.
            raise CPQLError(str(exc), source=self.source,
                            position=0) from exc

    def parse_range(self) -> RangeSpec:
        keyword = self.take_keyword("RANGE")
        self.take_punct("(")
        values = [self.take_number("a coordinate")]
        while self.current.kind == "punct" and self.current.text == ",":
            self.take_punct(",")
            values.append(self.take_number("a coordinate"))
        self.take_punct(")")
        if len(values) < 2 or len(values) % 2 != 0:
            raise self.error(
                f"RANGE wants an even number of coordinates "
                f"(low corner then high corner), got {len(values)}",
                keyword,
            )
        mode = "both"
        if self.accept_keyword("ON"):
            side = self.current
            for candidate in ("P", "Q", "BOTH"):
                if self.accept_keyword(candidate):
                    mode = candidate.lower()
                    break
            else:
                raise self.error("expected P, Q or BOTH", side)
        half = len(values) // 2
        try:
            return RangeSpec(lo=tuple(values[:half]),
                             hi=tuple(values[half:]), mode=mode)
        except ValueError as exc:
            raise CPQLError(str(exc), source=self.source,
                            position=keyword.position) from exc

    def parse_colors(self) -> ColorSpec:
        keyword = self.take_keyword("COLORS")
        modulus = None
        if self.accept_keyword("MOD"):
            modulus = self.take_int("the color modulus")
        distinct = self.accept_keyword("DISTINCT") is not None
        if modulus is None:
            if not distinct:
                raise self.error(
                    "COLORS needs MOD n and/or DISTINCT", keyword
                )
            modulus = 2  # the classical bichromatic query
        colors_p = colors_q = None
        while self.at_keyword("P", "Q"):
            side = self.current.keyword
            self.index += 1
            residues = self.parse_int_list()
            if side == "P":
                colors_p = residues
            else:
                colors_q = residues
        try:
            return ColorSpec(modulus=modulus, colors_p=colors_p,
                             colors_q=colors_q, distinct=distinct)
        except ValueError as exc:
            raise CPQLError(str(exc), source=self.source,
                            position=keyword.position) from exc

    def parse_int_list(self) -> Tuple[int, ...]:
        self.take_punct("(")
        values = [self.take_int("a color")]
        while self.current.kind == "punct" and self.current.text == ",":
            self.take_punct(",")
            values.append(self.take_int("a color"))
        self.take_punct(")")
        return tuple(values)


def parse(source: str) -> ParsedQuery:
    """Parse one CPQL statement; raises :class:`CPQLError` on bad
    syntax (with the character position of the offence)."""
    if not isinstance(source, str):
        raise CPQLError(
            f"query must be a string, got {type(source).__name__}"
        )
    return _Parser(source).parse()


#: The unambiguous name ``repro.query`` re-exports.
parse_cpql = parse
