"""K-nearest-neighbour query (best-first branch and bound).

Implements the priority-queue formulation of Roussopoulos et al. /
Hjaltason & Samet over the point-to-MBR MINDIST metric.  The queue
mixes node references (keyed by MINDIST to their MBR, read from disk
only when they surface) and points (keyed by true distance); when a
point surfaces it is nearest among everything unseen.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.geometry.metrics import point_mbr_mindist
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.rtree.entries import LeafEntry
from repro.rtree.tree import RTree

_NODE = 0
_POINT = 1


def nearest_neighbors(
    tree: RTree,
    point: Sequence[float],
    k: int = 1,
    metric: MinkowskiMetric = EUCLIDEAN,
) -> List[Tuple[float, LeafEntry]]:
    """Return the ``k`` nearest entries to ``point`` as (distance, entry).

    Results are sorted by ascending distance.  Fewer than ``k`` results
    are returned when the tree holds fewer points.  Nodes are fetched
    lazily: a subtree costs an I/O only if its MINDIST beats the
    current k-th candidate, which is what makes the query sublinear.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    query = tuple(float(v) for v in point)
    if len(query) != tree.dimension:
        raise ValueError("point dimension does not match the tree")
    results: List[Tuple[float, LeafEntry]] = []
    if tree.root_id is None:
        return results

    counter = 0  # tie-breaker so heap never compares payloads
    # Items: (distance, kind, counter, page_id or LeafEntry)
    heap: List[Tuple[float, int, int, object]] = [
        (0.0, _NODE, counter, tree.root_id)
    ]

    while heap:
        distance, kind, __, payload = heapq.heappop(heap)
        if kind == _POINT:
            results.append((distance, payload))
            if len(results) == k:
                break
            continue
        node = tree.read_node(payload)
        if node.is_leaf:
            for entry in node.entries:
                counter += 1
                heap_entry = (
                    metric.distance(query, entry.point),
                    _POINT,
                    counter,
                    entry,
                )
                heapq.heappush(heap, heap_entry)
        else:
            for entry in node.entries:
                counter += 1
                heap_entry = (
                    point_mbr_mindist(query, entry.mbr, metric),
                    _NODE,
                    counter,
                    entry.child_id,
                )
                heapq.heappush(heap, heap_entry)
    return results


def nearest_neighbor(
    tree: RTree,
    point: Sequence[float],
    metric: MinkowskiMetric = EUCLIDEAN,
) -> Optional[Tuple[float, LeafEntry]]:
    """The single nearest entry, or ``None`` for an empty tree."""
    found = nearest_neighbors(tree, point, k=1, metric=metric)
    return found[0] if found else None
