"""RCP: range closest pairs through a memoized candidate structure.

The range closest-pair literature (Xue et al., "New bounds for range
closest-pair problems"; Shan et al.'s RCP structures) precomputes
*candidate pairs* so that repeated range-restricted queries avoid
re-traversing the trees.  This module is the practical, R-tree-backed
version of that idea: the first query for a window runs the CLIPPED
branch-and-bound traversal once with an enlarged ``K' = max(k,
RESERVE)`` and memoizes the resulting candidate list; later queries
are answered from the store when any of these hold:

* **exact** -- the canonicalised window (plus color predicates and
  metric) was seen before with a large enough ``K'``;
* **containment** -- a stored window *contains* the requested one with
  the same clip mode, and either the stored entry is ``complete`` (the
  traversal exhausted the qualifying population below ``K'``, so the
  list *is* the whole answer set) or filtering the stored candidates
  by the sub-window still leaves at least ``k`` pairs.  Both cases are
  sound: every pair qualifying in the sub-window qualifies in the
  superset window, and any qualifying pair *not* stored ranks after
  the stored list in the K-heap's canonical total order, so the first
  ``k`` filtered survivors are exactly the sub-window's answer --
  byte-identical, tie order included.

The store is keyed on the *underlying* trees (snapshot views unwrap to
their tree) through weak references, and every entry is tagged with
the generation pair observed at computation time; a mutation batch
bumps a tree's generation and the next lookup drops the stale store.
Counters land in ``result.stats.extra["rcp"]`` so tests and benchmarks
can assert reuse actually happened.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.core.engine import CPQContext
from repro.core.heap import heap_algorithm
from repro.core.result import ClosestPair, CPQResult

NAME = "RCP"

#: Candidate reserve: the traversal fetches at least this many pairs
#: even for small ``k``, so later queries with modestly larger ``k``
#: (or sub-windows) are served from the store.
RESERVE = 32


def _base_tree(tree):
    """Unwrap a :class:`~repro.storage.snapshot.SnapshotView`."""
    return getattr(tree, "tree", tree)


def _generation(tree) -> int:
    return int(getattr(tree, "generation", 0))


def _pair_qualifies(pair: ClosestPair, range_spec) -> bool:
    if range_spec.constrains_p and not range_spec.contains_point(pair.p):
        return False
    if range_spec.constrains_q and not range_spec.contains_point(pair.q):
        return False
    return True


@dataclass
class CandidateEntry:
    """One memoized window: its candidate pairs in canonical order."""

    range_spec: object
    pairs: Tuple[ClosestPair, ...]
    #: The traversal found fewer than ``kprime`` qualifying pairs, so
    #: ``pairs`` is the *entire* qualifying population of the window --
    #: reusable for any sub-window regardless of the requested ``k``.
    complete: bool
    kprime: int


class RangeCandidateIndex:
    """Per-tree-pair store of range candidate lists.

    Entries are grouped by *family* -- ``(metric order, colors)`` --
    because candidates computed under one color predicate or metric
    never answer another.  Within a family, lookups try the exact
    canonical window first, then scan for a containing window.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._generations: Optional[Tuple[int, int]] = None
        self._families: Dict[tuple, Dict[tuple, CandidateEntry]] = {}
        self.hits = 0
        self.containment_hits = 0
        self.misses = 0
        self.invalidations = 0

    def _validate_generations(self, generations: Tuple[int, int]) -> None:
        if self._generations != generations:
            if self._generations is not None and self._families:
                self.invalidations += 1
            self._families = {}
            self._generations = generations

    def lookup(
        self,
        generations: Tuple[int, int],
        family: tuple,
        range_spec,
        k: int,
    ) -> Optional[Tuple[List[ClosestPair], str]]:
        """Return ``(pairs, source)`` when the store can answer.

        ``pairs`` is the full qualifying prefix for the requested
        window (callers truncate to ``k``); ``source`` is ``"exact"``
        or ``"containment"`` for the stats rollup.
        """
        with self._lock:
            self._validate_generations(generations)
            entries = self._families.get(family)
            if not entries:
                self.misses += 1
                return None
            exact = entries.get(range_spec.canonical())
            if exact is not None and (exact.complete or exact.kprime >= k):
                self.hits += 1
                return list(exact.pairs), "exact"
            for entry in entries.values():
                if not entry.range_spec.contains(range_spec):
                    continue
                filtered = [
                    p for p in entry.pairs
                    if _pair_qualifies(p, range_spec)
                ]
                if entry.complete or len(filtered) >= k:
                    self.containment_hits += 1
                    return filtered, "containment"
            self.misses += 1
            return None

    def store(
        self,
        generations: Tuple[int, int],
        family: tuple,
        entry: CandidateEntry,
    ) -> None:
        with self._lock:
            self._validate_generations(generations)
            self._families.setdefault(family, {})[
                entry.range_spec.canonical()
            ] = entry

    def stored_windows(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._families.values())

    def clear(self) -> None:
        """Drop every candidate list and reset the counters."""
        with self._lock:
            self._generations = None
            self._families = {}
            self.hits = 0
            self.containment_hits = 0
            self.misses = 0
            self.invalidations = 0


#: tree_p -> tree_q -> RangeCandidateIndex, all weakly referenced so a
#: dropped tree releases its candidate lists.
_INDEXES: "WeakKeyDictionary" = WeakKeyDictionary()
_INDEXES_LOCK = threading.Lock()


def index_for(tree_p, tree_q) -> RangeCandidateIndex:
    """The (shared) candidate index of one ordered tree pair."""
    base_p = _base_tree(tree_p)
    base_q = _base_tree(tree_q)
    with _INDEXES_LOCK:
        per_p = _INDEXES.get(base_p)
        if per_p is None:
            per_p = WeakKeyDictionary()
            _INDEXES[base_p] = per_p
        index = per_p.get(base_q)
        if index is None:
            index = RangeCandidateIndex()
            per_p[base_q] = index
        return index


def rcp_k_closest_pairs(ctx: CPQContext, request) -> CPQResult:
    """Answer a range K-CPQ through the memoized candidate structure.

    Falls back to (and memoizes) one CLIPPED traversal with
    ``K' = max(k, RESERVE)`` on a store miss.  Requires a range on the
    request -- without a window there is nothing for the structure to
    key on; use ``heap`` (or ``clipped``) directly instead.
    """
    if request.range is None:
        raise ValueError(
            "algorithm 'rcp' requires a range window; "
            "use 'heap' or 'clipped' for unconstrained queries"
        )
    if ctx.root_p is None or ctx.root_q is None:
        return ctx.result(NAME)
    index = index_for(ctx.tree_p, ctx.tree_q)
    generations = (_generation(ctx.tree_p), _generation(ctx.tree_q))
    family = (
        ctx.metric.p,
        request.colors.canonical() if request.colors is not None else None,
    )
    kprime = max(request.k, RESERVE)
    cached = index.lookup(generations, family, request.range, request.k)
    if cached is not None:
        pairs, source = cached
        complete = None
    else:
        inner = CPQContext(
            ctx.tree_p,
            ctx.tree_q,
            kprime,
            ctx.metric,
            cancel_check=ctx.cancel_check,
            tracer=ctx.tracer,
            roots=(ctx.root_p, ctx.root_q),
            root_areas=(ctx.root_area_p, ctx.root_area_q),
            range_spec=request.range,
            color_spec=request.colors,
        )
        heap_algorithm(
            inner,
            height_strategy=request.height_strategy,
            tie_break=request.tie_break,
            maxmax_pruning=request.maxmax_pruning,
            use_vectorized=request.use_vectorized,
            clip_mindist=True,
        )
        pairs = inner.kheap.sorted_pairs()
        complete = len(pairs) < kprime
        index.store(
            generations,
            family,
            CandidateEntry(
                range_spec=request.range,
                pairs=tuple(pairs),
                complete=complete,
                kprime=kprime,
            ),
        )
        ctx.stats.node_pairs_visited += inner.stats.node_pairs_visited
        ctx.stats.distance_computations += inner.stats.distance_computations
        ctx.stats.queue_inserts += inner.stats.queue_inserts
        ctx.stats.max_queue_size = max(
            ctx.stats.max_queue_size, inner.stats.max_queue_size
        )
        source = "computed"
    for pair in pairs[: request.k]:
        ctx.kheap.offer(pair)
    ctx.stats.extra["rcp"] = {
        "source": source,
        "kprime": kprime,
        "reserve": RESERVE,
        "stored_windows": index.stored_windows(),
        "hits": index.hits,
        "containment_hits": index.containment_hits,
        "misses": index.misses,
        "invalidations": index.invalidations,
        **({"complete": complete} if complete is not None else {}),
    }
    return ctx.result(NAME)
