"""Point-location query: all indexed objects at an exact location."""

from __future__ import annotations

from typing import List, Sequence

from repro.rtree.entries import LeafEntry
from repro.rtree.tree import RTree


def point_location(tree: RTree, point: Sequence[float]) -> List[LeafEntry]:
    """Return every leaf entry located exactly at ``point``."""
    target = tuple(float(v) for v in point)
    if len(target) != tree.dimension:
        raise ValueError("point dimension does not match the tree")
    results: List[LeafEntry] = []
    if tree.root_id is None:
        return results
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        if node.is_leaf:
            results.extend(e for e in node.entries if e.point == target)
        else:
            stack.extend(
                e.child_id
                for e in node.entries
                if e.mbr.contains_point(target)
            )
    return results
