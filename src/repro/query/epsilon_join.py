"""Distance range join: every pair within a distance threshold.

The fixed-radius cousin of the K-CPQ (the paper's introduction lists
join queries among the substrate operations; Koudas/Sevcik-style
distance joins are their metric form).  Unlike a K-CPQ the bound is
known up front, so the traversal is a single synchronized descent that
prunes node pairs with MINMINDIST greater than epsilon -- no bound
tightening is needed, which makes this the simplest consumer of the
Section 2.3 metrics and a useful cross-check for them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.result import ClosestPair
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.geometry.vectorized import (
    pairwise_mindist,
    pairwise_point_distances,
)
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats


def distance_range_join(
    tree_p: RTree,
    tree_q: RTree,
    epsilon: float,
    metric: MinkowskiMetric = EUCLIDEAN,
    stats: QueryStats | None = None,
) -> List[ClosestPair]:
    """All pairs ``(p, q)`` with ``dist(p, q) <= epsilon``.

    Returns pairs sorted by ascending distance.  Pass ``stats`` to
    collect I/O counters (node reads are routed through the trees'
    buffers as usual).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be >= 0")
    if tree_p.dimension != tree_q.dimension:
        raise ValueError("trees index points of different dimensions")
    results: List[ClosestPair] = []
    if tree_p.root_id is None or tree_q.root_id is None:
        return results
    if stats is None:
        stats = QueryStats()

    def visit(node_p: Node, node_q: Node) -> None:
        stats.node_pairs_visited += 1
        if node_p.is_leaf and node_q.is_leaf:
            distances = pairwise_point_distances(
                node_p.points_array(), node_q.points_array(), metric
            )
            stats.distance_computations += distances.size
            rows, cols = np.nonzero(distances <= epsilon)
            for i, j in zip(rows, cols):
                entry_p = node_p.entries[int(i)]
                entry_q = node_q.entries[int(j)]
                results.append(
                    ClosestPair(
                        float(distances[i, j]),
                        entry_p.point,
                        entry_q.point,
                        entry_p.oid,
                        entry_q.oid,
                    )
                )
            return
        # Descend the non-leaf side(s); both when both are internal.
        expand_p = not node_p.is_leaf
        expand_q = not node_q.is_leaf
        if expand_p and expand_q:
            lo_p, hi_p = node_p.lo_array(), node_p.hi_array()
            lo_q, hi_q = node_q.lo_array(), node_q.hi_array()
            gaps = pairwise_mindist(lo_p, hi_p, lo_q, hi_q, metric)
            rows, cols = np.nonzero(gaps <= epsilon)
            for i, j in zip(rows, cols):
                child_p = tree_p.read_node(
                    node_p.entries[int(i)].child_id
                )
                child_q = tree_q.read_node(
                    node_q.entries[int(j)].child_id
                )
                visit(child_p, child_q)
            return
        fixed, fixed_tree = (
            (node_q, tree_q) if expand_p else (node_p, tree_p)
        )
        moving, moving_tree = (
            (node_p, tree_p) if expand_p else (node_q, tree_q)
        )
        fixed_mbr = fixed.mbr()
        lo_f = np.array([fixed_mbr.lo])
        hi_f = np.array([fixed_mbr.hi])
        gaps = pairwise_mindist(
            moving.lo_array(), moving.hi_array(), lo_f, hi_f, metric
        )[:, 0]
        for i in np.nonzero(gaps <= epsilon)[0]:
            child = moving_tree.read_node(
                moving.entries[int(i)].child_id
            )
            if expand_p:
                visit(child, fixed)
            else:
                visit(fixed, child)

    root_p = tree_p.read_node(tree_p.root_id)
    root_q = tree_q.read_node(tree_q.root_id)
    visit(root_p, root_q)
    stats.merge_io(tree_p.stats, tree_q.stats)
    results.sort()
    return results
