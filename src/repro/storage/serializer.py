"""Byte-level node (de)serialisation with page checksums.

Pages hold a small header followed by fixed-size entry slots:

* header: ``level`` (int32; 0 for leaves), ``count`` (int32),
  ``version`` (uint16, see
  :data:`~repro.storage.page.PAGE_FORMAT_VERSION`), a reserved uint16,
  and a CRC32 checksum (uint32) -- 16 bytes total.
* leaf entry: ``dimension`` float64 coordinates + int64 object id.
* internal entry: ``2 * dimension`` float64 MBR bounds (lows then
  highs) + int64 child page id.

Entries are padded to the layout's fixed slot size so capacity
arithmetic (and the paper's M = 21 for 1 KiB pages) is exact.  The
serializer is deliberately independent of the R-tree classes: it deals
in plain tuples, and :mod:`repro.rtree.node` adapts them.

The checksum covers the whole page with the CRC field itself zeroed.
Every page this serializer writes is version 1 with the
:data:`~repro.storage.page.PAGE_MAGIC` stamp in the reserved word; a
version-1 page whose checksum does not match raises
:class:`repro.errors.PageCorruptionError` -- corruption is loud, never
a silently wrong node.  Version-0 pages (written before checksumming;
header tail is all zeros) carry no checksum and are only accepted when
the serializer was opened with ``allow_legacy=True``: by default a
zeroed version word -- which is exactly what a torn header write or a
version-field bit-flip produces -- is treated as corruption rather
than silently skipping validation, and even in legacy mode a version-0
header whose magic word is non-zero is rejected as a damaged v1 page.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import PageCorruptionError
from repro.storage.page import (
    HEADER_SIZE,
    PAGE_FORMAT_VERSION,
    PAGE_MAGIC,
    PageLayout,
)

#: (coords, object_id)
LeafEntryTuple = Tuple[Tuple[float, ...], int]
#: (lo, hi, child_page_id)
InternalEntryTuple = Tuple[Tuple[float, ...], Tuple[float, ...], int]

#: level, count, version, reserved, crc32 -- 16 bytes.
_HEADER = struct.Struct("<iiHHI")
assert _HEADER.size == HEADER_SIZE

#: Byte span of the CRC32 field inside the header.
_CRC_OFFSET = 12
_CRC_END = 16


def page_checksum(page: bytes) -> int:
    """CRC32 of a page image with the checksum field zeroed."""
    return zlib.crc32(
        page[:_CRC_OFFSET] + b"\x00\x00\x00\x00" + page[_CRC_END:]
    ) & 0xFFFFFFFF


class PageOverflowError(ValueError):
    """Raised when more entries are serialised than the page can hold."""


class NodeSerializer:
    """Serialises nodes of a fixed dimension into fixed-size pages.

    ``allow_legacy`` opts in to reading version-0 (pre-checksum) pages;
    leave it off -- the default -- unless the page file is known to
    predate checksumming, because a damaged version-1 header can look
    exactly like a legacy one.
    """

    def __init__(self, layout: PageLayout, allow_legacy: bool = False):
        self.layout = layout
        self.allow_legacy = allow_legacy
        k = layout.dimension
        self._leaf_entry = struct.Struct(f"<{k}dq")
        self._internal_entry = struct.Struct(f"<{2 * k}dq")
        for fmt in (self._leaf_entry, self._internal_entry):
            if fmt.size > layout.entry_size:
                raise ValueError(
                    f"entry struct of {fmt.size} bytes exceeds the "
                    f"{layout.entry_size}-byte slot"
                )
        # Structured views of one entry slot (padding included in
        # itemsize) so whole pages decode with a single np.frombuffer.
        self._leaf_dtype = np.dtype(
            {
                "names": ["coords", "oid"],
                "formats": [("<f8", (k,)), "<i8"],
                "itemsize": layout.entry_size,
            }
        )
        self._internal_dtype = np.dtype(
            {
                "names": ["lo", "hi", "child"],
                "formats": [("<f8", (k,)), ("<f8", (k,)), "<i8"],
                "itemsize": layout.entry_size,
            }
        )

    # -- serialisation -----------------------------------------------------

    def serialize_leaf(self, entries: Sequence[LeafEntryTuple]) -> bytes:
        """Pack a leaf node (level 0) into one page."""
        return self._serialize(0, entries, self._pack_leaf_entry)

    def serialize_internal(
        self, level: int, entries: Sequence[InternalEntryTuple]
    ) -> bytes:
        """Pack an internal node (level >= 1) into one page."""
        if level < 1:
            raise ValueError("internal nodes have level >= 1")
        return self._serialize(level, entries, self._pack_internal_entry)

    def _pack_leaf_entry(self, entry: LeafEntryTuple) -> bytes:
        coords, oid = entry
        return self._leaf_entry.pack(*coords, oid)

    def _pack_internal_entry(self, entry: InternalEntryTuple) -> bytes:
        lo, hi, child = entry
        return self._internal_entry.pack(*lo, *hi, child)

    def _serialize(self, level, entries, pack) -> bytes:
        if len(entries) > self.layout.max_entries:
            raise PageOverflowError(
                f"{len(entries)} entries exceed capacity "
                f"{self.layout.max_entries}"
            )
        slot = self.layout.entry_size
        parts = [
            _HEADER.pack(
                level, len(entries), PAGE_FORMAT_VERSION, PAGE_MAGIC, 0
            )
        ]
        for entry in entries:
            raw = pack(entry)
            parts.append(raw)
            parts.append(b"\x00" * (slot - len(raw)))
        payload = b"".join(parts)
        page = payload + b"\x00" * (self.layout.page_size - len(payload))
        crc = struct.pack("<I", page_checksum(page))
        return page[:_CRC_OFFSET] + crc + page[_CRC_END:]

    # -- deserialisation -----------------------------------------------------

    def _read_header(self, page: bytes) -> Tuple[int, int]:
        if len(page) != self.layout.page_size:
            raise PageCorruptionError(
                f"page of {len(page)} bytes; expected {self.layout.page_size}"
            )
        level, count, version, magic, crc = _HEADER.unpack_from(page, 0)
        if version == PAGE_FORMAT_VERSION:
            actual = page_checksum(page)
            if actual != crc:
                raise PageCorruptionError(
                    f"corrupt page: CRC32 mismatch (stored {crc:#010x}, "
                    f"computed {actual:#010x})"
                )
        elif version == 0:
            # Version 0 is the pre-checksum layout (header tail all
            # zero).  A zeroed version word is also what a torn header
            # write or a version-field bit-flip produces, so acceptance
            # is opt-in -- and a v1 page unmasked by its magic stamp is
            # rejected even then.
            if magic != 0:
                raise PageCorruptionError(
                    f"corrupt page: version 0 but magic word "
                    f"{magic:#06x} is set (damaged version-1 header)"
                )
            if not self.allow_legacy:
                raise PageCorruptionError(
                    "corrupt page: version 0 (legacy unchecksummed "
                    "layout) not accepted; open the serializer with "
                    "allow_legacy=True to read pre-checksum page files"
                )
        else:
            # Anything else is damage or a future format.
            raise PageCorruptionError(
                f"corrupt page: unknown format version {version}"
            )
        if level < 0:
            raise PageCorruptionError(
                f"corrupt page: negative level {level}"
            )
        if not 0 <= count <= self.layout.max_entries:
            raise PageCorruptionError(
                f"corrupt page: entry count {count} outside "
                f"[0, {self.layout.max_entries}]"
            )
        return level, count

    def deserialize(self, page: bytes):
        """Unpack one page.

        Returns ``(level, entries)`` where entries are leaf tuples when
        ``level == 0`` and internal tuples otherwise.
        """
        level, count = self._read_header(page)
        slot = self.layout.entry_size
        k = self.layout.dimension
        entries: List = []
        offset = HEADER_SIZE
        if level == 0:
            for _ in range(count):
                values = self._leaf_entry.unpack_from(page, offset)
                entries.append((tuple(values[:k]), values[k]))
                offset += slot
        else:
            for _ in range(count):
                values = self._internal_entry.unpack_from(page, offset)
                entries.append(
                    (tuple(values[:k]), tuple(values[k:2 * k]), values[2 * k])
                )
                offset += slot
        return level, entries

    def deserialize_arrays(self, page: bytes):
        """Unpack one page together with its entry-MBR arrays.

        Returns ``(level, entries, lo, hi)`` where ``entries`` matches
        :meth:`deserialize` and ``lo`` / ``hi`` are ``(count, k)``
        float64 arrays of the per-entry MBR bounds, decoded in bulk via
        a structured dtype.  For leaves both names refer to the *same*
        coordinate array (points are degenerate rectangles), matching
        what ``Node._build_arrays`` would lazily produce.  Empty pages
        return ``None`` arrays.
        """
        level, count = self._read_header(page)
        if count == 0:
            return level, [], None, None
        if level == 0:
            records = np.frombuffer(
                page, dtype=self._leaf_dtype, count=count, offset=HEADER_SIZE
            )
            pts = np.array(records["coords"], dtype=np.float64)
            entries: List = [
                (tuple(coords), oid)
                for coords, oid in zip(pts.tolist(), records["oid"].tolist())
            ]
            return level, entries, pts, pts
        records = np.frombuffer(
            page, dtype=self._internal_dtype, count=count, offset=HEADER_SIZE
        )
        lo = np.array(records["lo"], dtype=np.float64)
        hi = np.array(records["hi"], dtype=np.float64)
        entries = [
            (tuple(low), tuple(high), child)
            for low, high, child in zip(
                lo.tolist(), hi.tolist(), records["child"].tolist()
            )
        ]
        return level, entries, lo, hi
