"""A paged file: store + buffer + statistics, as one object.

Each R-tree owns one :class:`PagedFile`.  Query algorithms fetch node
pages through :meth:`read_page`, which routes through the LRU buffer
and updates :class:`~repro.storage.stats.IOStats`; construction writes
through :meth:`write_page`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.storage.buffer import LRUBuffer, RetryPolicy
from repro.storage.stats import IOStats
from repro.storage.store import MemoryPageStore, PageStore


class PagedFile:
    """Buffered, instrumented access to a :class:`PageStore`.

    ``read_latency`` (seconds) is slept on every buffer miss, modelling
    the device seek the paper's disk-access metric stands for.  The
    sleep happens outside the buffer lock and releases the GIL, so
    concurrent queries (see :mod:`repro.service`) overlap their
    simulated I/O waits exactly as threads overlap real disk waits.

    ``retry_policy`` overrides the buffer's transient-fault backoff
    schedule (see :class:`repro.storage.buffer.RetryPolicy`); the
    module default is used when omitted.
    """

    def __init__(
        self,
        store: Optional[PageStore] = None,
        buffer_capacity: int = 0,
        page_size: int = 1024,
        buffer_policy: str = "lru",
        read_latency: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.store: PageStore = (
            store if store is not None else MemoryPageStore(page_size)
        )
        self.read_latency = read_latency
        self.stats = IOStats()
        if buffer_policy == "lru":
            self.buffer = LRUBuffer(buffer_capacity, self.stats)
        else:
            # Imported lazily: policies.py subclasses LRUBuffer.
            from repro.storage.policies import make_buffer

            self.buffer = make_buffer(
                buffer_policy, buffer_capacity, self.stats
            )
        if retry_policy is not None:
            self.buffer.retry_policy = retry_policy

    @property
    def page_size(self) -> int:
        return self.store.page_size

    def allocate(self) -> int:
        return self.store.allocate()

    def read_page(self, page_id: int) -> bytes:
        """Fetch a page, counting a disk access on buffer miss."""
        return self.buffer.read(page_id, self._load)

    def _load(self, page_id: int) -> bytes:
        if self.read_latency > 0.0:
            time.sleep(self.read_latency)
        return self.store.read(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write a page through the buffer, counting one disk write."""
        self.store.write(page_id, data)
        self.buffer.put(page_id, data)
        self.stats.disk_writes += 1

    def free_page(self, page_id: int) -> None:
        self.store.free(page_id)
        self.buffer.invalidate(page_id)

    def set_buffer_capacity(self, capacity: int) -> None:
        """Reconfigure the LRU buffer (used by the buffer-size sweeps)."""
        self.buffer.resize(capacity)

    def reset_for_query(self, clear_buffer: bool = True) -> None:
        """Zero the counters (and optionally cold-start the buffer)."""
        self.stats.reset()
        if clear_buffer:
            self.buffer.clear()
