"""I/O accounting.

Every experiment in the paper reports *disk accesses*: node reads that
miss the LRU buffer.  :class:`IOStats` is the single mutable counter
object threaded through a tree's storage stack; experiments snapshot
and reset it between queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for one paged file / R-tree."""

    #: Node reads served from the buffer.
    buffer_hits: int = 0
    #: Node reads that went to disk (the paper's "disk accesses").
    disk_reads: int = 0
    #: Page writes (tree construction only; queries never write).
    disk_writes: int = 0
    #: Transient read faults absorbed by the buffer's retry loop
    #: (each retry attempt counts one; see
    #: :class:`repro.storage.buffer.RetryPolicy`).
    read_retries: int = 0
    #: Reads that exhausted their retries and raised.
    read_failures: int = 0
    #: Checksum/corruption detections observed while decoding pages
    #: (counted whether or not a buffer-drop-and-reread healed them).
    corrupt_reads: int = 0

    @property
    def reads(self) -> int:
        """Total logical node reads (hits + misses)."""
        return self.buffer_hits + self.disk_reads

    @property
    def disk_accesses(self) -> int:
        """The paper's cost metric: reads not absorbed by the buffer."""
        return self.disk_reads

    def reset(self) -> None:
        """Zero all counters (typically done right before a query)."""
        self.buffer_hits = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self.read_retries = 0
        self.read_failures = 0
        self.corrupt_reads = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counter values."""
        return IOStats(
            self.buffer_hits,
            self.disk_reads,
            self.disk_writes,
            self.read_retries,
            self.read_failures,
            self.corrupt_reads,
        )

    def add(self, other: "IOStats") -> None:
        """Accumulate another counter set into this one."""
        self.buffer_hits += other.buffer_hits
        self.disk_reads += other.disk_reads
        self.disk_writes += other.disk_writes
        self.read_retries += other.read_retries
        self.read_failures += other.read_failures
        self.corrupt_reads += other.corrupt_reads


@dataclass
class QueryStats:
    """Aggregate statistics for one CPQ execution across both trees.

    ``disk_accesses`` is the headline number plotted by every figure in
    the paper; the remaining fields support the algorithmic analyses
    (Section 3.9 discusses priority-queue sizes, for instance).
    """

    disk_accesses: int = 0
    buffer_hits: int = 0
    #: Point-to-point distance computations performed.
    distance_computations: int = 0
    #: Node pairs processed by the algorithm.
    node_pairs_visited: int = 0
    #: Largest size reached by the algorithm's main-memory structure
    #: (recursion-ordering heap, or the incremental priority queue).
    max_queue_size: int = 0
    #: Candidate pairs inserted into the algorithm's queue/heap.
    queue_inserts: int = 0
    extra: dict = field(default_factory=dict)

    def merge_io(self, *stats: IOStats) -> None:
        """Add per-tree I/O counters into the aggregate."""
        for s in stats:
            self.disk_accesses += s.disk_reads
            self.buffer_hits += s.buffer_hits
