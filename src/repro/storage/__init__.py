"""Simulated disk storage: pages, page stores and the LRU buffer pool.

The paper measures algorithm cost in *disk accesses*: every R-tree node
fetch that is not satisfied by an LRU buffer counts as one access.  This
subpackage provides that substrate:

* :mod:`~repro.storage.page` -- page-size arithmetic and node capacity
  derivation (1 KiB pages give the paper's M = 21).
* :mod:`~repro.storage.serializer` -- real byte-level (de)serialisation
  of R-tree nodes into fixed-size pages.
* :mod:`~repro.storage.store` -- page stores: an in-memory store for
  experiments and a file-backed store proving the layout really fits.
* :mod:`~repro.storage.buffer` -- the LRU buffer pool with hit/miss
  accounting (Section 4.3.3 dedicates B/2 pages to each tree) and
  bounded retry of transient faults.
* :mod:`~repro.storage.stats` -- I/O counters reported by every
  experiment.
* :mod:`~repro.storage.faults` -- deterministic fault injection
  (transient errors, latency spikes, bit-flips, torn writes) for the
  resilience stack; see ``docs/RESILIENCE.md``.
* :mod:`~repro.storage.wal` -- write-ahead log with CRC-framed records
  and crash-recovery replay for live mutation; see ``docs/STORAGE.md``.
* :mod:`~repro.storage.snapshot` -- generation snapshots: pinned
  consistent reads while copy-on-write batches commit.
"""

from repro.storage.buffer import (
    DEFAULT_RETRY_POLICY,
    LRUBuffer,
    RetryPolicy,
)
from repro.storage.faults import (
    SCHEDULES,
    FaultPlan,
    FaultStats,
    FaultyPageStore,
    tear_file_tail,
    wrap_tree_store,
    unwrap_tree_store,
)
from repro.storage.page import PAGE_FORMAT_VERSION, PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer, page_checksum
from repro.storage.snapshot import Snapshot, SnapshotManager, SnapshotView
from repro.storage.stats import IOStats
from repro.storage.store import FilePageStore, MemoryPageStore, PageStore
from repro.storage.wal import (
    WAL_MAGIC,
    RecoveryResult,
    WALCorruptionError,
    WALStats,
    WriteAheadLog,
    recover_tree,
)

__all__ = [
    "PageLayout",
    "PAGE_FORMAT_VERSION",
    "NodeSerializer",
    "page_checksum",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
    "FaultyPageStore",
    "FaultPlan",
    "FaultStats",
    "SCHEDULES",
    "tear_file_tail",
    "wrap_tree_store",
    "unwrap_tree_store",
    "LRUBuffer",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "PagedFile",
    "IOStats",
    "WriteAheadLog",
    "WAL_MAGIC",
    "WALCorruptionError",
    "WALStats",
    "RecoveryResult",
    "recover_tree",
    "Snapshot",
    "SnapshotManager",
    "SnapshotView",
]
