"""Simulated disk storage: pages, page stores and the LRU buffer pool.

The paper measures algorithm cost in *disk accesses*: every R-tree node
fetch that is not satisfied by an LRU buffer counts as one access.  This
subpackage provides that substrate:

* :mod:`~repro.storage.page` -- page-size arithmetic and node capacity
  derivation (1 KiB pages give the paper's M = 21).
* :mod:`~repro.storage.serializer` -- real byte-level (de)serialisation
  of R-tree nodes into fixed-size pages.
* :mod:`~repro.storage.store` -- page stores: an in-memory store for
  experiments and a file-backed store proving the layout really fits.
* :mod:`~repro.storage.buffer` -- the LRU buffer pool with hit/miss
  accounting (Section 4.3.3 dedicates B/2 pages to each tree).
* :mod:`~repro.storage.stats` -- I/O counters reported by every
  experiment.
"""

from repro.storage.buffer import LRUBuffer
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer
from repro.storage.stats import IOStats
from repro.storage.store import FilePageStore, MemoryPageStore, PageStore

__all__ = [
    "PageLayout",
    "NodeSerializer",
    "PageStore",
    "MemoryPageStore",
    "FilePageStore",
    "LRUBuffer",
    "PagedFile",
    "IOStats",
]
