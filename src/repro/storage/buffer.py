"""LRU buffer pool with hit/miss accounting and transient-fault retry.

Section 4.3.3 of the paper studies algorithm sensitivity to an LRU
buffer of B pages, "dedicated to each R-tree as two equal portions of
B/2 pages".  Each tree therefore owns one :class:`LRUBuffer`; a read
that finds its page in the buffer is free, anything else counts as one
disk access.  Capacity 0 disables caching entirely (the paper's "zero
buffer" configuration).

The buffer is thread-safe: an internal :class:`threading.RLock` guards
every operation, so concurrent queries (see :mod:`repro.service`) can
share one pool.  The loader callback of :meth:`read` runs *outside*
the lock -- a slow (or latency-simulated) disk read must not serialise
every other thread's buffer traffic.  Replacement-policy subclasses
customise behaviour through three hooks (:meth:`_touch`,
:meth:`_register`, :meth:`_evict_one`) rather than overriding the
locked entry points, which keeps them thread-safe for free and makes
:meth:`resize` evict with the same policy as normal admission.

A miss whose loader raises :class:`repro.errors.TransientIOError` is
retried with bounded exponential backoff (:class:`RetryPolicy`);
retries count in :attr:`IOStats.read_retries`, exhausted reads in
:attr:`IOStats.read_failures`.  A failed load leaves the buffer
untouched -- no phantom frame is admitted and no hit/miss counter
moves until a load actually succeeds.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import TransientIOError
from repro.storage.stats import IOStats


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for transient read faults.

    ``max_attempts`` counts the initial try: 4 means one read plus up
    to three retries.  ``sleep`` is injectable so tests (and the fault
    harness) run without wall-clock delays.
    """

    max_attempts: int = 4
    backoff_s: float = 0.001
    multiplier: float = 2.0
    max_backoff_s: float = 0.050
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")


#: Policy applied by buffers constructed without an explicit one.
DEFAULT_RETRY_POLICY = RetryPolicy()


class LRUBuffer:
    """Fixed-capacity page cache with least-recently-used eviction."""

    def __init__(self, capacity: int, stats: Optional[IOStats] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        #: Backoff schedule applied when a loader raises
        #: :class:`~repro.errors.TransientIOError`.
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        #: Optional read observer, called as ``on_read(page_id, hit)``
        #: after every :meth:`read`, outside the buffer lock.  Installed
        #: by :meth:`repro.obs.Tracer.watch_buffer` to attribute page
        #: I/O to the reading thread's trace span; ``None`` (the
        #: default) costs one predicate test per read.
        self.on_read: Optional[Callable[[int, bool], None]] = None
        #: Lock acquisitions on the read path that found the lock held
        #: by another thread and had to wait.  A cheap contention gauge
        #: for the parallel executor and service dashboards; updated
        #: racily (observability, not accounting).
        self.contentions = 0
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()
        self._lock = threading.RLock()

    def _acquire_counted(self) -> None:
        if self._lock.acquire(blocking=False):
            return
        self.contentions += 1
        self._lock.acquire()

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        """Return the page, loading it via ``loader`` on a miss.

        Two threads missing on the same page concurrently both call the
        loader and both count a disk access -- the same double fault a
        real unsynchronised disk cache would take.

        Transient loader faults are retried per :attr:`retry_policy`.
        A load that ultimately fails propagates the error with the
        buffer exactly as it was: nothing admitted, no hit or miss
        counted (only ``read_retries`` / ``read_failures`` moved), so
        a later retry of the same read starts clean.
        """
        self._acquire_counted()
        try:
            data = self._pages.get(page_id)
            if data is not None:
                self._touch(page_id)
                self.stats.buffer_hits += 1
                hit = True
        finally:
            self._lock.release()
        if data is None:
            data = self._load_retrying(page_id, loader)
            self._acquire_counted()
            try:
                self.stats.disk_reads += 1
                self._admit(page_id, data)
            finally:
                self._lock.release()
            hit = False
        if self.on_read is not None:
            self.on_read(page_id, hit)
        return data

    def _load_retrying(
        self, page_id: int, loader: Callable[[int], bytes]
    ) -> bytes:
        """Run one loader call through the retry policy (no lock held).

        Only :class:`~repro.errors.TransientIOError` is retried; other
        errors (corruption, missing page) propagate immediately --
        retrying cannot fix them.
        """
        policy = self.retry_policy
        delay = policy.backoff_s
        attempt = 1
        while True:
            try:
                return loader(page_id)
            except TransientIOError:
                if attempt >= policy.max_attempts:
                    with self._lock:
                        self.stats.read_failures += 1
                    raise
                with self._lock:
                    self.stats.read_retries += 1
                if delay > 0:
                    policy.sleep(delay)
                delay = min(delay * policy.multiplier, policy.max_backoff_s)
                attempt += 1

    def put(self, page_id: int, data: bytes) -> None:
        """Install a freshly written page image (write-through cache)."""
        with self._lock:
            if page_id in self._pages:
                self._pages.move_to_end(page_id)
                self._pages[page_id] = data
            else:
                self._admit(page_id, data)

    def invalidate(self, page_id: int) -> None:
        """Drop a page (called when its page is freed)."""
        with self._lock:
            self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the buffer (used between experiment runs)."""
        with self._lock:
            self._pages.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting by the replacement policy if
        shrinking (strict LRU order for this base class)."""
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        with self._lock:
            self.capacity = capacity
            while len(self._pages) > capacity:
                self._evict_one()

    # -- policy hooks (all called with the lock held) ---------------------

    def _touch(self, page_id: int) -> None:
        """Recency update on a buffer hit."""
        self._pages.move_to_end(page_id)

    def _register(self, page_id: int) -> None:
        """Bookkeeping for a newly admitted page."""

    def _evict_one(self) -> None:
        """Evict one victim page (least recently used)."""
        self._pages.popitem(last=False)

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._pages) >= self.capacity:
            self._evict_one()
        self._pages[page_id] = data
        self._register(page_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages
