"""LRU buffer pool with hit/miss accounting.

Section 4.3.3 of the paper studies algorithm sensitivity to an LRU
buffer of B pages, "dedicated to each R-tree as two equal portions of
B/2 pages".  Each tree therefore owns one :class:`LRUBuffer`; a read
that finds its page in the buffer is free, anything else counts as one
disk access.  Capacity 0 disables caching entirely (the paper's "zero
buffer" configuration).

The buffer is thread-safe: an internal :class:`threading.RLock` guards
every operation, so concurrent queries (see :mod:`repro.service`) can
share one pool.  The loader callback of :meth:`read` runs *outside*
the lock -- a slow (or latency-simulated) disk read must not serialise
every other thread's buffer traffic.  Replacement-policy subclasses
customise behaviour through three hooks (:meth:`_touch`,
:meth:`_register`, :meth:`_evict_one`) rather than overriding the
locked entry points, which keeps them thread-safe for free and makes
:meth:`resize` evict with the same policy as normal admission.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.storage.stats import IOStats


class LRUBuffer:
    """Fixed-capacity page cache with least-recently-used eviction."""

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        #: Optional read observer, called as ``on_read(page_id, hit)``
        #: after every :meth:`read`, outside the buffer lock.  Installed
        #: by :meth:`repro.obs.Tracer.watch_buffer` to attribute page
        #: I/O to the reading thread's trace span; ``None`` (the
        #: default) costs one predicate test per read.
        self.on_read: Optional[Callable[[int, bool], None]] = None
        #: Lock acquisitions on the read path that found the lock held
        #: by another thread and had to wait.  A cheap contention gauge
        #: for the parallel executor and service dashboards; updated
        #: racily (observability, not accounting).
        self.contentions = 0
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()
        self._lock = threading.RLock()

    def _acquire_counted(self) -> None:
        if self._lock.acquire(blocking=False):
            return
        self.contentions += 1
        self._lock.acquire()

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        """Return the page, loading it via ``loader`` on a miss.

        Two threads missing on the same page concurrently both call the
        loader and both count a disk access -- the same double fault a
        real unsynchronised disk cache would take.
        """
        self._acquire_counted()
        try:
            data = self._pages.get(page_id)
            if data is not None:
                self._touch(page_id)
                self.stats.buffer_hits += 1
                hit = True
        finally:
            self._lock.release()
        if data is None:
            data = loader(page_id)
            self._acquire_counted()
            try:
                self.stats.disk_reads += 1
                self._admit(page_id, data)
            finally:
                self._lock.release()
            hit = False
        if self.on_read is not None:
            self.on_read(page_id, hit)
        return data

    def put(self, page_id: int, data: bytes) -> None:
        """Install a freshly written page image (write-through cache)."""
        with self._lock:
            if page_id in self._pages:
                self._pages.move_to_end(page_id)
                self._pages[page_id] = data
            else:
                self._admit(page_id, data)

    def invalidate(self, page_id: int) -> None:
        """Drop a page (called when its page is freed)."""
        with self._lock:
            self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the buffer (used between experiment runs)."""
        with self._lock:
            self._pages.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting by the replacement policy if
        shrinking (strict LRU order for this base class)."""
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        with self._lock:
            self.capacity = capacity
            while len(self._pages) > capacity:
                self._evict_one()

    # -- policy hooks (all called with the lock held) ---------------------

    def _touch(self, page_id: int) -> None:
        """Recency update on a buffer hit."""
        self._pages.move_to_end(page_id)

    def _register(self, page_id: int) -> None:
        """Bookkeeping for a newly admitted page."""

    def _evict_one(self) -> None:
        """Evict one victim page (least recently used)."""
        self._pages.popitem(last=False)

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._pages) >= self.capacity:
            self._evict_one()
        self._pages[page_id] = data
        self._register(page_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages
