"""LRU buffer pool with hit/miss accounting.

Section 4.3.3 of the paper studies algorithm sensitivity to an LRU
buffer of B pages, "dedicated to each R-tree as two equal portions of
B/2 pages".  Each tree therefore owns one :class:`LRUBuffer`; a read
that finds its page in the buffer is free, anything else counts as one
disk access.  Capacity 0 disables caching entirely (the paper's "zero
buffer" configuration).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.storage.stats import IOStats


class LRUBuffer:
    """Fixed-capacity page cache with least-recently-used eviction."""

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        """Return the page, loading it via ``loader`` on a miss."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.buffer_hits += 1
            return self._pages[page_id]
        data = loader(page_id)
        self.stats.disk_reads += 1
        self._admit(page_id, data)
        return data

    def put(self, page_id: int, data: bytes) -> None:
        """Install a freshly written page image (write-through cache)."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self._pages[page_id] = data
        else:
            self._admit(page_id, data)

    def invalidate(self, page_id: int) -> None:
        """Drop a page (called when its page is freed)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the buffer (used between experiment runs)."""
        self._pages.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting LRU pages if shrinking."""
        if capacity < 0:
            raise ValueError("buffer capacity must be >= 0")
        self.capacity = capacity
        while len(self._pages) > capacity:
            # invalidate() so policy subclasses drop their bookkeeping
            self.invalidate(next(iter(self._pages)))

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[page_id] = data

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages
