"""Write-ahead log with CRC-framed records and crash-recovery replay.

The live-mutation storage layer (see ``docs/STORAGE.md``) makes every
tree mutation durable *before* it is published: a batch of inserts and
deletes appends its page images to this log, syncs, and only then
advances the committed snapshot.  A crash at any point therefore
leaves one of two recoverable states -- the batch committed (its
records replay onto the page file) or it did not (its records are
ignored), never a half-applied tree.

Record framing extends the PR 5 v1 checksummed-page discipline to a
byte stream.  Each record is::

    magic (uint16) | type (uint16) | length (uint32) | crc32 (uint32)
    payload (length bytes)

with the CRC covering type, length and payload.  A *torn tail* --
the partially flushed last record of a crashed writer -- fails either
the magic check, the CRC, or runs short of bytes; replay stops at the
first damaged frame and reports it rather than guessing (exactly the
"detected, not replayed" contract of the page checksums).  Records
*before* the tear replay normally, so a tear can only ever lose the
uncommitted batch it belongs to.

Record types form one batch per commit::

    BEGIN(generation)                       -- batch opens
    WRITE(page_id, page_image) ...          -- final image of each page
    FREE(page_id) ...                       -- pages the batch released
    COMMIT(generation, root_id, height, count)

Replay (:meth:`WriteAheadLog.recover_into`) applies WRITE/FREE to the
page store batch-by-batch, but only for batches whose COMMIT record
was seen intact; the returned :class:`RecoveryResult` carries the last
committed root/generation so the tree can reopen exactly there.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import PageCorruptionError

#: Stamp leading every record frame (ASCII ``"WL"``); a frame that does
#: not start with it is damage or a torn tail.
WAL_MAGIC = 0x4C57

#: Record types, in the order they appear within one batch.
REC_BEGIN = 1
REC_WRITE = 2
REC_FREE = 3
REC_COMMIT = 4

#: magic, type, length, crc32 -- 12 bytes.
_FRAME = struct.Struct("<HHII")
#: BEGIN payload: the committed generation the batch mutates.
_BEGIN = struct.Struct("<q")
#: WRITE payload prefix: the page id (page image follows).
_WRITE = struct.Struct("<q")
#: FREE payload: the page id being released.
_FREE = struct.Struct("<q")
#: COMMIT payload: new generation, root page id (-1 when the tree is
#: empty), height, entry count.
_COMMIT = struct.Struct("<qqqq")


class WALCorruptionError(PageCorruptionError):
    """A WAL frame failed its magic or CRC check (torn tail or damage)."""


def _frame(rec_type: int, payload: bytes) -> bytes:
    crc = zlib.crc32(struct.pack("<HI", rec_type, len(payload)))
    crc = zlib.crc32(payload, crc) & 0xFFFFFFFF
    return _FRAME.pack(WAL_MAGIC, rec_type, len(payload), crc) + payload


@dataclass(frozen=True)
class RecoveryResult:
    """What :meth:`WriteAheadLog.recover_into` found and applied.

    ``generation``/``root_id``/``height``/``count`` describe the last
    *committed* batch (``None`` generation when no batch ever
    committed); ``torn`` reports whether replay stopped at a damaged
    frame, and ``valid_bytes`` is the clean prefix length -- the offset
    :meth:`WriteAheadLog.truncate_torn_tail` cuts back to.
    """

    generation: Optional[int]
    root_id: Optional[int]
    height: int
    count: int
    batches_applied: int
    pages_written: int
    torn: bool
    valid_bytes: int
    #: Batches that had begun but never committed (0 or 1 in practice).
    discarded_batches: int = 0

    def metadata(self, page_size: int, dimension: int = 2,
                 variant: str = "rstar") -> dict:
        """The :meth:`repro.rtree.tree.RTree.metadata` dict to reopen at."""
        return {
            "root_id": self.root_id,
            "height": self.height,
            "count": self.count,
            "generation": self.generation or 0,
            "variant": variant,
            "page_size": page_size,
            "dimension": dimension,
        }


@dataclass
class WALStats:
    """Counters of one log's appended and replayed work."""

    records_appended: int = 0
    bytes_appended: int = 0
    syncs: int = 0
    commits: int = 0
    aborted_batches: int = 0
    checkpoints: int = 0
    extra: dict = field(default_factory=dict)


class WriteAheadLog:
    """Append-only CRC-framed log over one file.

    ``sync_mode`` trades durability for speed:

    * ``"fsync"`` (default): every commit is ``flush`` + ``os.fsync``
      -- survives power loss.
    * ``"flush"``: flushed to the OS, survives process crash only.
    * ``"none"``: buffered; for tests and benchmarks.

    The log is single-writer (the tree's mutation batch owns it); it
    does no locking of its own.
    """

    def __init__(self, path: str, sync_mode: str = "fsync"):
        if sync_mode not in ("fsync", "flush", "none"):
            raise ValueError(
                f"sync_mode must be fsync, flush or none, not {sync_mode!r}"
            )
        self.path = path
        self.sync_mode = sync_mode
        self.stats = WALStats()
        self._file = open(path, "ab")

    # -- append side -------------------------------------------------------

    def _append(self, rec_type: int, payload: bytes) -> None:
        data = _frame(rec_type, payload)
        self._file.write(data)
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(data)

    def begin(self, generation: int) -> None:
        """Open a batch mutating the given committed generation."""
        self._append(REC_BEGIN, _BEGIN.pack(generation))

    def log_write(self, page_id: int, data: bytes) -> None:
        """Record the final image of one page written by the batch."""
        self._append(REC_WRITE, _WRITE.pack(page_id) + data)

    def log_free(self, page_id: int) -> None:
        """Record one page the batch released back to the free list."""
        self._append(REC_FREE, _FREE.pack(page_id))

    def commit(self, generation: int, root_id: Optional[int],
               height: int, count: int) -> None:
        """Seal the batch and make it durable per ``sync_mode``."""
        self._append(REC_COMMIT, _COMMIT.pack(
            generation, -1 if root_id is None else root_id, height, count
        ))
        self.stats.commits += 1
        self.sync()

    def sync(self) -> None:
        """Push appended records down to the configured durability."""
        if self.sync_mode == "none":
            return
        self._file.flush()
        if self.sync_mode == "fsync":
            os.fsync(self._file.fileno())
        self.stats.syncs += 1

    # -- replay side -------------------------------------------------------

    def replay(self) -> Iterator[Tuple[int, bytes, int]]:
        """Yield ``(type, payload, end_offset)`` for every intact record.

        Stops silently at the first torn or damaged frame (the caller
        distinguishes "clean end" from "tear" by comparing the last
        yielded ``end_offset`` against the file size, or uses
        :meth:`recover_into` which does it).  Reads through a separate
        handle so an open writer is unaffected.
        """
        self._file.flush()
        with open(self.path, "rb") as handle:
            offset = 0
            while True:
                header = handle.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    return  # clean EOF or short header (torn)
                magic, rec_type, length, crc = _FRAME.unpack(header)
                if magic != WAL_MAGIC:
                    return
                payload = handle.read(length)
                if len(payload) < length:
                    return  # torn payload
                actual = zlib.crc32(struct.pack("<HI", rec_type, length))
                actual = zlib.crc32(payload, actual) & 0xFFFFFFFF
                if actual != crc:
                    return
                offset += _FRAME.size + length
                yield rec_type, payload, offset

    def recover_into(self, store) -> RecoveryResult:
        """Replay every *committed* batch onto ``store``.

        WRITE records re-apply their page image (allocating the page
        when the store has never seen it); FREE records return pages to
        the free list.  Batches without an intact COMMIT -- including
        anything after a torn frame -- are discarded, never partially
        applied.  Returns the :class:`RecoveryResult` describing the
        reopened state.
        """
        batch: List[Tuple[int, bytes]] = []
        in_batch = False
        discarded = 0
        meta: Optional[Tuple[int, Optional[int], int, int]] = None
        batches = pages = 0
        valid_bytes = 0
        for rec_type, payload, end in self.replay():
            valid_bytes = end
            if rec_type == REC_BEGIN:
                if in_batch:
                    discarded += 1
                batch = []
                in_batch = True
            elif rec_type in (REC_WRITE, REC_FREE):
                batch.append((rec_type, payload))
            elif rec_type == REC_COMMIT:
                generation, root_id, height, count = _COMMIT.unpack(payload)
                for op, body in batch:
                    if op == REC_WRITE:
                        (page_id,) = _WRITE.unpack_from(body, 0)
                        image = body[_WRITE.size:]
                        store.ensure_allocated(page_id)
                        store.write(page_id, image)
                        pages += 1
                    else:
                        (page_id,) = _FREE.unpack(body)
                        store.ensure_allocated(page_id)
                        store.free(page_id)
                meta = (
                    generation,
                    None if root_id == -1 else root_id,
                    height,
                    count,
                )
                batches += 1
                batch = []
                in_batch = False
        if in_batch:
            discarded += 1
        size = os.path.getsize(self.path)
        if meta is None:
            generation_v: Optional[int] = None
            root_v: Optional[int] = None
            height_v = count_v = 0
        else:
            generation_v, root_v, height_v, count_v = meta
        return RecoveryResult(
            generation=generation_v,
            root_id=root_v,
            height=height_v,
            count=count_v,
            batches_applied=batches,
            pages_written=pages,
            torn=valid_bytes != size,
            valid_bytes=valid_bytes,
            discarded_batches=discarded,
        )

    def truncate_torn_tail(self) -> int:
        """Cut the log back to its last intact record boundary.

        Returns the number of bytes dropped.  Run after recovery so a
        reopened writer appends after clean frames, not into garbage.
        """
        valid = 0
        for __, __, end in self.replay():
            valid = end
        size = os.path.getsize(self.path)
        if valid < size:
            self._file.flush()
            self._file.truncate(valid)
            self._file.seek(0, os.SEEK_END)
        return size - valid

    def checkpoint(self) -> None:
        """Empty the log (call only after the page store is durable).

        Idempotent: checkpointing an already-empty log is a no-op
        truncate.  The caller owns the ordering contract -- flush the
        page store and rewrite the metadata sidecar *first*, so the
        log's contents are redundant at the moment they vanish (see
        :meth:`repro.rtree.tree.RTree.checkpoint_wal`).
        """
        self._file.flush()
        self._file.truncate(0)
        self._file.seek(0)
        if self.sync_mode == "fsync":
            os.fsync(self._file.fileno())
        self.stats.checkpoints += 1

    def size(self) -> int:
        """Current on-disk log size in bytes (buffered writes included)."""
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class WALCheckpointer:
    """Background WAL checkpointing on a size threshold.

    Watches one live tree's log and calls ``checkpoint()`` (by default
    the tree's :meth:`~repro.rtree.tree.RTree.checkpoint_wal`) whenever
    the log grows past ``threshold_bytes`` -- bounding both recovery
    replay time and disk held by page images that the flushed store
    already owns.  The checkpoint callable is responsible for its own
    atomicity (``checkpoint_wal`` takes the tree's batch lock, so a
    checkpoint never interleaves with a half-appended batch).

    Runs as a daemon thread polling every ``interval_s``;
    :meth:`maybe_checkpoint` offers the same threshold check
    synchronously (the commit path calls it when no thread is wanted).
    """

    def __init__(self, wal: WriteAheadLog, checkpoint,
                 threshold_bytes: int = 4 * 1024 * 1024,
                 interval_s: float = 0.25):
        if threshold_bytes < 1:
            raise ValueError("threshold_bytes must be >= 1")
        import threading

        self.wal = wal
        self.threshold_bytes = threshold_bytes
        self.interval_s = interval_s
        self.checkpoints_triggered = 0
        self._checkpoint = checkpoint
        self._stop = threading.Event()
        self._thread: Optional[object] = None
        self._threading = threading

    def maybe_checkpoint(self) -> bool:
        """Checkpoint now if the log is past threshold; True when it ran."""
        try:
            over = self.wal.size() >= self.threshold_bytes
        except (OSError, ValueError):  # log closed under us
            return False
        if not over:
            return False
        self._checkpoint()
        self.checkpoints_triggered += 1
        return True

    def start(self) -> "WALCheckpointer":
        """Start the background thread (idempotent)."""
        if self._thread is None:
            self._thread = self._threading.Thread(
                target=self._loop, name="wal-checkpointer", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.maybe_checkpoint()
            except (OSError, ValueError):  # pragma: no cover -- closing
                return

    def close(self, timeout_s: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    def __enter__(self) -> "WALCheckpointer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def recover_tree(pages_path: str, wal_path: str, page_size: int = 1024,
                 dimension: int = 2, variant: str = "rstar",
                 use_mmap: bool = False,
                 fallback_metadata: Optional[dict] = None):
    """Replay a WAL onto a page file and reopen the tree it describes.

    The one-call crash-recovery entry point used by ``repro-cpq
    recover`` and the chaos tests: opens the page store, applies every
    committed batch, truncates the torn tail, and returns
    ``(tree, result)`` where the tree is positioned at the last
    committed snapshot.  When the log holds no committed batch, the
    tree reopens at ``fallback_metadata`` (the sidecar ``.meta.json``
    from before the crashed ingest) when given, else ``(None, result)``
    is returned.
    """
    from repro.rtree.tree import RTree
    from repro.storage.paged_file import PagedFile
    from repro.storage.store import FilePageStore

    store = FilePageStore(pages_path, page_size, use_mmap=use_mmap)
    with WriteAheadLog(wal_path, sync_mode="none") as wal:
        result = wal.recover_into(store)
        wal.truncate_torn_tail()
    store.flush()
    if result.generation is None:
        if fallback_metadata is None:
            store.close()
            return None, result
        metadata = dict(fallback_metadata)
    else:
        metadata = result.metadata(
            page_size, dimension=dimension, variant=variant
        )
    tree = RTree.from_storage(
        PagedFile(store, page_size=page_size), metadata
    )
    return tree, result
