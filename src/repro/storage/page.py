"""Page layout arithmetic.

R-tree nodes are implemented as disk pages (paper Section 2.2).  The
experiments use 1 KiB pages giving node capacity M = 21 and minimum
occupancy m = M/3 = 7 (Section 4).  :class:`PageLayout` derives those
numbers from a page size so other configurations stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes reserved at the start of every page for the node header
#: (level, entry count, format version, CRC32 checksum).
HEADER_SIZE = 16

#: On-disk page format version written into every new page header.
#:
#: * **0** -- legacy pages (the header's last 8 bytes are zero padding);
#:   read support is kept so page files written before checksumming
#:   still open, but no integrity check is possible.
#: * **1** -- checksummed pages: the former padding carries the version
#:   (uint16), the :data:`PAGE_MAGIC` stamp (uint16), and a CRC32
#:   (uint32) over the whole page with the checksum field zeroed.  Any
#:   single bit-flip anywhere in the page is detected (CRC32 catches
#:   all burst errors shorter than 32 bits).
#:
#: The header stays 16 bytes either way, so node capacity (the paper's
#: M = 21 for 1 KiB pages) is unchanged.
PAGE_FORMAT_VERSION = 1

#: Non-zero stamp written into the header word after the version
#: (ASCII ``"PR"``).  A genuine legacy version-0 header is all zeros
#: there; a version-1 header whose version field was zeroed by damage
#: (torn header write, bit-flip) still carries this stamp, so the two
#: are distinguishable and a damaged v1 page can never slip through
#: the unchecksummed legacy read path.
PAGE_MAGIC = 0x5250

#: Fixed on-disk entry footprint in bytes.  Both leaf entries
#: (point coordinates + object id) and internal entries (MBR + child
#: page id) are stored in 48-byte slots for 2-d data, which is what
#: makes a 1 KiB page hold the paper's M = 21 entries:
#: (1024 - 16) // 48 == 21.
ENTRY_SIZE_2D = 48


def entry_size(dimension: int) -> int:
    """On-disk entry footprint for ``dimension``-d data.

    An internal entry needs ``2 * dimension`` float64 bounds plus an
    8-byte child pointer; the slot is padded to at least the 2-d size
    so the paper's capacity numbers hold in the default configuration.
    """
    return max(ENTRY_SIZE_2D, 2 * dimension * 8 + 8)


@dataclass(frozen=True)
class PageLayout:
    """Derives node capacity from a page size.

    Parameters
    ----------
    page_size:
        Page size in bytes (the paper uses 1024).
    dimension:
        Dimensionality of the indexed points (the paper uses 2).
    min_fill_ratio:
        Minimum node occupancy as a fraction of capacity; the paper
        follows Beckmann et al. with m = M/3.
    """

    page_size: int = 1024
    dimension: int = 2
    min_fill_ratio: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.page_size < HEADER_SIZE + entry_size(self.dimension):
            raise ValueError(
                f"page size {self.page_size} too small to hold one entry"
            )
        if self.dimension < 1:
            raise ValueError("dimension must be >= 1")
        if not 0.0 < self.min_fill_ratio <= 0.5:
            raise ValueError("min_fill_ratio must be in (0, 0.5]")

    @property
    def entry_size(self) -> int:
        return entry_size(self.dimension)

    @property
    def max_entries(self) -> int:
        """Node capacity M."""
        return (self.page_size - HEADER_SIZE) // self.entry_size

    @property
    def min_entries(self) -> int:
        """Minimum occupancy m (at least 1, at most M // 2)."""
        m = int(self.max_entries * self.min_fill_ratio)
        return max(1, min(m, self.max_entries // 2))
