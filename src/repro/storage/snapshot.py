"""Generation snapshots: consistent reads while writers mutate.

The live-mutation layer (``docs/STORAGE.md``) gives every committed
tree state a *generation number* and treats the pages reachable from
that generation's root as immutable: a mutation batch writes only
freshly allocated pages (copy-on-write path shadowing in
:mod:`repro.rtree.tree`) and publishes the new root here, in one
atomic step, when it commits.

Readers *pin* the current :class:`Snapshot` before traversing and
release it after; while pinned, every page their root can reach stays
exactly as committed -- a query admitted before a commit finishes on
the old generation, one admitted after starts on the new one, and no
query ever observes a mix.  Pages superseded by a commit are not freed
immediately but parked in this manager and reclaimed once no pin can
still reach them (the refcounted epoch scheme of every MVCC store).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Snapshot:
    """One committed tree state: the root and counters of a generation.

    Immutable and hashable; holding a ``Snapshot`` alone does *not*
    protect its pages -- only a pin obtained from
    :meth:`SnapshotManager.pin` (or :meth:`repro.rtree.tree.RTree.pin`)
    defers reclamation.
    """

    generation: int
    root_id: Optional[int]
    height: int
    count: int


class SnapshotManager:
    """Pins, publication and deferred page reclamation for one tree.

    ``reclaim`` is the callback that *really* frees a page once no pin
    can reach it (the tree wires it to ``PagedFile.free_page`` plus its
    decoded-node cache eviction).  All state is guarded by one lock;
    :meth:`pin` and :meth:`publish` are atomic with respect to each
    other, which is the whole point -- a reader either pins the old
    generation (blocking its reclamation) or the new one, never a
    half-published state.
    """

    def __init__(self, reclaim: Callable[[int], None],
                 initial: Snapshot):
        self._reclaim = reclaim
        self._lock = threading.Lock()
        self._current = initial
        #: generation -> live pin count.
        self._pins: Dict[int, int] = {}
        #: ``(last_generation_referencing_them, [page_ids])`` queues;
        #: reclaimable once every pin is newer than the threshold.
        self._pending: List[Tuple[int, List[int]]] = []
        #: Pages actually handed back; observability for tests/stats.
        self.reclaimed = 0

    # -- read side ---------------------------------------------------------

    def current(self) -> Snapshot:
        """The committed snapshot (unpinned peek)."""
        with self._lock:
            return self._current

    def pin(self) -> Snapshot:
        """Pin and return the committed snapshot.

        Every pin must be balanced by exactly one :meth:`release`;
        unreleased pins park superseded pages forever.
        """
        with self._lock:
            snap = self._current
            self._pins[snap.generation] = (
                self._pins.get(snap.generation, 0) + 1
            )
            return snap

    def release(self, snapshot: Snapshot) -> None:
        """Release one pin; may trigger deferred reclamation."""
        with self._lock:
            live = self._pins.get(snapshot.generation, 0) - 1
            if live < 0:
                raise ValueError(
                    f"release of generation {snapshot.generation} "
                    f"without a matching pin"
                )
            if live:
                self._pins[snapshot.generation] = live
            else:
                self._pins.pop(snapshot.generation, None)
            self._drain_locked()

    def pinned(self) -> int:
        """Total live pins across all generations."""
        with self._lock:
            return sum(self._pins.values())

    def pins_by_generation(self) -> Dict[int, int]:
        """Live pin counts keyed by generation (staleness at a glance).

        The supervisor's hot-reload path and ``/healthz`` use this to
        show which superseded generations are still held open -- a
        generation lingering here is why its pages have not reclaimed.
        """
        with self._lock:
            return dict(self._pins)

    # -- write side --------------------------------------------------------

    def publish(self, snapshot: Snapshot,
                superseded: Optional[List[int]] = None) -> None:
        """Atomically install a new committed snapshot.

        ``superseded`` lists the pages the committing batch released;
        they were reachable from every generation up to (and including)
        the *previous* one, so they reclaim once no pin at or below it
        remains.
        """
        with self._lock:
            previous = self._current.generation
            if snapshot.generation <= previous:
                raise ValueError(
                    f"snapshot generation {snapshot.generation} does not "
                    f"advance the committed {previous}"
                )
            self._current = snapshot
            if superseded:
                self._pending.append((previous, list(superseded)))
            self._drain_locked()

    def pending_pages(self) -> int:
        """Pages parked awaiting reclamation (observability)."""
        with self._lock:
            return sum(len(pages) for __, pages in self._pending)

    def _drain_locked(self) -> None:
        """Reclaim every queue no live pin can still reach."""
        if not self._pending:
            return
        floor = min(self._pins) if self._pins else None
        keep: List[Tuple[int, List[int]]] = []
        for threshold, pages in self._pending:
            if floor is not None and floor <= threshold:
                keep.append((threshold, pages))
                continue
            for page_id in pages:
                self._reclaim(page_id)
                self.reclaimed += 1
        self._pending = keep


class SnapshotView:
    """A tree read through one pinned snapshot.

    Exposes the read-side surface the query algorithms use
    (``read_node`` / ``read_root`` / ``root_id`` / ``dimension`` /
    ``stats`` / ``file`` ...), with the root, height, count and
    generation frozen at the snapshot; everything else delegates to the
    underlying tree.  The view does not own the pin -- the caller that
    pinned the snapshot releases it after the query (see
    :meth:`repro.rtree.tree.RTree.view`).
    """

    def __init__(self, tree, snapshot: Snapshot):
        self.tree = tree
        self.snapshot = snapshot
        self.root_id = snapshot.root_id
        self.height = snapshot.height
        self.generation = snapshot.generation

    def read_node(self, page_id: int):
        return self.tree.read_node(page_id)

    def read_root(self):
        if self.root_id is None:
            return None
        return self.tree.read_node(self.root_id)

    def __len__(self) -> int:
        return self.snapshot.count

    def __getattr__(self, name: str):
        # dimension, file, stats, config, max_entries, ... -- anything
        # not frozen by the snapshot resolves against the live tree.
        return getattr(self.tree, name)

    def __repr__(self) -> str:
        return (
            f"SnapshotView(generation={self.generation}, "
            f"root={self.root_id}, count={self.snapshot.count})"
        )
