"""Alternative buffer replacement policies (ablation substrate).

The paper (following Leutenegger & Lopez, ICDE'98) studies LRU
buffering only.  These variants allow an ablation of the policy choice
on CPQ cost: FIFO (no recency update on hit), LFU (evict the least
frequently used) and CLOCK (the classic second-chance approximation of
LRU).  All share :class:`~repro.storage.buffer.LRUBuffer`'s interface,
so a :class:`~repro.storage.paged_file.PagedFile` can swap them in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.storage.buffer import LRUBuffer
from repro.storage.stats import IOStats


class FIFOBuffer(LRUBuffer):
    """First-in-first-out: hits do not refresh a page's position."""

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        if page_id in self._pages:
            self.stats.buffer_hits += 1
            return self._pages[page_id]
        data = loader(page_id)
        self.stats.disk_reads += 1
        self._admit(page_id, data)
        return data


class LFUBuffer(LRUBuffer):
    """Least-frequently-used eviction with LRU tie-breaking.

    Frequencies persist while a page stays resident and reset on
    eviction (plain LFU, not LFU-aging).
    """

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        super().__init__(capacity, stats)
        self._frequency: Dict[int, int] = {}

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self._frequency[page_id] += 1
            self.stats.buffer_hits += 1
            return self._pages[page_id]
        data = loader(page_id)
        self.stats.disk_reads += 1
        self._admit(page_id, data)
        return data

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._pages) >= self.capacity:
            victim = min(
                self._pages,
                key=lambda pid: (self._frequency[pid],
                                 list(self._pages).index(pid)),
            )
            del self._pages[victim]
            del self._frequency[victim]
        self._pages[page_id] = data
        self._frequency[page_id] = 1

    def invalidate(self, page_id: int) -> None:
        super().invalidate(page_id)
        self._frequency.pop(page_id, None)

    def clear(self) -> None:
        super().clear()
        self._frequency.clear()


class ClockBuffer(LRUBuffer):
    """Second-chance (CLOCK) replacement.

    Resident pages carry a reference bit; the clock hand sweeps,
    clearing bits until it finds an unreferenced victim.
    """

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        super().__init__(capacity, stats)
        self._referenced: "OrderedDict[int, bool]" = OrderedDict()

    def read(self, page_id: int, loader: Callable[[int], bytes]) -> bytes:
        if page_id in self._pages:
            self._referenced[page_id] = True
            self.stats.buffer_hits += 1
            return self._pages[page_id]
        data = loader(page_id)
        self.stats.disk_reads += 1
        self._admit(page_id, data)
        return data

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._pages) >= self.capacity:
            victim, referenced = next(iter(self._referenced.items()))
            if referenced:
                # second chance: clear the bit, move to the back
                self._referenced[victim] = False
                self._referenced.move_to_end(victim)
                self._pages.move_to_end(victim)
            else:
                del self._pages[victim]
                del self._referenced[victim]
        self._pages[page_id] = data
        self._referenced[page_id] = False

    def invalidate(self, page_id: int) -> None:
        super().invalidate(page_id)
        self._referenced.pop(page_id, None)

    def clear(self) -> None:
        super().clear()
        self._referenced.clear()


#: Registry used by the ablation benchmark and the paged-file factory.
BUFFER_POLICIES = {
    "lru": LRUBuffer,
    "fifo": FIFOBuffer,
    "lfu": LFUBuffer,
    "clock": ClockBuffer,
}


def make_buffer(
    policy: str, capacity: int, stats: Optional[IOStats] = None
) -> LRUBuffer:
    """Instantiate a buffer by policy name."""
    try:
        cls = BUFFER_POLICIES[policy.lower()]
    except KeyError:
        raise ValueError(
            f"unknown buffer policy {policy!r}; expected one of "
            f"{sorted(BUFFER_POLICIES)}"
        ) from None
    return cls(capacity, stats)
