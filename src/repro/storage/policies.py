"""Alternative buffer replacement policies (ablation substrate).

The paper (following Leutenegger & Lopez, ICDE'98) studies LRU
buffering only.  These variants allow an ablation of the policy choice
on CPQ cost: FIFO (no recency update on hit), LFU (evict the least
frequently used) and CLOCK (the classic second-chance approximation of
LRU).  All share :class:`~repro.storage.buffer.LRUBuffer`'s interface,
so a :class:`~repro.storage.paged_file.PagedFile` can swap them in.

Policies customise the base class through its three hooks (``_touch``
on hit, ``_register`` on admission, ``_evict_one`` for victim choice),
which the base class always calls with its lock held -- so every
policy inherits thread safety, and :meth:`LRUBuffer.resize` shrinks
with the same victim order the policy uses for normal admission.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.storage.buffer import LRUBuffer
from repro.storage.stats import IOStats


class FIFOBuffer(LRUBuffer):
    """First-in-first-out: hits do not refresh a page's position."""

    def _touch(self, page_id: int) -> None:
        pass


class LFUBuffer(LRUBuffer):
    """Least-frequently-used eviction with LRU tie-breaking.

    Frequencies persist while a page stays resident and reset on
    eviction (plain LFU, not LFU-aging).
    """

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        super().__init__(capacity, stats)
        self._frequency: Dict[int, int] = {}

    def _touch(self, page_id: int) -> None:
        self._pages.move_to_end(page_id)
        self._frequency[page_id] += 1

    def _register(self, page_id: int) -> None:
        self._frequency[page_id] = 1

    def _evict_one(self) -> None:
        victim = min(
            self._pages,
            key=lambda pid: (self._frequency[pid],
                             list(self._pages).index(pid)),
        )
        del self._pages[victim]
        del self._frequency[victim]

    def invalidate(self, page_id: int) -> None:
        with self._lock:
            super().invalidate(page_id)
            self._frequency.pop(page_id, None)

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self._frequency.clear()


class ClockBuffer(LRUBuffer):
    """Second-chance (CLOCK) replacement.

    Resident pages carry a reference bit; the clock hand sweeps,
    clearing bits until it finds an unreferenced victim.
    """

    def __init__(self, capacity: int, stats: Optional[IOStats] = None):
        super().__init__(capacity, stats)
        self._referenced: "OrderedDict[int, bool]" = OrderedDict()

    def _touch(self, page_id: int) -> None:
        self._referenced[page_id] = True

    def _register(self, page_id: int) -> None:
        self._referenced[page_id] = False

    def _evict_one(self) -> None:
        while True:
            victim, referenced = next(iter(self._referenced.items()))
            if referenced:
                # second chance: clear the bit, move to the back
                self._referenced[victim] = False
                self._referenced.move_to_end(victim)
                self._pages.move_to_end(victim)
            else:
                del self._pages[victim]
                del self._referenced[victim]
                return

    def invalidate(self, page_id: int) -> None:
        with self._lock:
            super().invalidate(page_id)
            self._referenced.pop(page_id, None)

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self._referenced.clear()


#: Registry used by the ablation benchmark and the paged-file factory.
BUFFER_POLICIES = {
    "lru": LRUBuffer,
    "fifo": FIFOBuffer,
    "lfu": LFUBuffer,
    "clock": ClockBuffer,
}


def make_buffer(
    policy: str, capacity: int, stats: Optional[IOStats] = None
) -> LRUBuffer:
    """Instantiate a buffer by policy name."""
    try:
        cls = BUFFER_POLICIES[policy.lower()]
    except KeyError:
        raise ValueError(
            f"unknown buffer policy {policy!r}; expected one of "
            f"{sorted(BUFFER_POLICIES)}"
        ) from None
    return cls(capacity, stats)
