"""Deterministic fault injection for page stores.

:class:`FaultyPageStore` wraps any :class:`~repro.storage.store.PageStore`
and injects storage failures according to a seed-driven
:class:`FaultPlan`: transient ``TransientIOError`` reads, read-latency
spikes, single bit-flips on the bytes returned by ``read`` (the wire /
controller corruption a checksum must catch), torn writes that persist
only a prefix of the page, and explicit fail-N-then-succeed schedules
for targeted tests.

Everything is deterministic given ``(plan.seed, operation sequence)``:
the wrapper draws from one private :class:`random.Random`, so a
workload replayed against the same plan sees the same faults in the
same places.  ``max_consecutive`` bounds runs of transient failures on
one page, so a retry policy with more attempts than that provably
survives any transient schedule the plan can emit.

The wrapper is the test double for the whole resilience stack
(checksums, retrying buffer, circuit breaker, chaos CLI); see
``docs/RESILIENCE.md``.  Named plans used by ``repro-cpq chaos`` live
in :data:`SCHEDULES`.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import TransientIOError
from repro.storage.store import PageStore


@dataclass(frozen=True)
class FaultPlan:
    """One named fault schedule: probabilities and shapes of injected
    failures.

    All probabilities are per-operation.  ``latency_s`` is slept (via
    the store's injectable ``sleep``) when a latency spike fires, so
    tests can stub it out.
    """

    seed: int = 0
    #: Probability a ``read`` raises :class:`TransientIOError`.
    p_transient: float = 0.0
    #: Probability a ``read`` sleeps ``latency_s`` first.
    p_latency: float = 0.0
    latency_s: float = 0.001
    #: Probability a ``read`` returns the page with one bit flipped
    #: (the stored bytes stay intact -- a re-read can heal).
    p_bitflip: float = 0.0
    #: Probability a ``write`` persists only a prefix of the page,
    #: zero-filling the tail (a torn write; detected on next read by
    #: the page checksum).
    p_torn_write: float = 0.0
    #: Upper bound on back-to-back transient failures of one page; a
    #: retry policy with ``max_attempts > max_consecutive`` always
    #: gets through.
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        for name in ("p_transient", "p_latency", "p_bitflip",
                     "p_torn_write"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")


#: Named plans for the chaos harness (``repro-cpq chaos --schedule``).
#: Probabilities stay at or below the acceptance bound p <= 0.05.
SCHEDULES: Dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "transient": FaultPlan(p_transient=0.05),
    "latency": FaultPlan(p_latency=0.05, latency_s=0.0005),
    "bitflip": FaultPlan(p_bitflip=0.02),
    "torn": FaultPlan(p_torn_write=0.05),
    "mixed": FaultPlan(p_transient=0.03, p_latency=0.02,
                       latency_s=0.0005, p_bitflip=0.01),
}


@dataclass
class FaultStats:
    """Counters of what the wrapper actually injected."""

    reads: int = 0
    writes: int = 0
    transient_raised: int = 0
    latency_spikes: int = 0
    bits_flipped: int = 0
    torn_writes: int = 0
    scheduled_failures: int = 0

    @property
    def injected(self) -> int:
        """Total injected faults of any kind."""
        return (self.transient_raised + self.latency_spikes
                + self.bits_flipped + self.torn_writes
                + self.scheduled_failures)


class FaultyPageStore:
    """A :class:`PageStore` that fails on purpose.

    Satisfies the page-store protocol by delegating to ``inner`` and
    layering the plan's faults on the read/write paths.  ``allocate``,
    ``free`` and ``__len__`` pass straight through -- structural
    operations are assumed reliable so trees can be *built* cleanly and
    then queried under fire (wrap the store after construction, or use
    :func:`repro.cli.main` ``chaos`` which does exactly that).

    ``fail_reads[page_id] = n`` arms a deterministic
    fail-N-then-succeed schedule: the next ``n`` reads of that page
    raise :class:`TransientIOError` regardless of probabilities, then
    reads succeed again.  :meth:`flip_bit` applies *persistent*
    corruption to the stored image, modelling at-rest damage that no
    retry can heal (the checksum must surface it).
    """

    def __init__(
        self,
        inner: PageStore,
        plan: FaultPlan = FaultPlan(),
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.plan = plan
        self.page_size = inner.page_size
        self.faults = FaultStats()
        #: Per-page countdown of forced transient read failures.
        self.fail_reads: Dict[int, int] = {}
        self._rng = random.Random(plan.seed)
        self._consecutive: Dict[int, int] = {}
        self._sleep = sleep

    # -- pass-through ------------------------------------------------------

    def allocate(self) -> int:
        return self.inner.allocate()

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, name: str):
        # flush/close/path of file-backed inner stores remain reachable.
        return getattr(self.inner, name)

    # -- faulted paths -----------------------------------------------------

    def read(self, page_id: int) -> bytes:
        self.faults.reads += 1
        armed = self.fail_reads.get(page_id, 0)
        if armed > 0:
            self.fail_reads[page_id] = armed - 1
            self.faults.scheduled_failures += 1
            raise TransientIOError(
                f"injected scheduled failure on page {page_id} "
                f"({armed - 1} remaining)"
            )
        plan = self.plan
        if plan.p_latency and self._rng.random() < plan.p_latency:
            self.faults.latency_spikes += 1
            self._sleep(plan.latency_s)
        if plan.p_transient and self._rng.random() < plan.p_transient:
            streak = self._consecutive.get(page_id, 0)
            if streak < plan.max_consecutive:
                self._consecutive[page_id] = streak + 1
                self.faults.transient_raised += 1
                raise TransientIOError(
                    f"injected transient fault on page {page_id}"
                )
        self._consecutive.pop(page_id, None)
        data = self.inner.read(page_id)
        if plan.p_bitflip and self._rng.random() < plan.p_bitflip:
            data = self._flip_random_bit(data, page_id)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self.faults.writes += 1
        plan = self.plan
        if plan.p_torn_write and self._rng.random() < plan.p_torn_write:
            self.faults.torn_writes += 1
            keep = self._rng.randrange(1, len(data))
            data = data[:keep] + b"\x00" * (len(data) - keep)
        self.inner.write(page_id, data)

    # -- targeted corruption ----------------------------------------------

    def flip_bit(self, page_id: int,
                 bit_index: Optional[int] = None) -> int:
        """Persistently flip one bit of the stored page image.

        Returns the flipped bit index (random when not given).  Unlike
        the plan's ``p_bitflip`` -- which corrupts only the returned
        copy -- this damages the page at rest, so every subsequent read
        observes the corruption until the page is rewritten.
        """
        image = bytearray(self.inner.read(page_id))
        if bit_index is None:
            bit_index = self._rng.randrange(len(image) * 8)
        image[bit_index // 8] ^= 1 << (bit_index % 8)
        self.inner.write(page_id, bytes(image))
        self.faults.bits_flipped += 1
        return bit_index

    def _flip_random_bit(self, data: bytes, page_id: int) -> bytes:
        self.faults.bits_flipped += 1
        image = bytearray(data)
        bit_index = self._rng.randrange(len(image) * 8)
        image[bit_index // 8] ^= 1 << (bit_index % 8)
        return bytes(image)


def tear_file_tail(path: str, seed: int = 0, max_bytes: int = 256) -> int:
    """Damage a file's tail the way a crashed writer would.

    Deterministically (per ``seed``) either truncates up to
    ``max_bytes`` from the end or zero-fills them in place -- the two
    shapes a torn final WAL record takes after a crash (lost tail vs
    partially persisted frame).  Returns the number of damaged bytes.
    The WAL's CRC framing must detect either shape and stop replay at
    the last intact record; ``tests/test_recovery.py`` drives this
    against :meth:`repro.storage.wal.WriteAheadLog.recover_into`.
    """
    size = os.path.getsize(path)
    if size == 0:
        return 0
    rng = random.Random(seed)
    cut = rng.randrange(1, min(max_bytes, size) + 1)
    with open(path, "r+b") as handle:
        if rng.random() < 0.5:
            handle.truncate(size - cut)
        else:
            handle.seek(size - cut)
            handle.write(b"\x00" * cut)
    return cut


def wrap_tree_store(tree, plan: FaultPlan,
                    sleep: Callable[[float], None] = time.sleep,
                    ) -> FaultyPageStore:
    """Swap a tree's backing store for a faulty wrapper, in place.

    The tree keeps its buffer, stats and decoded-node cache; only the
    bytes underneath start failing.  Returns the wrapper so callers can
    inspect :attr:`FaultyPageStore.faults` or arm schedules.  The
    buffer is cleared so the workload actually reaches the faulty
    store instead of being absorbed by warm frames.
    """
    wrapper = FaultyPageStore(tree.file.store, plan, sleep=sleep)
    tree.file.store = wrapper
    tree.file.buffer.clear()
    # Decoded-node cache would mask reads entirely; queries must hit
    # the (faulty) storage stack to exercise it.
    tree._nodes.clear()
    return wrapper


def unwrap_tree_store(tree) -> None:
    """Undo :func:`wrap_tree_store`, restoring the clean inner store."""
    store = tree.file.store
    if isinstance(store, FaultyPageStore):
        tree.file.store = store.inner
        tree.file.buffer.clear()
        tree._nodes.clear()
