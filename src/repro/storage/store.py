"""Page stores: where serialised pages live.

Two implementations share one protocol:

* :class:`MemoryPageStore` -- a dict of page images; the default for
  experiments (the paper's cost metric is simulated disk accesses, not
  real ones, so experiments do not need a real file).
* :class:`FilePageStore` -- a real page-aligned file on disk, proving
  the byte layout round-trips and enabling persistent trees.

Both keep a free list so deleted pages are reused.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Protocol

from repro.errors import PageCorruptionError


class PageStore(Protocol):
    """Minimal page-granular storage interface."""

    page_size: int

    def allocate(self) -> int:
        """Reserve a new page id."""
        ...

    def read(self, page_id: int) -> bytes:
        """Return the page image (exactly ``page_size`` bytes)."""
        ...

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page image."""
        ...

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        ...

    def __len__(self) -> int:
        """Number of live (allocated, not freed) pages."""
        ...


class MemoryPageStore:
    """In-memory page store used by the experiment harness."""

    def __init__(self, page_size: int = 1024):
        self.page_size = page_size
        self._pages: Dict[int, Optional[bytes]] = {}
        self._free: List[int] = []
        self._next_id = 0

    def allocate(self) -> int:
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = None
        return page_id

    def read(self, page_id: int) -> bytes:
        data = self._pages.get(page_id)
        if data is None:
            raise KeyError(f"page {page_id} not written or not allocated")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} not allocated")
        if len(data) != self.page_size:
            raise ValueError(
                f"page image of {len(data)} bytes; expected {self.page_size}"
            )
        self._pages[page_id] = data

    def free(self, page_id: int) -> None:
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} not allocated")
        del self._pages[page_id]
        self._free.append(page_id)

    def __len__(self) -> int:
        return len(self._pages)


class FilePageStore:
    """Page store backed by a real file.

    The file grows in page-size units; a free list is kept in memory
    (it could be persisted in page 0, but persistence of the free list
    is not needed by any experiment).
    """

    def __init__(self, path: str, page_size: int = 1024,
                 readonly: bool = False):
        self.page_size = page_size
        self.path = path
        self.readonly = readonly
        if readonly:
            # Per-worker handles of the parallel executor's process mode:
            # each worker opens its own file descriptor on the shared
            # page file, so concurrent readers never share seek state.
            mode = "rb"
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise ValueError(
                f"{path} is {size} bytes, not a multiple of {page_size}"
            )
        self._next_id = size // page_size
        self._allocated = set(range(self._next_id))
        self._free: List[int] = []

    def allocate(self) -> int:
        self._check_writable()
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
            self._file.seek(page_id * self.page_size)
            self._file.write(b"\x00" * self.page_size)
        self._allocated.add(page_id)
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            # A truncated file (partial write, lost tail) must fail
            # loudly here, not as a confusing serializer error later.
            raise PageCorruptionError(
                f"short read of page {page_id} from {self.path}: got "
                f"{len(data)} bytes, expected {self.page_size}",
                page_id=page_id,
            )
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check_writable()
        self._check(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page image of {len(data)} bytes; expected {self.page_size}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def free(self, page_id: int) -> None:
        self._check_writable()
        self._check(page_id)
        self._allocated.remove(page_id)
        self._free.append(page_id)

    def _check(self, page_id: int) -> None:
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} not allocated")

    def _check_writable(self) -> None:
        if self.readonly:
            raise PermissionError(f"{self.path} opened read-only")

    def __len__(self) -> int:
        return len(self._allocated)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
