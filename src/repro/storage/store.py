"""Page stores: where serialised pages live.

Two implementations share one protocol:

* :class:`MemoryPageStore` -- a dict of page images; the default for
  experiments (the paper's cost metric is simulated disk accesses, not
  real ones, so experiments do not need a real file).
* :class:`FilePageStore` -- a real page-aligned file on disk, proving
  the byte layout round-trips and enabling persistent trees.

Both keep a free list so deleted pages are reused, and both support
``ensure_allocated`` so write-ahead-log replay (:mod:`repro.storage.
wal`) can re-apply page images to a store that never saw the original
allocation.

``FilePageStore`` additionally offers an ``mmap``-backed read path
(``use_mmap=True``): warm page reads become one slice of a shared
memory mapping instead of a Python ``seek`` + ``read`` round trip
through the buffered file object.  ``benchmarks/bench_mutation.py``
measures the difference; ``docs/STORAGE.md`` discusses when it pays.
"""

from __future__ import annotations

import mmap
import os
from typing import Dict, List, Optional, Protocol

from repro.errors import PageCorruptionError


class PageStore(Protocol):
    """Minimal page-granular storage interface."""

    page_size: int

    def allocate(self) -> int:
        """Reserve a new page id."""
        ...

    def read(self, page_id: int) -> bytes:
        """Return the page image (exactly ``page_size`` bytes)."""
        ...

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page image."""
        ...

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        ...

    def ensure_allocated(self, page_id: int) -> None:
        """Make a specific page id allocated (WAL-replay entry point)."""
        ...

    def __len__(self) -> int:
        """Number of live (allocated, not freed) pages."""
        ...


class MemoryPageStore:
    """In-memory page store used by the experiment harness."""

    def __init__(self, page_size: int = 1024):
        self.page_size = page_size
        self._pages: Dict[int, Optional[bytes]] = {}
        self._free: List[int] = []
        self._next_id = 0

    def allocate(self) -> int:
        """Reserve a new page id (free-list ids are reused first)."""
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = None
        return page_id

    def ensure_allocated(self, page_id: int) -> None:
        """Mark ``page_id`` allocated regardless of history.

        WAL replay applies page images by id; the store must accept
        ids it never handed out (they were allocated by the writer
        that crashed).
        """
        if page_id in self._pages:
            return
        if page_id in self._free:
            self._free.remove(page_id)
        self._next_id = max(self._next_id, page_id + 1)
        self._pages[page_id] = None

    def read(self, page_id: int) -> bytes:
        """Return the page image; raises ``KeyError`` when unwritten."""
        data = self._pages.get(page_id)
        if data is None:
            raise KeyError(f"page {page_id} not written or not allocated")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page image (must be exactly ``page_size`` bytes)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} not allocated")
        if len(data) != self.page_size:
            raise ValueError(
                f"page image of {len(data)} bytes; expected {self.page_size}"
            )
        self._pages[page_id] = data

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} not allocated")
        del self._pages[page_id]
        self._free.append(page_id)

    def __len__(self) -> int:
        return len(self._pages)


class FilePageStore:
    """Page store backed by a real file.

    The file grows in page-size units; a free list is kept in memory
    (it could be persisted in page 0, but persistence of the free list
    is not needed by any experiment -- crash recovery rebuilds it from
    the WAL's FREE records instead).

    ``use_mmap`` switches warm reads to a shared memory mapping of the
    file: a page read becomes one slice instead of ``seek`` + ``read``
    through the buffered file object.  The mapping is rebuilt lazily
    whenever the file has grown past it, and writes performed through
    this store are flushed before the next mapped read so the mapping
    (same file, unified page cache) always observes them.
    """

    def __init__(self, path: str, page_size: int = 1024,
                 readonly: bool = False, use_mmap: bool = False):
        self.page_size = page_size
        self.path = path
        self.readonly = readonly
        self.use_mmap = use_mmap
        if readonly:
            # Per-worker handles of the parallel executor's process
            # mode: each worker opens its own file descriptor on the
            # shared page file, so concurrent readers never share seek
            # state.
            mode = "rb"
        else:
            mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise ValueError(
                f"{path} is {size} bytes, not a multiple of {page_size}"
            )
        self._next_id = size // page_size
        self._allocated = set(range(self._next_id))
        self._free: List[int] = []
        self._mmap: Optional[mmap.mmap] = None
        self._unflushed = False

    def allocate(self) -> int:
        """Reserve a new page id, growing the file if none are free."""
        self._check_writable()
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
            self._file.seek(page_id * self.page_size)
            self._file.write(b"\x00" * self.page_size)
            self._unflushed = True
        self._allocated.add(page_id)
        return page_id

    def ensure_allocated(self, page_id: int) -> None:
        """Make ``page_id`` allocated, extending the file as needed.

        The WAL-replay entry point: recovery re-applies images for
        pages allocated by the crashed writer, which this (fresh)
        handle never handed out.
        """
        self._check_writable()
        if page_id in self._allocated:
            return
        if page_id in self._free:
            self._free.remove(page_id)
        if page_id >= self._next_id:
            self._file.seek(self._next_id * self.page_size)
            self._file.write(
                b"\x00" * (page_id + 1 - self._next_id) * self.page_size
            )
            self._unflushed = True
            self._next_id = page_id + 1
        self._allocated.add(page_id)

    def read(self, page_id: int) -> bytes:
        """Return the page image, via the mapping when ``use_mmap``."""
        self._check(page_id)
        if self.use_mmap:
            data = self._read_mmap(page_id)
            if data is not None:
                return data
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            # A truncated file (partial write, lost tail) must fail
            # loudly here, not as a confusing serializer error later.
            raise PageCorruptionError(
                f"short read of page {page_id} from {self.path}: got "
                f"{len(data)} bytes, expected {self.page_size}",
                page_id=page_id,
            )
        return data

    def _read_mmap(self, page_id: int) -> Optional[bytes]:
        """One-slice read through the mapping; None to fall back.

        Buffered writes through ``self._file`` are flushed first so the
        mapping (same file, unified page cache) observes them; the
        mapping is remapped when the file has grown past its end.
        """
        if self._unflushed:
            self._file.flush()
            self._unflushed = False
        start = page_id * self.page_size
        end = start + self.page_size
        if self._mmap is None or end > len(self._mmap):
            self._remap()
        if self._mmap is None or end > len(self._mmap):
            return None  # file genuinely shorter: buffered path raises
        return bytes(self._mmap[start:end])

    def _remap(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        size = os.fstat(self._file.fileno()).st_size
        if size:
            self._mmap = mmap.mmap(
                self._file.fileno(), size, access=mmap.ACCESS_READ
            )

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page image (must be exactly ``page_size`` bytes)."""
        self._check_writable()
        self._check(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page image of {len(data)} bytes; expected {self.page_size}"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(data)
        self._unflushed = True

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        self._check_writable()
        self._check(page_id)
        self._allocated.remove(page_id)
        self._free.append(page_id)

    def _check(self, page_id: int) -> None:
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} not allocated")

    def _check_writable(self) -> None:
        if self.readonly:
            raise PermissionError(f"{self.path} opened read-only")

    def __len__(self) -> int:
        return len(self._allocated)

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        self._file.flush()
        self._unflushed = False

    def close(self) -> None:
        """Unmap (when mapped) and close the file handle."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        self._file.close()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
