"""Unified error taxonomy for the resilience stack.

The paper's cost model assumes every page read succeeds and every byte
is intact; a served system cannot.  This module is the single place
where the library's failure modes are named, so callers can write
layered handlers::

    try:
        response = service.execute(request)
    except TransientIOError:     # retries exhausted -- back off and retry
        ...
    except PageCorruptionError:  # data is wrong -- page it, do not retry
        ...

Hierarchy
---------

* :class:`ReproError` -- base class of every library-defined error.

  * :class:`StorageError` -- failures of the page storage stack.

    * :class:`TransientIOError` -- a read/write failed but retrying may
      succeed (flaky device, injected fault).  Also an :class:`OSError`,
      so generic I/O handlers keep working.
    * :class:`PageCorruptionError` -- the bytes that came back are not
      the bytes that were written (checksum mismatch, short read, torn
      write, impossible header).  Also a :class:`ValueError`, matching
      the serializer's historical contract.

  * :class:`DeadlineExceeded` -- a query overran its deadline (raised
    from the cooperative cancellation probe between node-pair visits,
    so traversals abort at a consistent point; trees and buffers stay
    usable).  Re-exported by :mod:`repro.core.api` and
    :mod:`repro.service`.
  * :class:`ServiceOverloadError` -- the query service shed the request
    under load (queue depth at or above the shedding threshold).
  * :class:`CatalogError` -- the dataset catalog could not resolve or
    persist an entry (bad schema version, duplicate name, missing page
    file).

    * :class:`UnknownDatasetError` -- a lookup named a dataset or index
      kind the catalog does not hold.  Also a :class:`KeyError`.

  * :class:`CPQLError` -- a CPQL query failed to parse; carries the
    character position of the offending token.  Also a
    :class:`ValueError`; the service answers ``bad_request`` and the
    network edge maps it to HTTP 400.
  * :class:`UnsupportedCapabilityError` -- a request asked an algorithm
    for a capability (range window, color predicates) its registry
    entry does not declare.  Carries the capability name and the list
    of capable algorithms; the service answers ``bad_request`` and the
    network edge maps it to HTTP 400.

Transient faults are *retried* (:class:`repro.storage.buffer.LRUBuffer`
with a :class:`~repro.storage.buffer.RetryPolicy`); corruption is
*detected and surfaced* (CRC32 page checksums, see
``docs/RESILIENCE.md``) -- never silently returned as a wrong answer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error the library defines."""


class StorageError(ReproError):
    """Base class for page-storage failures."""


class TransientIOError(StorageError, OSError):
    """A page operation failed in a way that may succeed on retry.

    Raised by fault-injecting stores (:mod:`repro.storage.faults`) and
    by real stores for retryable OS errors.  The buffer pool retries
    these with bounded exponential backoff before letting them escape.
    """


class PageCorruptionError(StorageError, ValueError):
    """A page's bytes fail validation (checksum, length, or header).

    Carries enough context to identify the damage.  Subclasses
    :class:`ValueError` so pre-taxonomy handlers around the serializer
    keep catching it.
    """

    def __init__(self, message: str, page_id: int | None = None):
        super().__init__(message)
        self.page_id = page_id


class DeadlineExceeded(ReproError):
    """A query overran its deadline.

    Raised from the cooperative cancellation probe between node-pair
    visits, so traversals abort at a consistent point; the trees and
    buffers remain usable.  (Re-exported by ``repro.core.api`` and
    ``repro.service``.)
    """


class UnsupportedCapabilityError(ReproError, ValueError):
    """A request demands a capability its algorithm does not declare.

    Raised at :class:`repro.core.CPQRequest` validation time, so an
    incapable combination never reaches a traversal.  ``capability`` is
    the flag that was missing (``"range"`` or ``"colors"``) and
    ``capable`` the registry algorithms that do declare it -- the
    message lists them so callers can self-serve the fix.  Subclasses
    :class:`ValueError` so pre-existing construction-error handlers
    keep catching it.
    """

    def __init__(self, algorithm: str, capability: str,
                 capable: tuple = ()):
        hint = (
            f"; algorithms supporting it: {', '.join(capable)}"
            if capable else ""
        )
        super().__init__(
            f"algorithm {algorithm!r} does not support "
            f"{capability} queries{hint}"
        )
        self.algorithm = algorithm
        self.capability = capability
        self.capable = tuple(capable)


class CatalogError(ReproError):
    """Base class for dataset-catalog failures.

    Raised by :mod:`repro.catalog` for malformed catalog files,
    unsupported schema versions, duplicate registrations and missing
    page files -- anything that stops a catalog from resolving a name
    to an openable tree.
    """


class UnknownDatasetError(CatalogError, KeyError):
    """A catalog lookup named a dataset (or index kind) it does not hold.

    Carries the missing ``name`` and the catalog's registered names so
    callers can self-serve the fix.  Subclasses :class:`KeyError` to
    match the mapping-like feel of ``catalog.dataset(name)``.
    """

    def __init__(self, name: str, known: tuple = ()):
        hint = (
            f"; registered datasets: {', '.join(known)}"
            if known else "; the catalog is empty"
        )
        # KeyError repr()s its lone arg; go through Exception and keep
        # the message readable.
        Exception.__init__(
            self, f"unknown dataset {name!r}{hint}"
        )
        self.name = name
        self.known = tuple(known)

    def __str__(self) -> str:
        return self.args[0]


class CPQLError(ReproError, ValueError):
    """A CPQL query failed to parse.

    Carries the 0-based character ``position`` of the offending token
    so front ends can point at it; :meth:`caret` renders the standard
    two-line source/caret display.  The service answers ``bad_request``
    and the network edge maps it to HTTP 400, exactly like a
    capability mismatch.
    """

    def __init__(self, message: str, source: str = "", position: int = 0):
        super().__init__(message)
        self.source = source
        self.position = position

    def caret(self) -> str:
        """The query text with a ``^`` under the error position."""
        return f"{self.source}\n{' ' * self.position}^"


class ServiceOverloadError(ReproError):
    """The service shed a request because it is saturated.

    ``queue_depth`` is the depth observed at admission time and
    ``threshold`` the configured shedding bound.
    """

    def __init__(self, queue_depth: int, threshold: int):
        super().__init__(
            f"service overloaded: queue depth {queue_depth} at or above "
            f"shedding threshold {threshold}"
        )
        self.queue_depth = queue_depth
        self.threshold = threshold
