"""Unified error taxonomy for the resilience stack.

The paper's cost model assumes every page read succeeds and every byte
is intact; a served system cannot.  This module is the single place
where the library's failure modes are named, so callers can write
layered handlers::

    try:
        response = service.execute(request)
    except TransientIOError:     # retries exhausted -- back off and retry
        ...
    except PageCorruptionError:  # data is wrong -- page it, do not retry
        ...

Hierarchy
---------

* :class:`ReproError` -- base class of every library-defined error.

  * :class:`StorageError` -- failures of the page storage stack.

    * :class:`TransientIOError` -- a read/write failed but retrying may
      succeed (flaky device, injected fault).  Also an :class:`OSError`,
      so generic I/O handlers keep working.
    * :class:`PageCorruptionError` -- the bytes that came back are not
      the bytes that were written (checksum mismatch, short read, torn
      write, impossible header).  Also a :class:`ValueError`, matching
      the serializer's historical contract.

  * :class:`DeadlineExceeded` -- a query overran its deadline (raised
    from the cooperative cancellation probe between node-pair visits,
    so traversals abort at a consistent point; trees and buffers stay
    usable).  Re-exported by :mod:`repro.core.api` and
    :mod:`repro.service`.
  * :class:`ServiceOverloadError` -- the query service shed the request
    under load (queue depth at or above the shedding threshold).

Transient faults are *retried* (:class:`repro.storage.buffer.LRUBuffer`
with a :class:`~repro.storage.buffer.RetryPolicy`); corruption is
*detected and surfaced* (CRC32 page checksums, see
``docs/RESILIENCE.md``) -- never silently returned as a wrong answer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error the library defines."""


class StorageError(ReproError):
    """Base class for page-storage failures."""


class TransientIOError(StorageError, OSError):
    """A page operation failed in a way that may succeed on retry.

    Raised by fault-injecting stores (:mod:`repro.storage.faults`) and
    by real stores for retryable OS errors.  The buffer pool retries
    these with bounded exponential backoff before letting them escape.
    """


class PageCorruptionError(StorageError, ValueError):
    """A page's bytes fail validation (checksum, length, or header).

    Carries enough context to identify the damage.  Subclasses
    :class:`ValueError` so pre-taxonomy handlers around the serializer
    keep catching it.
    """

    def __init__(self, message: str, page_id: int | None = None):
        super().__init__(message)
        self.page_id = page_id


class DeadlineExceeded(ReproError):
    """A query overran its deadline.

    Raised from the cooperative cancellation probe between node-pair
    visits, so traversals abort at a consistent point; the trees and
    buffers remain usable.  (Re-exported by ``repro.core.api`` and
    ``repro.service``.)
    """


class ServiceOverloadError(ReproError):
    """The service shed a request because it is saturated.

    ``queue_depth`` is the depth observed at admission time and
    ``threshold`` the configured shedding bound.
    """

    def __init__(self, queue_depth: int, threshold: int):
        super().__init__(
            f"service overloaded: queue depth {queue_depth} at or above "
            f"shedding threshold {threshold}"
        )
        self.queue_depth = queue_depth
        self.threshold = threshold
