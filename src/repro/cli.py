"""Command-line interface.

Five subcommands cover the library's workflow end to end::

    repro-cpq generate --kind sequoia --n 10000 --out sites.npy
    repro-cpq generate --kind uniform --n 10000 --overlap 0.5 --out q.npy
    repro-cpq build sites.npy --tree sites.pages
    repro-cpq info --tree sites.pages
    repro-cpq query sites.npy q.npy --k 10 --algorithm heap
    repro-cpq figure fig04 --quick

``query`` accepts either raw point files (trees are built in memory)
or page files produced by ``build``.  Also runnable as
``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.api import ALGORITHMS, k_closest_pairs
from repro.datasets import (
    UNIT_WORKSPACE,
    load_points,
    overlapping_workspace,
    save_points,
    sequoia_like,
    uniform_points,
)
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore


def _meta_path(tree_path: str) -> str:
    return tree_path + ".meta.json"


def _load_tree(path: str) -> RTree:
    """Open a tree from a .pages file, or build one from a points file."""
    if path.endswith(".pages"):
        with open(_meta_path(path)) as handle:
            metadata = json.load(handle)
        store = FilePageStore(path, metadata["page_size"])
        return RTree.from_storage(PagedFile(store), metadata)
    return bulk_load(load_points(path))


def cmd_generate(args: argparse.Namespace) -> int:
    workspace = UNIT_WORKSPACE
    if args.overlap is not None:
        workspace = overlapping_workspace(UNIT_WORKSPACE, args.overlap)
    if args.kind == "uniform":
        points = uniform_points(
            args.n, workspace, seed=args.seed, grid=args.grid
        )
    else:
        points = sequoia_like(args.n, workspace, seed=args.seed)
    save_points(args.out, points)
    print(f"wrote {len(points)} {args.kind} points to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    store = FilePageStore(args.tree, 1024)
    tree = bulk_load(points, file=PagedFile(store))
    with open(_meta_path(args.tree), "w") as handle:
        json.dump(tree.metadata(), handle)
    store.flush()
    store.close()
    print(
        f"built R*-tree over {len(points)} points: height {tree.height}, "
        f"{tree.node_count()} nodes -> {args.tree}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    print(f"tree: {args.tree}")
    print(f"  points:   {len(tree)}")
    print(f"  height:   {tree.height}")
    print(f"  capacity: M={tree.max_entries} m={tree.min_entries}")
    print(f"  variant:  {tree.config.variant}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    tree_p = _load_tree(args.left)
    tree_q = _load_tree(args.right)
    result = k_closest_pairs(
        tree_p,
        tree_q,
        k=args.k,
        algorithm=args.algorithm,
        buffer_pages=args.buffer,
    )
    for rank, pair in enumerate(result.pairs, start=1):
        print(f"{rank:4d}  {pair.p}  {pair.q}  {pair.distance:.9f}")
    print(
        f"# {result.algorithm}: {result.stats.disk_accesses} disk "
        f"accesses, {result.stats.node_pairs_visited} node pairs, "
        f"{result.stats.distance_computations} distance computations"
    )
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    from repro.query import nearest_neighbors

    tree = _load_tree(args.tree)
    found = nearest_neighbors(tree, (args.x, args.y), k=args.k)
    for rank, (distance, entry) in enumerate(found, start=1):
        print(f"{rank:4d}  {entry.point}  oid={entry.oid}  "
              f"{distance:.9f}")
    print(f"# {tree.stats.disk_reads} disk accesses")
    return 0


def cmd_range(args: argparse.Namespace) -> int:
    from repro.geometry.mbr import MBR
    from repro.query import range_query

    tree = _load_tree(args.tree)
    window = MBR((args.xmin, args.ymin), (args.xmax, args.ymax))
    found = range_query(tree, window)
    for entry in found:
        print(f"{entry.point}  oid={entry.oid}")
    print(f"# {len(found)} points, {tree.stats.disk_reads} disk accesses")
    return 0


def cmd_join(args: argparse.Namespace) -> int:
    from repro.query import distance_range_join
    from repro.storage.stats import QueryStats

    tree_p = _load_tree(args.left)
    tree_q = _load_tree(args.right)
    tree_p.file.reset_for_query()
    tree_q.file.reset_for_query()
    stats = QueryStats()
    pairs = distance_range_join(tree_p, tree_q, args.epsilon, stats=stats)
    limit = args.limit if args.limit is not None else len(pairs)
    for pair in pairs[:limit]:
        print(f"{pair.p}  {pair.q}  {pair.distance:.9f}")
    if limit < len(pairs):
        print(f"... and {len(pairs) - limit} more")
    print(f"# {len(pairs)} pairs within {args.epsilon}, "
          f"{stats.disk_accesses} disk accesses")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import run_figure

    table = run_figure(args.figure, quick=args.quick)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cpq",
        description=(
            "K closest pair queries over R*-trees "
            "(Corral et al., SIGMOD 2000 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a point data set"
    )
    generate.add_argument("--kind", choices=("uniform", "sequoia"),
                          default="uniform")
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--overlap", type=float, default=None,
        help="place in a workspace overlapping the unit one by this "
             "portion (0..1)",
    )
    generate.add_argument(
        "--grid", type=int, default=None,
        help="snap coordinates to a grid x grid lattice",
    )
    generate.add_argument("--out", required=True,
                          help="output file (.npy or .csv)")
    generate.set_defaults(func=cmd_generate)

    build = sub.add_parser(
        "build", help="build a persistent R*-tree over a points file"
    )
    build.add_argument("points", help="input points (.npy or .csv)")
    build.add_argument("--tree", required=True,
                       help="output page file (.pages)")
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="describe a built tree")
    info.add_argument("--tree", required=True)
    info.set_defaults(func=cmd_info)

    query = sub.add_parser(
        "query", help="run a K closest pairs query"
    )
    query.add_argument("left", help="points file or .pages tree")
    query.add_argument("right", help="points file or .pages tree")
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--algorithm", choices=ALGORITHMS, default="heap")
    query.add_argument("--buffer", type=int, default=0,
                       help="total LRU buffer pages (B/2 per tree)")
    query.set_defaults(func=cmd_query)

    knn = sub.add_parser("knn", help="k nearest neighbours of a point")
    knn.add_argument("tree", help="points file or .pages tree")
    knn.add_argument("--x", type=float, required=True)
    knn.add_argument("--y", type=float, required=True)
    knn.add_argument("--k", type=int, default=1)
    knn.set_defaults(func=cmd_knn)

    window = sub.add_parser("range", help="window (range) query")
    window.add_argument("tree", help="points file or .pages tree")
    window.add_argument("--xmin", type=float, required=True)
    window.add_argument("--ymin", type=float, required=True)
    window.add_argument("--xmax", type=float, required=True)
    window.add_argument("--ymax", type=float, required=True)
    window.set_defaults(func=cmd_range)

    join = sub.add_parser(
        "join", help="distance range join (all pairs within epsilon)"
    )
    join.add_argument("left", help="points file or .pages tree")
    join.add_argument("right", help="points file or .pages tree")
    join.add_argument("--epsilon", type=float, required=True)
    join.add_argument("--limit", type=int, default=None,
                      help="print at most this many pairs")
    join.set_defaults(func=cmd_join)

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure.add_argument("figure", help="figure id, e.g. fig04")
    figure.add_argument("--quick", action="store_true",
                        help="tiny cardinalities (seconds)")
    figure.add_argument("--csv", default=None,
                        help="also write the table as CSV")
    figure.set_defaults(func=cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
