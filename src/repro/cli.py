"""Command-line interface.

The subcommands cover the library's workflow end to end::

    repro-cpq generate --kind sequoia --n 10000 --out sites.npy
    repro-cpq generate --kind uniform --n 10000 --overlap 0.5 --out q.npy
    repro-cpq build sites.npy --tree sites.pages
    repro-cpq ingest more.npy --tree sites.pages --batch-size 64
    repro-cpq recover --tree sites.pages
    repro-cpq info --tree sites.pages
    repro-cpq query sites.npy q.npy --k 10 --algorithm heap
    repro-cpq explain sites.npy q.npy --k 10 --buffer 64
    repro-cpq batch sites.npy q.npy requests.jsonl --workers 8
    repro-cpq serve sites.npy q.npy --deadline-ms 50 < requests.jsonl
    repro-cpq catalog register parks parks.npy --catalog data/
    repro-cpq sql "SELECT CLOSEST PAIRS K 10 FROM parks, schools" \
        --catalog data/
    repro-cpq figure fig04 --quick

``catalog`` maintains a persisted dataset catalog
(:mod:`repro.catalog`): named datasets with one or more built indexes
(STR-packed, grid-packed, dynamic).  ``query``, ``explain`` and
``serve-net`` accept catalog names wherever they accept files when
``--catalog`` is given; raw path arguments still work one release
longer but warn with ``DeprecationWarning`` and are routed through the
same catalog machinery.  ``sql`` runs CPQL statements
(:mod:`repro.query.cpql`) against a catalog, in-process or against a
``serve-net`` endpoint.  ``explain`` runs the same query traced
(:mod:`repro.obs`) and prints the span tree.  ``batch`` and ``serve``
run JSONL request streams through the concurrent query service
(:mod:`repro.service`); both emit one JSON response per request plus a
serve-stats metrics snapshot, and ``--trace out.jsonl`` records every
request's spans.  Also runnable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import List, Optional

from repro.core.api import ALGORITHMS, CPQRequest, k_closest_pairs
from repro.datasets import (
    UNIT_WORKSPACE,
    load_points,
    overlapping_workspace,
    save_points,
    sequoia_like,
    uniform_points,
)
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore


def _meta_path(tree_path: str) -> str:
    return tree_path + ".meta.json"


def _wal_path(tree_path: str) -> str:
    return tree_path + ".wal"


def _load_tree(path: str, use_mmap: bool = False) -> RTree:
    """Open a tree from a .pages file, or build one from a points file.

    ``.pages`` inputs reopen through the catalog's
    :func:`repro.catalog.open_tree` -- the same single reopen path the
    service and the shard workers use.
    """
    if path.endswith(".pages"):
        from repro.catalog import open_tree

        return open_tree(path, use_mmap=use_mmap)
    return bulk_load(load_points(path))


def _get_catalog(args: argparse.Namespace):
    """The ``--catalog`` flag as a loaded :class:`Catalog`, or None."""
    path = getattr(args, "catalog", None)
    if path is None:
        return None
    from repro.catalog import Catalog

    return Catalog(path)


def _deprecate_path_arg(ref: str) -> None:
    warnings.warn(
        f"raw path inputs like {ref!r} are deprecated; register the "
        f"dataset in a catalog (repro-cpq catalog register) and pass "
        f"its name with --catalog.  Path arguments will be removed "
        f"one release from now.",
        DeprecationWarning,
        stacklevel=3,
    )


def _open_input(
    ref: str, catalog, *, use_mmap: bool = False, warn_paths: bool = True
) -> RTree:
    """Resolve one dataset input: catalog name, ``.pages``, or points.

    Catalog names win; path arguments (deprecated on the commands that
    pass ``warn_paths=True``) route through the same catalog machinery
    -- a ``.pages`` file is adopted into an in-memory catalog entry
    and opened with :meth:`~repro.catalog.Catalog.open_dataset`, so
    flag handling cannot diverge from named datasets.
    """
    from repro.catalog import Catalog
    from repro.errors import UnknownDatasetError

    if catalog is not None and ref in catalog:
        return catalog.open_dataset(ref, use_mmap=use_mmap or None)
    if not os.path.exists(ref):
        if catalog is not None:
            raise UnknownDatasetError(ref, tuple(catalog.names()))
        raise FileNotFoundError(f"no such input: {ref}")
    if warn_paths:
        _deprecate_path_arg(ref)
    if ref.endswith(".pages"):
        scratch = Catalog(ref + ".catalog.json")
        scratch.adopt_pages("_adopted", ref, use_mmap=use_mmap,
                            persist=False)
        return scratch.open_dataset("_adopted")
    return bulk_load(load_points(ref))


def cmd_generate(args: argparse.Namespace) -> int:
    workspace = UNIT_WORKSPACE
    if args.overlap is not None:
        workspace = overlapping_workspace(UNIT_WORKSPACE, args.overlap)
    if args.kind == "uniform":
        points = uniform_points(
            args.n, workspace, seed=args.seed, grid=args.grid
        )
    else:
        points = sequoia_like(args.n, workspace, seed=args.seed)
    save_points(args.out, points)
    print(f"wrote {len(points)} {args.kind} points to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    store = FilePageStore(args.tree, 1024)
    tree = bulk_load(points, file=PagedFile(store))
    with open(_meta_path(args.tree), "w") as handle:
        json.dump(tree.metadata(), handle)
    store.flush()
    store.close()
    print(
        f"built R*-tree over {len(points)} points: height {tree.height}, "
        f"{tree.node_count()} nodes -> {args.tree}"
    )
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Stream points into a live tree through WAL-protected batches.

    Opens (or creates) a ``.pages`` tree with live mutation enabled,
    then inserts the input points in batches of ``--batch-size``: each
    batch is one WAL-logged commit and one generation bump.  A normal
    run flushes the page file, rewrites the ``.meta.json`` sidecar at
    the final committed state and checkpoints the WAL (unless
    ``--keep-wal``).  ``--crash-after N`` is the chaos hook: after N
    committed batches it applies part of the next batch and dies via
    ``os._exit`` -- no flush, no commit record -- leaving exactly the
    torn state ``repro-cpq recover`` must replay.
    """
    from repro.rtree.tree import RTreeConfig
    from repro.storage.wal import WriteAheadLog

    points = load_points(args.points)
    pages = args.tree
    if os.path.exists(pages):
        with open(_meta_path(pages)) as handle:
            metadata = json.load(handle)
        store = FilePageStore(pages, metadata["page_size"],
                              use_mmap=args.mmap)
        tree = RTree.from_storage(PagedFile(store), metadata)
    else:
        store = FilePageStore(pages, 1024, use_mmap=args.mmap)
        tree = RTree(RTreeConfig(), PagedFile(store))
        with open(_meta_path(pages), "w") as handle:
            json.dump(tree.metadata(), handle)
    wal = WriteAheadLog(args.wal or _wal_path(pages),
                        sync_mode=args.sync)
    tree.enable_live_mutation(wal)

    start_oid = args.start_oid if args.start_oid is not None else len(tree)
    batches = 0
    inserted = 0
    for offset in range(0, len(points), args.batch_size):
        chunk = points[offset:offset + args.batch_size]
        if args.crash_after is not None and batches >= args.crash_after:
            # Apply part of a batch, then die without COMMIT or flush:
            # the WAL tail ends mid-batch and the page file may hold
            # unflushed copy-on-write pages nothing references.
            from repro.rtree.entries import LeafEntry

            tree._begin_batch()
            for i, point in enumerate(chunk):
                tree._batch_ops += 1
                tree._count += 1
                tree._insert_entry(
                    LeafEntry(tuple(float(v) for v in point),
                              start_oid + inserted + i), 0,
                )
            # Die mid-commit: the batch's WRITE records reach the log
            # but no COMMIT record ever does.
            for page_id in sorted(tree._batch_pages):
                node = tree._nodes.get(page_id)
                if node is not None:
                    wal.log_write(page_id, tree._serialize_node(node))
            wal.sync()
            print(f"# simulating crash mid-batch after {batches} "
                  f"committed batches", file=sys.stderr, flush=True)
            os._exit(1)
        with tree.batch():
            for i, point in enumerate(chunk):
                tree.insert(tuple(float(v) for v in point),
                            start_oid + inserted + i)
        batches += 1
        inserted += len(chunk)

    store.flush()
    with open(_meta_path(pages), "w") as handle:
        json.dump(tree.metadata(), handle)
    if not args.keep_wal:
        wal.checkpoint()
    wal.close()
    print(f"ingested {inserted} points in {batches} batches -> {pages} "
          f"(generation {tree.generation}, {len(tree)} total)")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Replay a WAL onto a page file after a crash.

    Applies every committed batch, truncates the torn tail, rewrites
    the ``.meta.json`` sidecar at the recovered state and reports what
    was replayed.  Idempotent: re-running recovery replays the same
    committed images onto the same pages.
    """
    from repro.storage.wal import recover_tree

    pages = args.tree
    wal_path = args.wal or _wal_path(pages)
    if not os.path.exists(wal_path):
        print(f"recover: no WAL at {wal_path}", file=sys.stderr)
        return 2
    fallback = None
    meta_path = _meta_path(pages)
    if os.path.exists(meta_path):
        with open(meta_path) as handle:
            fallback = json.load(handle)
    page_size = (fallback or {}).get("page_size", 1024)
    dimension = (fallback or {}).get("dimension", 2)
    variant = (fallback or {}).get("variant", "rstar")
    tree, result = recover_tree(
        pages, wal_path, page_size=page_size, dimension=dimension,
        variant=variant, use_mmap=args.mmap, fallback_metadata=fallback,
    )
    print(f"# WAL: {result.batches_applied} committed batches replayed, "
          f"{result.pages_written} page images applied, "
          f"{result.discarded_batches} uncommitted discarded, "
          f"torn tail: {'yes' if result.torn else 'no'}")
    if tree is None:
        print("recover: no committed state in the WAL and no "
              ".meta.json fallback", file=sys.stderr)
        return 1
    with open(meta_path, "w") as handle:
        json.dump(tree.metadata(), handle)
    print(f"recovered {pages} at generation {tree.generation}: "
          f"{len(tree)} points, height {tree.height}")
    tree.file.store.close()
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    print(f"tree: {args.tree}")
    print(f"  points:   {len(tree)}")
    print(f"  height:   {tree.height}")
    print(f"  capacity: M={tree.max_entries} m={tree.min_entries}")
    print(f"  variant:  {tree.config.variant}")
    print(f"  generation: {tree.generation}")
    return 0


#: Exit code for a request that names an algorithm lacking a required
#: capability (range/colored queries on an incapable traversal).
#: Distinct from 1 (runtime failure) and 2 (bad invocation) so scripts
#: can tell "pick another algorithm" from "something broke".
EXIT_UNSUPPORTED_CAPABILITY = 3


def _parse_range_arg(text: Optional[str], mode: str):
    """Parse ``--range "xmin,ymin,xmax,ymax"`` into a RangeSpec.

    Accepts any even number of comma-separated floats: the first half
    is the low corner, the second half the high corner (corners are
    sorted by the spec itself, so reversed windows are fine).
    """
    if text is None:
        return None
    from repro.core.constraints import RangeSpec

    values = [float(part) for part in text.split(",") if part.strip()]
    if len(values) < 2 or len(values) % 2 != 0:
        raise ValueError(
            f"--range wants an even number of coordinates "
            f"(lo corner then hi corner), got {len(values)}"
        )
    half = len(values) // 2
    return RangeSpec(lo=tuple(values[:half]), hi=tuple(values[half:]),
                     mode=mode)


def _parse_colors_arg(text: Optional[str], distinct: bool):
    """Parse ``--colors "MOD[:P_RESIDUES[:Q_RESIDUES]]"``.

    Examples: ``--colors 4`` (4 categories, no residue filter),
    ``--colors 4:1,3`` (P restricted to categories 1 and 3),
    ``--colors 4:1,3:0,2`` (both sides restricted).  An empty residue
    list (``4::0,2``) leaves that side unrestricted.
    """
    if text is None:
        if distinct:
            raise ValueError("--distinct requires --colors")
        return None
    from repro.core.constraints import ColorSpec

    parts = text.split(":")
    if len(parts) > 3:
        raise ValueError(
            f"--colors wants MOD[:P_RESIDUES[:Q_RESIDUES]], got {text!r}"
        )

    def residues(field: Optional[str]):
        if field is None or not field.strip():
            return None
        return tuple(int(x) for x in field.split(",") if x.strip())

    return ColorSpec(
        modulus=int(parts[0]),
        colors_p=residues(parts[1] if len(parts) > 1 else None),
        colors_q=residues(parts[2] if len(parts) > 2 else None),
        distinct=distinct,
    )


def _constraints_from_args(args: argparse.Namespace):
    """Build (RangeSpec | None, ColorSpec | None) from CLI flags."""
    range_spec = _parse_range_arg(getattr(args, "range", None),
                                  getattr(args, "range_mode", "both"))
    color_spec = _parse_colors_arg(getattr(args, "colors", None),
                                   getattr(args, "distinct", False))
    return range_spec, color_spec


def cmd_query(args: argparse.Namespace) -> int:
    from repro.errors import CatalogError, UnsupportedCapabilityError

    try:
        catalog = _get_catalog(args)
        tree_p = _open_input(args.left, catalog, use_mmap=args.mmap)
        tree_q = _open_input(args.right, catalog, use_mmap=args.mmap)
    except (CatalogError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        range_spec, color_spec = _constraints_from_args(args)
        request = CPQRequest(
            k=args.k,
            algorithm=args.algorithm,
            buffer_pages=args.buffer,
            use_vectorized=not args.scalar,
            workers=args.workers,
            range=range_spec,
            colors=color_spec,
        )
        result = k_closest_pairs(tree_p, tree_q, request=request)
    except UnsupportedCapabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNSUPPORTED_CAPABILITY
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for rank, pair in enumerate(result.pairs, start=1):
        print(f"{rank:4d}  {pair.p}  {pair.q}  {pair.distance:.9f}")
    print(
        f"# {result.algorithm}: {result.stats.disk_accesses} disk "
        f"accesses, {result.stats.node_pairs_visited} node pairs, "
        f"{result.stats.distance_computations} distance computations"
    )
    if range_spec is not None or color_spec is not None:
        print(f"# constraints: range={range_spec} colors={color_spec}")
    rcp = result.stats.extra.get("rcp")
    if rcp:
        print(f"# rcp: source={rcp['source']} "
              f"windows={rcp['stored_windows']} hits={rcp['hits']} "
              f"containment={rcp['containment_hits']}")
    parallel = result.stats.extra.get("parallel")
    if parallel:
        print(
            f"# parallel: {parallel['workers']} workers, "
            f"{parallel['tasks_completed']}/{parallel['tasks']} tasks "
            f"({parallel['tasks_skipped']} pruned)"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Run one K-CPQ fully traced and print the span tree.

    The profiling counterpart of ``query``: same query surface, but
    the output is an ``EXPLAIN ANALYZE``-style tree showing where the
    query spent its time and pages (planner decision, traversal,
    heap ops, per-tree I/O).  ``--algorithm auto`` additionally runs
    the cost-model planner and shows its evidence.
    """
    from repro.analysis.cost_model import TreeShape
    from repro.errors import CatalogError, UnsupportedCapabilityError
    from repro.obs import Tracer, render_trace, write_trace_jsonl
    from repro.service.planner import Planner

    try:
        catalog = _get_catalog(args)
        tree_p = _open_input(args.left, catalog)
        tree_q = _open_input(args.right, catalog)
    except (CatalogError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        range_spec, color_spec = _constraints_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer()
    try:
        with tracer.span("request", kind="cpq", k=args.k) as root:
            algorithm = args.algorithm
            if algorithm == "auto":
                def shape(tree):
                    if tree.root_id is None or tree.dimension != 2:
                        return None
                    return TreeShape.from_tree(tree)

                decision = Planner().plan(
                    shape(tree_p), shape(tree_q), args.buffer, k=args.k,
                    tracer=tracer, range_spec=range_spec,
                )
                algorithm = decision.algorithm
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=args.k, algorithm=algorithm,
                    buffer_pages=args.buffer,
                    workers=args.workers,
                    range=range_spec, colors=color_spec,
                ),
                tracer=tracer,
            )
            root.annotate(algorithm=result.algorithm,
                          pairs=len(result.pairs))
    except UnsupportedCapabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNSUPPORTED_CAPABILITY
    trace = tracer.pop_traces()[-1]
    for rank, pair in enumerate(result.pairs, start=1):
        print(f"{rank:4d}  {pair.p}  {pair.q}  {pair.distance:.9f}")
    print()
    print(render_trace(trace, show_durations=not args.no_times))
    print(
        f"# {result.algorithm}: {result.stats.disk_accesses} disk "
        f"accesses, {result.stats.buffer_hits} buffer hits, "
        f"{result.stats.node_pairs_visited} node pairs"
    )
    if args.trace:
        lines = write_trace_jsonl(args.trace, [trace])
        print(f"# wrote {lines} spans to {args.trace}", file=sys.stderr)
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    from repro.query import nearest_neighbors

    tree = _load_tree(args.tree)
    found = nearest_neighbors(tree, (args.x, args.y), k=args.k)
    for rank, (distance, entry) in enumerate(found, start=1):
        print(f"{rank:4d}  {entry.point}  oid={entry.oid}  "
              f"{distance:.9f}")
    print(f"# {tree.stats.disk_reads} disk accesses")
    return 0


def cmd_range(args: argparse.Namespace) -> int:
    from repro.geometry.mbr import MBR
    from repro.query import range_query

    tree = _load_tree(args.tree)
    window = MBR((args.xmin, args.ymin), (args.xmax, args.ymax))
    found = range_query(tree, window)
    for entry in found:
        print(f"{entry.point}  oid={entry.oid}")
    print(f"# {len(found)} points, {tree.stats.disk_reads} disk accesses")
    return 0


def cmd_join(args: argparse.Namespace) -> int:
    from repro.query import distance_range_join
    from repro.storage.stats import QueryStats

    tree_p = _load_tree(args.left)
    tree_q = _load_tree(args.right)
    tree_p.file.reset_for_query()
    tree_q.file.reset_for_query()
    stats = QueryStats()
    pairs = distance_range_join(tree_p, tree_q, args.epsilon, stats=stats)
    limit = args.limit if args.limit is not None else len(pairs)
    for pair in pairs[:limit]:
        print(f"{pair.p}  {pair.q}  {pair.distance:.9f}")
    if limit < len(pairs):
        print(f"... and {len(pairs) - limit} more")
    print(f"# {len(pairs)} pairs within {args.epsilon}, "
          f"{stats.disk_accesses} disk accesses")
    return 0


def _parse_service_request(obj: dict, default_pair: str = "default"):
    """Decode one JSONL request object into a service request."""
    from repro.service import CPQRequest, KNNRequest, RangeRequest

    op = obj.get("op", "cpq")
    common = {
        "pair": obj.get("pair", default_pair),
        "deadline_ms": obj.get("deadline_ms"),
        "use_cache": bool(obj.get("use_cache", True)),
    }
    if op == "cpq":
        range_obj = obj.get("range")
        if isinstance(range_obj, dict):
            from repro.core.constraints import RangeSpec

            range_obj = RangeSpec(
                lo=tuple(range_obj["lo"]), hi=tuple(range_obj["hi"]),
                mode=range_obj.get("mode", "both"),
            )
        elif range_obj is not None:
            # [[lo...], [hi...]] shorthand; the request normalises it.
            range_obj = (tuple(range_obj[0]), tuple(range_obj[1]))
        return CPQRequest(
            k=int(obj.get("k", 1)),
            algorithm=obj.get("algorithm", "auto"),
            tie_break=obj.get("tie_break"),
            maxmax_pruning=bool(obj.get("maxmax_pruning", True)),
            use_vectorized=bool(obj.get("use_vectorized", True)),
            range=range_obj,
            colors=obj.get("colors"),
            **common,
        )
    if op == "knn":
        return KNNRequest(
            point=tuple(obj["point"]),
            k=int(obj.get("k", 1)),
            side=obj.get("side", "p"),
            **common,
        )
    if op == "range":
        return RangeRequest(
            lo=tuple(obj["lo"]),
            hi=tuple(obj["hi"]),
            side=obj.get("side", "p"),
            **common,
        )
    raise ValueError(f"unknown op {op!r}; expected cpq, knn or range")


def _response_json(response) -> dict:
    """Flatten a QueryResponse to a JSON-serialisable dict."""
    out = {
        "status": response.status,
        "kind": response.kind,
        "cached": response.cached,
        "latency_ms": round(response.latency_ms, 3),
        "disk_reads": response.disk_reads,
    }
    if response.algorithm is not None:
        out["algorithm"] = response.algorithm
    if response.error is not None:
        out["error"] = response.error
    # Resilience annotations, only when they carry signal (keeps the
    # common-case line format stable).
    if response.stale:
        out["stale"] = True
    if response.read_retries:
        out["read_retries"] = response.read_retries
    if not response.ok:
        return out
    if response.kind == "cpq":
        out["pairs"] = [
            {"distance": p.distance, "p": list(p.p), "q": list(p.q),
             "p_oid": p.p_oid, "q_oid": p.q_oid}
            for p in response.result.pairs
        ]
    elif response.kind == "knn":
        out["neighbors"] = [
            {"distance": d, "point": list(e.point), "oid": e.oid}
            for d, e in response.result
        ]
    else:
        out["points"] = [
            {"point": list(e.point), "oid": e.oid}
            for e in response.result
        ]
    return out


def _make_service(args: argparse.Namespace):
    """Build a QueryService over the two trees named by the args."""
    from repro.obs import Tracer
    from repro.service import QueryService

    tree_p = _load_tree(args.left)
    tree_q = _load_tree(args.right)
    if args.buffer:
        tree_p.file.set_buffer_capacity(args.buffer // 2)
        tree_q.file.set_buffer_capacity(args.buffer // 2)
    service = QueryService(
        workers=args.workers,
        queue_size=args.queue_size,
        cache_size=args.cache_size,
        default_deadline_ms=args.deadline_ms,
        tracer=Tracer() if args.trace else None,
        max_query_workers=getattr(args, "parallel", 1),
    )
    service.register_pair(args.pair, tree_p, tree_q)
    return service


def _emit_trace(service, args: argparse.Namespace) -> None:
    """Write the service tracer's collected spans as JSONL."""
    if not args.trace:
        return
    from repro.obs import write_trace_jsonl

    lines = write_trace_jsonl(args.trace, service.tracer.pop_traces())
    print(f"# wrote {lines} spans to {args.trace}", file=sys.stderr)


def _emit_serve_stats(service, args: argparse.Namespace) -> None:
    snapshot = service.snapshot()
    rendered = json.dumps(snapshot, indent=2, sort_keys=True)
    print("# serve-stats", file=sys.stderr)
    print(rendered, file=sys.stderr)
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            handle.write(rendered + "\n")


def cmd_batch(args: argparse.Namespace) -> int:
    service = _make_service(args)
    try:
        if args.requests == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(args.requests) as handle:
                lines = handle.read().splitlines()
        requests = [
            _parse_service_request(json.loads(line), args.pair)
            for line in lines
            if line.strip()
        ]
        handles = service.submit_batch(requests)
        responses = [handle.result() for handle in handles]
        sink = open(args.out, "w") if args.out else sys.stdout
        try:
            for response in responses:
                print(json.dumps(_response_json(response)), file=sink)
        finally:
            if args.out:
                sink.close()
        statuses: dict = {}
        for response in responses:
            statuses[response.status] = statuses.get(response.status, 0) + 1
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(statuses.items())
        )
        print(f"# batch: {len(responses)} requests ({summary}) on "
              f"{args.workers} workers", file=sys.stderr)
        _emit_serve_stats(service, args)
        _emit_trace(service, args)
    finally:
        service.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    service = _make_service(args)
    try:
        for line in sys.stdin:
            if not line.strip():
                continue
            try:
                request = _parse_service_request(json.loads(line), args.pair)
            except (ValueError, KeyError) as exc:
                print(json.dumps({"status": "error",
                                  "error": f"bad request: {exc}"}),
                      flush=True)
                continue
            response = service.execute(request)
            print(json.dumps(_response_json(response)), flush=True)
        _emit_serve_stats(service, args)
        _emit_trace(service, args)
    finally:
        service.close()
    return 0


def _file_backed_tree(path: str, scratch_dir: str, name: str) -> RTree:
    """Open (or materialise) a tree the shard tier can reopen.

    Shard processes reopen trees through their own ``FilePageStore``
    descriptors, so the tree must live in a ``.pages`` file; a raw
    points input is bulk-loaded into ``scratch_dir`` first.
    """
    if path.endswith(".pages"):
        return _load_tree(path)
    import os

    pages = os.path.join(scratch_dir, name + ".pages")
    store = FilePageStore(pages, page_size=1024)
    return bulk_load(load_points(path),
                     file=PagedFile(store, page_size=1024))


def cmd_serve_net(args: argparse.Namespace) -> int:
    import tempfile
    import time as time_mod

    from repro.errors import CatalogError
    from repro.net import NetServer, ShardManager, tree_spec
    from repro.net.shard import TreeSpec
    from repro.service import QueryService

    catalog = _get_catalog(args)
    pair = args.pair
    read_latency = args.shard_read_latency_ms / 1000.0
    if (catalog is not None
            and args.left in catalog and args.right in catalog):
        # Catalog mode: shard specs come straight from the entries --
        # page path, snapshot generation, mmap/legacy flags included.
        try:
            specs = [
                catalog.tree_spec(
                    name,
                    buffer_capacity=args.shard_buffer,
                    read_latency=read_latency,
                )
                for name in (args.left, args.right)
            ]
        except CatalogError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if pair == "default":
            # CPQL derives pair names as "left,right"; match it so
            # SQL queries route through the shard tier.
            pair = f"{args.left},{args.right}"
    else:
        if catalog is not None and not (
            os.path.exists(args.left) and os.path.exists(args.right)
        ):
            known = ", ".join(catalog.names()) or "(empty catalog)"
            print(f"error: inputs are neither registered datasets nor "
                  f"files; catalog knows: {known}", file=sys.stderr)
            return 2
        _deprecate_path_arg(args.left)
        scratch = tempfile.mkdtemp(prefix="repro-serve-net-")
        specs = []
        for name, path in (("p", args.left), ("q", args.right)):
            tree = _file_backed_tree(path, scratch, name)
            spec = tree_spec(tree)
            specs.append(TreeSpec(
                spec.path, spec.page_size, spec.metadata,
                buffer_capacity=args.shard_buffer,
                read_latency=read_latency,
            ))
    manager = ShardManager(
        specs[0], specs[1],
        shards=args.shards,
        pair=pair,
        on_failure=args.on_failure,
    )
    service = QueryService(
        workers=args.workers,
        queue_size=args.queue_size,
        cache_size=args.cache_size,
        default_deadline_ms=args.deadline_ms,
        cpq_executor=manager.service_executor(),
    )
    # Lifecycle self-healing events (supervisor respawns, hot reloads)
    # flow into /stats; query-scoped events (retries, hedges) are
    # forwarded per-query by the engine, so only lifecycle kinds pass
    # here or they would double-count.
    lifecycle = ("respawns", "reloads", "probe_misses")
    manager.metrics_sink = (
        lambda kind, n: service.metrics.record_net_event(kind, n)
        if kind in lifecycle else None
    )
    service.register_pair(pair, manager.tree_p, manager.tree_q)
    if catalog is not None:
        # /v1/sql statements addressing other catalog datasets resolve
        # in-process; the sharded pair keeps its scatter-gather path.
        service.attach_catalog(catalog)
    server = NetServer(
        service, host=args.host, port=args.port, manager=manager,
    ).start_in_thread()
    # One machine-readable line so harnesses can find the bound port.
    print(json.dumps({
        "listening": f"{args.host}:{server.port}",
        "host": args.host,
        "port": server.port,
        "shards": args.shards,
        "pair": pair,
        "on_failure": args.on_failure,
    }), flush=True)
    try:
        if args.run_seconds is not None:
            time_mod.sleep(args.run_seconds)
        else:
            while True:
                time_mod.sleep(1.0)
    except KeyboardInterrupt:
        print("# interrupted; draining", file=sys.stderr)
    finally:
        server.close()
    print("# closed cleanly", file=sys.stderr)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.net.loadgen import run_loadgen
    from repro.service import CPQRequest as ServiceCPQ

    templates = [
        ServiceCPQ(
            pair=args.pair,
            k=args.k,
            algorithm=algorithm,
            use_cache=args.use_cache,
        )
        for algorithm in args.algorithms.split(",")
    ]
    summary = run_loadgen(
        args.host, args.port, templates,
        clients=args.clients,
        duration_s=args.duration,
        warmup_s=args.warmup,
    )
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
    if summary["error_rate"] > args.max_error_rate:
        print(f"# error rate {summary['error_rate']:.4f} exceeds "
              f"--max-error-rate {args.max_error_rate:g}",
              file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a K-CPQ workload under an injected fault schedule.

    First computes the fault-free answer for every requested
    algorithm, then swaps both trees' page stores for seeded
    :class:`~repro.storage.faults.FaultyPageStore` wrappers and reruns
    the same queries.  An algorithm *survives* when it returns exactly
    the baseline pairs; a typed storage error (corruption detected,
    retries exhausted) is reported as a loud failure; anything else is
    a bug.  Exit status 0 only when every run survives -- the bundled
    schedules are all survivable by construction (transient streaks
    shorter than the retry budget, wire bit-flips healed by the
    checksum re-read), so any nonzero exit is a real regression.
    """
    import dataclasses

    from repro.errors import StorageError
    from repro.storage.faults import (
        SCHEDULES,
        unwrap_tree_store,
        wrap_tree_store,
    )

    if args.list_schedules:
        for name, plan in sorted(SCHEDULES.items()):
            print(f"{name:10s} transient={plan.p_transient:g} "
                  f"latency={plan.p_latency:g} bitflip={plan.p_bitflip:g} "
                  f"torn={plan.p_torn_write:g}")
        return 0
    if args.schedule not in SCHEDULES:
        print(f"unknown schedule {args.schedule!r}; choose from "
              f"{', '.join(sorted(SCHEDULES))}", file=sys.stderr)
        return 2
    if args.left is None or args.right is None:
        print("chaos: left and right inputs are required",
              file=sys.stderr)
        return 2

    tree_p = _load_tree(args.left)
    tree_q = _load_tree(args.right)
    if args.buffer:
        tree_p.file.set_buffer_capacity(args.buffer // 2)
        tree_q.file.set_buffer_capacity(args.buffer // 2)
    # The paper's five two-tree algorithms; the registry's extensions
    # (self/semi/multiway/incremental) have their own call shapes and
    # are opt-in via --algorithms.
    core = ("naive", "exh", "sim", "std", "heap")
    algorithms = (
        tuple(args.algorithms.split(","))
        if args.algorithms else core
    )
    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            print(f"unknown algorithm {algorithm!r}", file=sys.stderr)
            return 2

    baselines = {}
    for algorithm in algorithms:
        result = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=args.k, algorithm=algorithm),
        )
        baselines[algorithm] = result.pairs

    plan = dataclasses.replace(SCHEDULES[args.schedule], seed=args.seed)
    wrapper_p = wrap_tree_store(tree_p, plan)
    wrapper_q = wrap_tree_store(
        tree_q, dataclasses.replace(plan, seed=args.seed + 1)
    )
    failures = []
    retries = corruption = 0
    try:
        for algorithm in algorithms:
            for run in range(args.repeat):
                try:
                    result = k_closest_pairs(
                        tree_p, tree_q,
                        request=CPQRequest(k=args.k, algorithm=algorithm),
                    )
                except StorageError as exc:
                    failures.append(algorithm)
                    print(f"{algorithm:6s} run {run}: LOUD FAILURE "
                          f"({type(exc).__name__}: {exc})")
                else:
                    if result.pairs == baselines[algorithm]:
                        print(f"{algorithm:6s} run {run}: survived "
                              f"(identical to fault-free baseline)")
                    else:
                        failures.append(algorithm)
                        print(f"{algorithm:6s} run {run}: WRONG ANSWER "
                              f"under faults -- this is a bug")
                # Each run resets the trees' IOStats on entry, so the
                # counters read here belong to this run alone.
                retries += (tree_p.stats.read_retries
                            + tree_q.stats.read_retries)
                corruption += (tree_p.stats.corrupt_reads
                               + tree_q.stats.corrupt_reads)
    finally:
        unwrap_tree_store(tree_p)
        unwrap_tree_store(tree_q)
    faults = wrapper_p.faults
    faults_q = wrapper_q.faults
    print(f"# schedule {args.schedule!r} seed {args.seed}: "
          f"{faults.transient_raised + faults_q.transient_raised} "
          f"transient errors, "
          f"{faults.bits_flipped + faults_q.bits_flipped} bit flips, "
          f"{faults.latency_spikes + faults_q.latency_spikes} "
          f"latency spikes over "
          f"{faults.reads + faults_q.reads} reads")
    print(f"# recovery: {retries} read retries, "
          f"{corruption} corrupt pages detected and re-read")
    total = len(algorithms) * args.repeat
    print(f"# {total - len(failures)}/{total} runs survived")
    return 1 if failures else 0


def _chaos_net_round(schedule: str, plan, shards: int,
                     args: argparse.Namespace, totals: dict) -> List[str]:
    """One full-stack chaos round: one fault schedule at one shard count.

    Builds fresh file-backed trees, computes serial baselines, then
    serves them through NetServer + ShardManager with the faulty wire
    while a writer thread ingests into P under WAL protection with a
    background checkpointer.  After ingest it hot-reloads the shards
    onto the new pinned generation and re-verifies against a fresh
    serial recompute.  Returns the round's divergences (empty =
    survived).
    """
    import shutil
    import tempfile
    import threading
    import time as time_mod

    from repro.net import NetClient, NetServer, ShardManager, tree_spec
    from repro.net.faults import FaultyShardTransport
    from repro.net.retry import HedgePolicy, RetryPolicy
    from repro.service import CPQRequest as ServiceCPQ, QueryService
    from repro.storage.wal import WALCheckpointer, WriteAheadLog

    core = ("naive", "exh", "sim", "std", "heap")
    problems: List[str] = []
    scratch = tempfile.mkdtemp(prefix="repro-chaos-net-")
    manager = server = client = checkpointer = None
    try:
        # Fresh trees per round: P gets live mutation + WAL, Q stays
        # static; both are file-backed so shard processes reopen them.
        points_p = uniform_points(args.n, UNIT_WORKSPACE,
                                  seed=plan.seed + 11)
        points_q = uniform_points(args.n, UNIT_WORKSPACE,
                                  seed=plan.seed + 23)
        p_path = os.path.join(scratch, "p.pages")
        q_path = os.path.join(scratch, "q.pages")
        tree_p = bulk_load(points_p,
                           file=PagedFile(FilePageStore(p_path, 1024)))
        tree_q = bulk_load(points_q,
                           file=PagedFile(FilePageStore(q_path, 1024)))
        tree_q.file.store.flush()
        meta_p = _meta_path(p_path)
        with open(meta_p, "w") as handle:
            json.dump(tree_p.metadata(), handle)
        wal = WriteAheadLog(_wal_path(p_path), sync_mode="none")
        tree_p.enable_live_mutation(wal)
        # Pin the serving generation for the whole faulted phase: the
        # writer keeps committing, but no page a shard can reach is
        # reclaimed until after the hot reload below.
        writer_pin = tree_p.pin()

        spec_p = tree_spec(tree_p, buffer_capacity=32)
        spec_q = tree_spec(tree_q, buffer_capacity=32)
        reader_p, reader_q = spec_p.open(), spec_q.open()
        baselines = {
            algorithm: k_closest_pairs(
                reader_p, reader_q,
                request=CPQRequest(k=args.k, algorithm=algorithm),
            ).pairs
            for algorithm in core
        }

        transport = FaultyShardTransport(plan)
        manager = ShardManager(
            spec_p, spec_q,
            shards=shards,
            pair="default",
            on_failure="recover",
            shard_timeout_s=args.shard_timeout,
            attempt_timeout_s=args.attempt_timeout,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                     max_delay_s=0.1),
            hedge_policy=HedgePolicy(floor_s=args.hedge_floor_ms / 1000.0,
                                     min_samples=4),
            transport=transport,
            probe_interval_s=0.25,
            seed=plan.seed,
        )
        service = QueryService(
            workers=4, queue_size=128, cache_size=0,
            cpq_executor=manager.service_executor(),
        )
        service.register_pair("default", manager.tree_p, manager.tree_q)
        server = NetServer(service, manager=manager, wal=wal)
        server.start_in_thread()
        client = NetClient("127.0.0.1", server.port, timeout_s=60.0)

        # Background checkpointing: once the ingest below pushes the
        # log past the threshold, the checkpointer flushes the page
        # store, rewrites the sidecar and empties the log -- the event
        # that makes the post-ingest hot reload meaningful.
        checkpointer = WALCheckpointer(
            wal, lambda: tree_p.checkpoint_wal(meta_p),
            threshold_bytes=args.checkpoint_bytes, interval_s=0.05,
        ).start()
        extra = uniform_points(args.ingest_n, UNIT_WORKSPACE,
                               seed=plan.seed + 37)
        ingest_error: List[BaseException] = []

        def ingest() -> None:
            oid = len(tree_p)
            try:
                for offset in range(0, len(extra), 16):
                    chunk = extra[offset:offset + 16]
                    with tree_p.batch():
                        for i, point in enumerate(chunk):
                            tree_p.insert(
                                tuple(float(v) for v in point),
                                oid + offset + i,
                            )
                    time_mod.sleep(0.002)
            except BaseException as exc:  # noqa: BLE001 -- report
                ingest_error.append(exc)

        ingest_thread = threading.Thread(target=ingest, daemon=True,
                                         name="chaos-net-ingest")
        ingest_thread.start()

        # Phase 1: query the pinned generation under wire faults while
        # the writer mutates underneath.  Recover mode means every
        # answer must be byte-identical to the serial baseline.
        for repeat in range(args.repeat):
            for algorithm in core:
                response = client.query(ServiceCPQ(
                    pair="default", k=args.k, algorithm=algorithm,
                    use_cache=False,
                ))
                if not response.ok:
                    problems.append(
                        f"{algorithm} run {repeat}: status "
                        f"{response.status}: {response.error}"
                    )
                elif response.partial:
                    problems.append(
                        f"{algorithm} run {repeat}: partial answer in "
                        f"recover mode"
                    )
                elif response.result.pairs != baselines[algorithm]:
                    problems.append(
                        f"{algorithm} run {repeat}: WRONG ANSWER under "
                        f"faults -- this is a bug"
                    )

        ingest_thread.join(60.0)
        if ingest_thread.is_alive():
            problems.append("ingest thread hung")
        if ingest_error:
            problems.append(f"ingest failed: {ingest_error[0]}")
        checkpointer.maybe_checkpoint()
        checkpointer.close()
        if wal.stats.checkpoints == 0:
            problems.append("no background WAL checkpoint fired")

        # Phase 2: hot-reload every shard onto the newer pinned
        # generation (no restart on the happy path), release the old
        # pin, and verify against a fresh serial recompute.
        new_spec_p = tree_spec(tree_p, buffer_capacity=32)
        if new_spec_p.generation <= spec_p.generation:
            problems.append("ingest advanced no generation")
        reload_report = manager.reload(new_spec_p, spec_q)
        tree_p.release(writer_pin)
        service.register_pair("default", manager.tree_p, manager.tree_q)
        fresh_p = new_spec_p.open()
        for algorithm in core:
            expected = k_closest_pairs(
                fresh_p, reader_q,
                request=CPQRequest(k=args.k, algorithm=algorithm),
            ).pairs
            response = client.query(ServiceCPQ(
                pair="default", k=args.k, algorithm=algorithm,
                use_cache=False,
            ))
            if not response.ok:
                problems.append(
                    f"{algorithm} post-reload: status {response.status}"
                )
            elif response.result.pairs != expected:
                problems.append(
                    f"{algorithm} post-reload: WRONG ANSWER at "
                    f"generation {new_spec_p.generation}"
                )

        healthz = client.healthz()
        net = manager.net_stats()
        for key in ("retries", "hedges", "hedge_wins", "respawns",
                    "reloads", "frame_errors", "dedup_dropped"):
            totals[key] = totals.get(key, 0) + net.get(key, 0)
        totals["checkpoints"] = (totals.get("checkpoints", 0)
                                 + wal.stats.checkpoints)
        print(json.dumps({
            "schedule": schedule,
            "shards": shards,
            "survived": not problems,
            "generation": healthz.get("generation"),
            "reload": reload_report,
            "checkpoints": wal.stats.checkpoints,
            "injected": net.get("injected_faults", {}),
            "net": {k: net.get(k, 0) for k in (
                "retries", "hedges", "hedge_wins", "respawns",
                "reloads", "frame_errors", "dedup_dropped")},
        }, sort_keys=True), flush=True)
        return problems
    finally:
        if client is not None:
            client.close()
        if checkpointer is not None:
            checkpointer.close()
        if server is not None:
            server.close()
        elif manager is not None:
            manager.close()
        shutil.rmtree(scratch, ignore_errors=True)


def cmd_chaos_net(args: argparse.Namespace) -> int:
    """Full-stack wire chaos: every fault schedule against serve-net.

    The network-tier counterpart of ``chaos``: for each bundled
    :data:`repro.net.faults.SCHEDULES` entry (drops, stalls, truncated
    and corrupt frames, shard kills) and each shard count, a complete
    stack -- asyncio edge, N spawn shards over a faulty transport,
    concurrent WAL-protected ingest with background checkpointing --
    must answer every one of the paper's five core algorithms
    byte-identically to the serial baseline, then survive a hot reload
    onto the newer generation.  Exits nonzero on any divergence, hang,
    or if the whole run exercised no respawn, no hedge win, or no
    reload (a chaos run that heals nothing proves nothing).
    """
    import dataclasses

    from repro.net.faults import SCHEDULES as NET_SCHEDULES

    if args.list_schedules:
        for name, plan in sorted(NET_SCHEDULES.items()):
            print(f"{name:10s} drop={plan.p_drop:g} stall={plan.p_stall:g} "
                  f"truncate={plan.p_truncate:g} corrupt={plan.p_corrupt:g} "
                  f"kill={plan.p_kill:g}")
        return 0
    if args.quick:
        schedules = ["stall", "kill", "mixed"]
        shard_counts = [2]
        args.repeat = min(args.repeat, 1)
    else:
        schedules = (args.schedules.split(",") if args.schedules
                     else sorted(NET_SCHEDULES))
        shard_counts = [int(s) for s in args.shards.split(",")]
    for name in schedules:
        if name not in NET_SCHEDULES:
            print(f"unknown schedule {name!r}; choose from "
                  f"{', '.join(sorted(NET_SCHEDULES))}", file=sys.stderr)
            return 2

    totals: dict = {}
    failures: List[str] = []
    rounds = 0
    for schedule in schedules:
        plan = dataclasses.replace(NET_SCHEDULES[schedule],
                                   seed=args.seed + rounds)
        for shards in shard_counts:
            rounds += 1
            problems = _chaos_net_round(schedule, plan, shards, args,
                                        totals)
            for problem in problems:
                failures.append(f"[{schedule} x{shards}] {problem}")
                print(f"FAIL [{schedule} x{shards}] {problem}",
                      file=sys.stderr)
    print(f"# {rounds - len(set(f.split(']')[0] for f in failures))}/"
          f"{rounds} rounds survived; totals: "
          f"{json.dumps(totals, sort_keys=True)}")
    for requirement in ("respawns", "hedge_wins", "reloads"):
        if totals.get(requirement, 0) < 1:
            failures.append(f"run exercised no {requirement}")
            print(f"FAIL run exercised no {requirement}", file=sys.stderr)
    return 1 if failures else 0


def _print_cpq_response(response, as_json: bool) -> int:
    """Render one service QueryResponse for the ``sql`` command."""
    from repro.service import STATUS_BAD_REQUEST

    if as_json:
        print(json.dumps(_response_json(response)))
        if response.status == STATUS_BAD_REQUEST:
            return EXIT_UNSUPPORTED_CAPABILITY
        return 0 if response.ok else 1
    if response.status == STATUS_BAD_REQUEST:
        print(f"error: {response.error}", file=sys.stderr)
        return EXIT_UNSUPPORTED_CAPABILITY
    if not response.ok:
        print(f"error: {response.status}: {response.error}",
              file=sys.stderr)
        return 1
    for rank, pair in enumerate(response.result.pairs, start=1):
        print(f"{rank:4d}  {pair.p}  {pair.q}  {pair.distance:.9f}")
    stats = response.result.stats
    print(f"# {response.result.algorithm}: "
          f"{stats.disk_accesses} disk accesses, "
          f"{stats.node_pairs_visited} node pairs, "
          f"{stats.distance_computations} distance computations"
          f"{' (cached)' if response.cached else ''}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    """Run one CPQL statement against a catalog or a serve-net edge.

    Exit codes follow ``query``: 0 ok, 2 bad statement / unknown
    dataset, 3 capability mismatch, 1 runtime failure.
    """
    from repro.errors import CatalogError, CPQLError
    from repro.query.cpql import parse_cpql

    statement = args.query
    if statement == "-":
        statement = sys.stdin.read()
    try:
        parsed = parse_cpql(statement)
    except CPQLError as exc:
        print(f"error: CPQL: {exc}", file=sys.stderr)
        if exc.source:
            print(exc.caret(), file=sys.stderr)
        return 2

    if args.port is not None:
        from repro.net import NetClient, WireError

        with NetClient(args.host, args.port) as client:
            try:
                response = client.sql(
                    statement,
                    deadline_ms=args.deadline_ms,
                    use_cache=not args.no_cache,
                )
            except WireError as exc:
                # The edge's 400: CPQL position info or unknown
                # dataset hint travels in the message.
                print(f"error: {exc}", file=sys.stderr)
                return 2
        return _print_cpq_response(response, args.json)

    if args.catalog is None:
        print("sql: --catalog DIR (or --port against a serve-net "
              "endpoint) is required", file=sys.stderr)
        return 2
    from repro.service import QueryService

    try:
        catalog = _get_catalog(args)
    except CatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = QueryService(
        workers=args.workers,
        cache_size=0 if args.no_cache else 128,
    )
    service.attach_catalog(
        catalog, kind=args.kind, buffer_capacity=args.buffer,
    )
    try:
        response = service.execute_sql(
            parsed, deadline_ms=args.deadline_ms,
            use_cache=not args.no_cache,
        )
    except CatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        service.close()
    return _print_cpq_response(response, args.json)


def cmd_catalog_register(args: argparse.Namespace) -> int:
    from repro.catalog import Catalog
    from repro.errors import CatalogError

    points = load_points(args.points)
    catalog = Catalog(args.catalog)
    try:
        entry = catalog.register_dataset(
            args.name,
            points,
            kind=args.kind,
            extra_kinds=tuple(
                k for k in (args.extra_kinds or "").split(",") if k
            ),
            page_size=args.page_size,
            source=args.points,
            overwrite=args.overwrite,
            use_mmap=args.mmap,
        )
    except CatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    built = entry.index(entry.default_kind)
    line = (f"registered {args.name!r}: {entry.count} points, "
            f"kinds [{', '.join(entry.kinds())}], default "
            f"{entry.default_kind} -> {catalog.path}")
    decision = built.build.get("decision")
    if decision is not None:
        line += f"\n# planner: {decision['reason']}"
    print(line)
    return 0


def cmd_catalog_list(args: argparse.Namespace) -> int:
    catalog = _get_catalog(args)
    if len(catalog) == 0:
        print(f"# empty catalog at {catalog.path}")
        return 0
    for name in catalog.names():
        entry = catalog.dataset(name)
        kinds = ", ".join(
            f"{kind}*" if kind == entry.default_kind else kind
            for kind in entry.kinds()
        )
        print(f"{name:20s} {entry.count:8d} points  dim "
              f"{entry.dimension}  [{kinds}]")
    return 0


def cmd_catalog_info(args: argparse.Namespace) -> int:
    from repro.errors import CatalogError

    catalog = _get_catalog(args)
    try:
        entry = catalog.dataset(args.name)
    except CatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"dataset: {entry.name}")
    print(f"  points:    {entry.count}")
    print(f"  dimension: {entry.dimension}")
    print(f"  default:   {entry.default_kind}")
    if entry.source:
        print(f"  source:    {entry.source}")
    for kind in entry.kinds():
        index = entry.indexes[kind]
        print(f"  [{kind}] {os.path.relpath(index.path, catalog.base_dir)}"
              f"  page_size={index.page_size}"
              f"  generation={index.generation}"
              f"  mmap={index.use_mmap}")
        for key in ("height", "nodes", "build_s"):
            if key in index.build:
                print(f"        {key}: {index.build[key]}")
        decision = index.build.get("decision")
        if decision is not None:
            print(f"        planner: {decision['reason']}")
    return 0


def cmd_catalog_remove(args: argparse.Namespace) -> int:
    from repro.errors import CatalogError

    catalog = _get_catalog(args)
    try:
        catalog.remove_dataset(args.name, delete_files=args.delete_files)
    except CatalogError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"removed {args.name!r} from {catalog.path}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import run_figure

    table = run_figure(args.figure, quick=args.quick)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _add_constraint_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the range/colored query-family flags to a subcommand."""
    parser.add_argument(
        "--range", default=None, metavar="LO...,HI...",
        help="restrict qualifying points to a window, e.g. "
             "'0.1,0.2,0.6,0.7' (xmin,ymin,xmax,ymax); requires a "
             "range-capable algorithm",
    )
    parser.add_argument(
        "--range-mode", choices=("both", "p", "q"), default="both",
        help="which side(s) the window constrains (default: both)",
    )
    parser.add_argument(
        "--colors", default=None, metavar="MOD[:P[:Q]]",
        help="colored query: category = oid %% MOD, optionally "
             "restricting each side's categories, e.g. '4:1,3:0,2'; "
             "requires a color-capable algorithm",
    )
    parser.add_argument(
        "--distinct", action="store_true",
        help="with --colors: only pairs whose two points are in "
             "different categories qualify",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cpq",
        description=(
            "K closest pair queries over R*-trees "
            "(Corral et al., SIGMOD 2000 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a point data set"
    )
    generate.add_argument("--kind", choices=("uniform", "sequoia"),
                          default="uniform")
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--overlap", type=float, default=None,
        help="place in a workspace overlapping the unit one by this "
             "portion (0..1)",
    )
    generate.add_argument(
        "--grid", type=int, default=None,
        help="snap coordinates to a grid x grid lattice",
    )
    generate.add_argument("--out", required=True,
                          help="output file (.npy or .csv)")
    generate.set_defaults(func=cmd_generate)

    build = sub.add_parser(
        "build", help="build a persistent R*-tree over a points file"
    )
    build.add_argument("points", help="input points (.npy or .csv)")
    build.add_argument("--tree", required=True,
                       help="output page file (.pages)")
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="describe a built tree")
    info.add_argument("--tree", required=True)
    info.set_defaults(func=cmd_info)

    ingest = sub.add_parser(
        "ingest",
        help="stream points into a live tree via WAL-protected batches",
    )
    ingest.add_argument("points", help="input points (.npy or .csv)")
    ingest.add_argument("--tree", required=True,
                        help="target page file (.pages); created when "
                             "missing, appended to otherwise")
    ingest.add_argument("--batch-size", type=int, default=64,
                        help="inserts per commit (one generation bump, "
                             "one WAL batch each)")
    ingest.add_argument("--wal", default=None,
                        help="WAL path (default: <tree>.wal)")
    ingest.add_argument("--sync", choices=("fsync", "flush", "none"),
                        default="flush",
                        help="WAL durability per commit")
    ingest.add_argument("--mmap", action="store_true",
                        help="read pages through the mmap path")
    ingest.add_argument("--start-oid", type=int, default=None,
                        help="first object id (default: current count)")
    ingest.add_argument("--keep-wal", action="store_true",
                        help="skip the final checkpoint; leaves every "
                             "batch in the WAL")
    ingest.add_argument("--crash-after", type=int, default=None,
                        help="chaos hook: die mid-batch (no COMMIT, no "
                             "flush) after this many committed batches")
    ingest.set_defaults(func=cmd_ingest)

    recover = sub.add_parser(
        "recover",
        help="replay a WAL onto a page file after a crash",
    )
    recover.add_argument("--tree", required=True,
                         help="page file (.pages) to recover")
    recover.add_argument("--wal", default=None,
                         help="WAL path (default: <tree>.wal)")
    recover.add_argument("--mmap", action="store_true",
                         help="reopen with the mmap read path")
    recover.set_defaults(func=cmd_recover)

    query = sub.add_parser(
        "query", help="run a K closest pairs query"
    )
    query.add_argument("left",
                       help="catalog dataset name (with --catalog), or "
                            "points file / .pages tree (deprecated)")
    query.add_argument("right",
                       help="catalog dataset name (with --catalog), or "
                            "points file / .pages tree (deprecated)")
    query.add_argument("--catalog", default=None,
                       help="dataset catalog (dir or catalog.json) to "
                            "resolve names against")
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--algorithm", choices=ALGORITHMS, default="heap")
    query.add_argument("--buffer", type=int, default=0,
                       help="total LRU buffer pages (B/2 per tree)")
    query.add_argument("--scalar", action="store_true",
                       help="use the scalar (non-vectorized) expansion "
                            "path; results are identical")
    query.add_argument("--workers", type=int, default=1,
                       help="intra-query worker threads (partitioned "
                            "executor); results are byte-identical")
    query.add_argument("--mmap", action="store_true",
                       help="read .pages inputs through the mmap path")
    _add_constraint_flags(query)
    query.set_defaults(func=cmd_query)

    explain = sub.add_parser(
        "explain",
        help="run a K-CPQ traced and print the EXPLAIN-style span tree",
    )
    explain.add_argument("left",
                         help="catalog dataset name (with --catalog), "
                              "or points file / .pages tree "
                              "(deprecated)")
    explain.add_argument("right",
                         help="catalog dataset name (with --catalog), "
                              "or points file / .pages tree "
                              "(deprecated)")
    explain.add_argument("--catalog", default=None,
                         help="dataset catalog (dir or catalog.json) "
                              "to resolve names against")
    explain.add_argument("--k", type=int, default=1)
    explain.add_argument("--algorithm",
                         choices=("auto",) + tuple(ALGORITHMS),
                         default="auto",
                         help="'auto' also traces the planner decision")
    explain.add_argument("--buffer", type=int, default=0,
                         help="total LRU buffer pages (B/2 per tree)")
    explain.add_argument("--trace", default=None,
                         help="also write the spans as JSONL here")
    explain.add_argument("--no-times", action="store_true",
                         help="omit durations (deterministic output)")
    explain.add_argument("--workers", type=int, default=1,
                         help="intra-query worker threads; the trace "
                              "gains per-worker summary spans")
    _add_constraint_flags(explain)
    explain.set_defaults(func=cmd_explain)

    knn = sub.add_parser("knn", help="k nearest neighbours of a point")
    knn.add_argument("tree", help="points file or .pages tree")
    knn.add_argument("--x", type=float, required=True)
    knn.add_argument("--y", type=float, required=True)
    knn.add_argument("--k", type=int, default=1)
    knn.set_defaults(func=cmd_knn)

    window = sub.add_parser("range", help="window (range) query")
    window.add_argument("tree", help="points file or .pages tree")
    window.add_argument("--xmin", type=float, required=True)
    window.add_argument("--ymin", type=float, required=True)
    window.add_argument("--xmax", type=float, required=True)
    window.add_argument("--ymax", type=float, required=True)
    window.set_defaults(func=cmd_range)

    join = sub.add_parser(
        "join", help="distance range join (all pairs within epsilon)"
    )
    join.add_argument("left", help="points file or .pages tree")
    join.add_argument("right", help="points file or .pages tree")
    join.add_argument("--epsilon", type=float, required=True)
    join.add_argument("--limit", type=int, default=None,
                      help="print at most this many pairs")
    join.set_defaults(func=cmd_join)

    def add_service_args(parser_):
        parser_.add_argument("left", help="points file or .pages tree (P)")
        parser_.add_argument("right", help="points file or .pages tree (Q)")
        parser_.add_argument("--workers", type=int, default=4,
                             help="worker thread count")
        parser_.add_argument("--deadline-ms", type=float, default=None,
                             help="default per-query deadline")
        parser_.add_argument("--cache-size", type=int, default=128,
                             help="result cache capacity (0 disables)")
        parser_.add_argument("--queue-size", type=int, default=256,
                             help="admission queue bound")
        parser_.add_argument("--buffer", type=int, default=0,
                             help="total LRU buffer pages (B/2 per tree)")
        parser_.add_argument("--pair", default="default",
                             help="name the registered tree pair")
        parser_.add_argument("--stats-json", default=None,
                             help="also write the serve-stats snapshot "
                                  "to this file")
        parser_.add_argument("--trace", default=None,
                             help="trace every request and write the "
                                  "spans as JSONL to this file")

    batch = sub.add_parser(
        "batch",
        help="run a JSONL file of queries through the query service",
    )
    add_service_args(batch)
    batch.add_argument("requests",
                       help="JSONL request file, or - for stdin")
    batch.add_argument("--out", default=None,
                       help="write JSONL responses here (default stdout)")
    batch.add_argument("--parallel", type=int, default=1,
                       help="intra-query worker threads per CPQ "
                            "(max_query_workers; auto requests let the "
                            "planner decide within this budget)")
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="serve JSONL queries from stdin until EOF",
    )
    add_service_args(serve)
    serve.set_defaults(func=cmd_serve)

    serve_net = sub.add_parser(
        "serve-net",
        help="serve the HTTP/JSON network tier over spatial shards",
    )
    serve_net.add_argument("left",
                           help="catalog dataset name (with --catalog),"
                                " or points file / .pages tree (P, "
                                "deprecated)")
    serve_net.add_argument("right",
                           help="catalog dataset name (with --catalog),"
                                " or points file / .pages tree (Q, "
                                "deprecated)")
    serve_net.add_argument("--catalog", default=None,
                           help="dataset catalog (dir or catalog.json);"
                                " also enables POST /v1/sql dataset "
                                "resolution")
    serve_net.add_argument("--host", default="127.0.0.1",
                           help="bind address")
    serve_net.add_argument("--port", type=int, default=0,
                           help="bind port (0 picks a free one; the "
                                "bound port is printed as JSON)")
    serve_net.add_argument("--shards", type=int, default=2,
                           help="shard process count")
    serve_net.add_argument("--on-failure", default="recover",
                           choices=["recover", "partial"],
                           help="lost-shard policy: exact recovery on "
                                "the coordinator, or flagged partial "
                                "answers")
    serve_net.add_argument("--shard-buffer", type=int, default=64,
                           help="LRU buffer pages per tree per shard")
    serve_net.add_argument("--shard-read-latency-ms", type=float,
                           default=0.0,
                           help="simulated per-miss disk latency in "
                                "the shards (benchmark regime)")
    serve_net.add_argument("--workers", type=int, default=4,
                           help="service worker threads")
    serve_net.add_argument("--queue-size", type=int, default=256,
                           help="admission queue bound")
    serve_net.add_argument("--cache-size", type=int, default=128,
                           help="result cache capacity (0 disables)")
    serve_net.add_argument("--deadline-ms", type=float, default=None,
                           help="default per-query deadline")
    serve_net.add_argument("--pair", default="default",
                           help="name the registered tree pair")
    serve_net.add_argument("--run-seconds", type=float, default=None,
                           help="serve for this long then drain "
                                "(default: until interrupted)")
    serve_net.set_defaults(func=cmd_serve_net)

    loadgen = sub.add_parser(
        "loadgen",
        help="closed-loop load generator against a serve-net endpoint",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent closed-loop clients")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="measured seconds")
    loadgen.add_argument("--warmup", type=float, default=0.5,
                         help="unmeasured warmup seconds")
    loadgen.add_argument("--k", type=int, default=10)
    loadgen.add_argument("--algorithms", default="heap",
                         help="comma-separated algorithm cycle")
    loadgen.add_argument("--pair", default="default")
    loadgen.add_argument("--use-cache", action="store_true",
                         help="let the service cache answer repeats "
                              "(default off so every request does "
                              "real work)")
    loadgen.add_argument("--out", default=None,
                         help="also write the summary JSON here")
    loadgen.add_argument("--max-error-rate", type=float, default=0.0,
                         help="exit nonzero when errors/attempts "
                              "exceeds this fraction (default 0: any "
                              "error fails)")
    loadgen.set_defaults(func=cmd_loadgen)

    chaos = sub.add_parser(
        "chaos",
        help="rerun a K-CPQ workload under injected storage faults "
             "and verify the answers are unchanged",
    )
    chaos.add_argument("left", nargs="?", default=None,
                       help="points file or .pages tree (P)")
    chaos.add_argument("right", nargs="?", default=None,
                       help="points file or .pages tree (Q)")
    chaos.add_argument("--schedule", default="mixed",
                       help="named fault schedule (see --list-schedules)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed; same seed, same faults")
    chaos.add_argument("--k", type=int, default=10)
    chaos.add_argument("--buffer", type=int, default=0,
                       help="total LRU buffer pages (B/2 per tree)")
    chaos.add_argument("--algorithms", default=None,
                       help="comma-separated subset (default: all five)")
    chaos.add_argument("--repeat", type=int, default=1,
                       help="faulted runs per algorithm")
    chaos.add_argument("--list-schedules", action="store_true",
                       help="print the named schedules and exit")
    chaos.set_defaults(func=cmd_chaos)

    chaos_net = sub.add_parser(
        "chaos-net",
        help="run the full network stack (edge + shards + concurrent "
             "ingest) under injected wire faults and verify answers "
             "stay byte-identical to serial",
    )
    chaos_net.add_argument("--schedules", default=None,
                           help="comma-separated subset "
                                "(default: all; see --list-schedules)")
    chaos_net.add_argument("--shards", default="2,4",
                           help="comma-separated shard counts to test")
    chaos_net.add_argument("--seed", type=int, default=0,
                           help="fault-plan seed; same seed, same faults")
    chaos_net.add_argument("--k", type=int, default=10)
    chaos_net.add_argument("--n", type=int, default=400,
                           help="points per tree")
    chaos_net.add_argument("--ingest-n", type=int, default=256,
                           help="points inserted concurrently into P")
    chaos_net.add_argument("--repeat", type=int, default=2,
                           help="faulted runs per algorithm per round")
    chaos_net.add_argument("--checkpoint-bytes", type=int, default=16384,
                           help="background WAL checkpoint threshold")
    chaos_net.add_argument("--hedge-floor-ms", type=float, default=30.0,
                           help="minimum hedge trigger latency")
    chaos_net.add_argument("--attempt-timeout", type=float, default=0.5,
                           help="per-attempt shard timeout (s)")
    chaos_net.add_argument("--shard-timeout", type=float, default=15.0,
                           help="total gather budget per query (s)")
    chaos_net.add_argument("--quick", action="store_true",
                           help="CI smoke: 2 shards, one repeat, "
                                "stall/kill/mixed only")
    chaos_net.add_argument("--list-schedules", action="store_true",
                           help="print the named schedules and exit")
    chaos_net.set_defaults(func=cmd_chaos_net)

    sql = sub.add_parser(
        "sql",
        help="run one CPQL statement (SELECT CLOSEST PAIRS ...) "
             "against a catalog or a serve-net endpoint",
    )
    sql.add_argument("query",
                     help="the CPQL statement, or - to read stdin")
    sql.add_argument("--catalog", default=None,
                     help="dataset catalog to resolve FROM names "
                          "against (in-process execution)")
    sql.add_argument("--kind", default=None,
                     help="pin one index kind (str/grid/dynamic) for "
                          "every dataset; default: each dataset's own")
    sql.add_argument("--host", default="127.0.0.1",
                     help="serve-net host (with --port)")
    sql.add_argument("--port", type=int, default=None,
                     help="send the statement to a serve-net endpoint "
                          "(POST /v1/sql) instead of executing "
                          "in-process")
    sql.add_argument("--deadline-ms", type=float, default=None,
                     help="per-query deadline")
    sql.add_argument("--no-cache", action="store_true",
                     help="bypass the service result cache")
    sql.add_argument("--workers", type=int, default=2,
                     help="service worker threads (in-process mode)")
    sql.add_argument("--buffer", type=int, default=64,
                     help="LRU buffer pages per opened tree")
    sql.add_argument("--json", action="store_true",
                     help="emit the response as one JSON object")
    sql.set_defaults(func=cmd_sql)

    catalog_cmd = sub.add_parser(
        "catalog",
        help="maintain a persisted dataset catalog (register/list/"
             "info/remove)",
    )
    catalog_sub = catalog_cmd.add_subparsers(dest="catalog_command",
                                             required=True)

    cat_register = catalog_sub.add_parser(
        "register",
        help="build index(es) over a points file under a dataset name",
    )
    cat_register.add_argument("name", help="dataset name")
    cat_register.add_argument("points",
                              help="input points (.npy or .csv)")
    cat_register.add_argument("--catalog", required=True,
                              help="catalog dir or catalog.json; page "
                                   "files land next to it")
    cat_register.add_argument("--kind", default="auto",
                              help="index kind: auto (planner decides),"
                                   " str, grid or dynamic")
    cat_register.add_argument("--extra-kinds", default="",
                              help="comma-separated additional kinds "
                                   "to build alongside")
    cat_register.add_argument("--page-size", type=int, default=1024)
    cat_register.add_argument("--mmap", action="store_true",
                              help="record mmap as the index's "
                                   "preferred read path")
    cat_register.add_argument("--overwrite", action="store_true",
                              help="rebuild over an existing entry")
    cat_register.set_defaults(func=cmd_catalog_register)

    cat_list = catalog_sub.add_parser(
        "list", help="list registered datasets"
    )
    cat_list.add_argument("--catalog", required=True)
    cat_list.set_defaults(func=cmd_catalog_list)

    cat_info = catalog_sub.add_parser(
        "info", help="describe one dataset and its indexes"
    )
    cat_info.add_argument("name")
    cat_info.add_argument("--catalog", required=True)
    cat_info.set_defaults(func=cmd_catalog_info)

    cat_remove = catalog_sub.add_parser(
        "remove", help="drop one dataset's catalog entry"
    )
    cat_remove.add_argument("name")
    cat_remove.add_argument("--catalog", required=True)
    cat_remove.add_argument("--delete-files", action="store_true",
                            help="also delete its page files")
    cat_remove.set_defaults(func=cmd_catalog_remove)

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure.add_argument("figure", help="figure id, e.g. fig04")
    figure.add_argument("--quick", action="store_true",
                        help="tiny cardinalities (seconds)")
    figure.add_argument("--csv", default=None,
                        help="also write the table as CSV")
    figure.set_defaults(func=cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
