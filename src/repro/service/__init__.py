"""Concurrent query service over the reproduction's query algorithms.

The serving layer the ROADMAP's north star asks for: register R-tree
pairs once, then feed K-CPQ / K-NN / range requests to a bounded
worker pool with per-request deadlines, cost-model-driven algorithm
planning, a generation-keyed result cache, and a metrics snapshot for
operators.  See ``docs/SERVICE.md`` for the architecture and
``docs/RESILIENCE.md`` for the fault-handling machinery (load
shedding, per-pair circuit breakers, stale degraded serving).
"""

from repro.errors import CPQLError, ServiceOverloadError, UnknownDatasetError
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, cache_key
from repro.service.engine import (
    CPQRequest,
    DeadlineExceeded,
    KNNRequest,
    PendingQuery,
    QueryResponse,
    QueryService,
    RangeRequest,
    ServiceClosed,
    STATUS_BAD_REQUEST,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_REJECTED,
    STATUS_UNAVAILABLE,
)
from repro.service.metrics import ServiceMetrics
from repro.service.planner import PlanDecision, Planner

__all__ = [
    "CircuitBreaker",
    "CPQLError",
    "CPQRequest",
    "DeadlineExceeded",
    "KNNRequest",
    "PendingQuery",
    "PlanDecision",
    "Planner",
    "QueryResponse",
    "QueryService",
    "RangeRequest",
    "ResultCache",
    "ServiceClosed",
    "ServiceMetrics",
    "ServiceOverloadError",
    "STATUS_BAD_REQUEST",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_REJECTED",
    "STATUS_UNAVAILABLE",
    "UnknownDatasetError",
    "cache_key",
]
