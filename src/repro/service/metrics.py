"""Observability for the query service.

One :class:`ServiceMetrics` instance aggregates everything the service
operator needs to watch: admission outcomes, per-query latency (as a
count/sum/min/max summary plus fixed histogram buckets), planner
decision tallies, result-cache hit rates, per-query I/O counters, a
queue-depth gauge and -- when the service is traced -- per-span-name
time rollups fed by :meth:`ServiceMetrics.record_trace` (see
``docs/OBSERVABILITY.md``).  All methods are thread-safe;
:meth:`snapshot` returns a plain nested dict that serialises directly
to JSON (the CLI's ``serve-stats`` output).

I/O counters are exact for serial workloads; under concurrency a
query's delta can include reads issued by an overlapping query on the
same trees, so treat them as aggregate observability, not accounting.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

from repro.geometry.vectorized import KERNEL_STATS

#: Upper edges of the latency histogram, in milliseconds.
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    math.inf,
)


class ServiceMetrics:
    """Thread-safe counters, histogram and gauges for one service."""

    def __init__(self):
        self._lock = threading.Lock()
        self._reset_locked()

    def _reset_locked(self) -> None:
        """(Re)initialise every counter; caller holds ``_lock`` (or is
        ``__init__``, before the instance is shared)."""
        self._statuses: Dict[str, int] = {}
        self._kinds: Dict[str, int] = {}
        self._submitted = 0
        self._planner: Dict[str, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_min = math.inf
        self._latency_max = 0.0
        self._latency_buckets = [0] * len(LATENCY_BUCKETS_MS)
        #: Per-algorithm latency summaries: algorithm ->
        #: [count, total, min, max, bucket list].
        self._latency_by_algorithm: Dict[str, list] = {}
        self._disk_reads = 0
        self._buffer_hits = 0
        self._read_retries = 0
        self._queue_depth = 0
        self._queue_depth_max = 0
        #: Load-shedding and breaker counters (the resilience section).
        self._shed = 0
        self._breaker_rejections = 0
        self._stale_served = 0
        self._parallel_fallbacks = 0
        self._partial_responses = 0
        #: Storage faults observed by executions: error type -> count.
        self._storage_faults: Dict[str, int] = {}
        #: Self-healing network events from the shard coordinator:
        #: retries, hedges, hedge_wins, respawns, reloads, ... -> count.
        self._net_events: Dict[str, int] = {}
        #: Span rollups fed by traced requests: name -> [count, total_ms].
        self._spans: Dict[str, list] = {}

    # -- recording ---------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_query(
        self,
        kind: str,
        status: str,
        latency_ms: float,
        cached: bool = False,
        disk_reads: int = 0,
        buffer_hits: int = 0,
        algorithm: Optional[str] = None,
        read_retries: int = 0,
    ) -> None:
        """Record one finished (or rejected) query.

        ``algorithm`` (when known -- CPQ executions, after planning)
        additionally feeds a per-algorithm latency summary, so operators
        can compare e.g. HEAP vs STD tail latency on live traffic.
        """
        with self._lock:
            self._statuses[status] = self._statuses.get(status, 0) + 1
            self._kinds[kind] = self._kinds.get(kind, 0) + 1
            if cached:
                self._cache_hits += 1
            self._latency_count += 1
            self._latency_total += latency_ms
            self._latency_min = min(self._latency_min, latency_ms)
            self._latency_max = max(self._latency_max, latency_ms)
            bucket = self._bucket_index(latency_ms)
            self._latency_buckets[bucket] += 1
            if algorithm is not None:
                summary = self._latency_by_algorithm.setdefault(
                    algorithm,
                    [0, 0.0, math.inf, 0.0, [0] * len(LATENCY_BUCKETS_MS)],
                )
                summary[0] += 1
                summary[1] += latency_ms
                summary[2] = min(summary[2], latency_ms)
                summary[3] = max(summary[3], latency_ms)
                summary[4][bucket] += 1
            self._disk_reads += disk_reads
            self._buffer_hits += buffer_hits
            self._read_retries += read_retries

    def record_shed(self) -> None:
        """One request shed at admission (queue over the threshold)."""
        with self._lock:
            self._shed += 1

    def record_breaker_rejection(self) -> None:
        """One request refused because its pair's breaker was open."""
        with self._lock:
            self._breaker_rejections += 1

    def record_stale_served(self) -> None:
        """One breaker-open request answered from the stale stock."""
        with self._lock:
            self._stale_served += 1

    def record_storage_fault(self, error_type: str) -> None:
        """One execution failed with a storage error of this type."""
        with self._lock:
            self._storage_faults[error_type] = (
                self._storage_faults.get(error_type, 0) + 1
            )

    def record_parallel_fallback(self) -> None:
        """One CPQ degraded from the partitioned executor to serial."""
        with self._lock:
            self._parallel_fallbacks += 1

    def record_partial_response(self) -> None:
        """One sharded CPQ answered from surviving shards only."""
        with self._lock:
            self._partial_responses += 1

    def record_net_event(self, kind: str, n: int = 1) -> None:
        """Count ``n`` self-healing events from the shard coordinator.

        ``kind`` is one of the :attr:`repro.net.shard.ShardManager.
        counters` keys (``retries``, ``hedges``, ``hedge_wins``,
        ``respawns``, ``reloads``, ``frame_errors``, ...); the tallies
        surface under ``resilience.net`` in :meth:`snapshot` and hence
        in ``/stats``.
        """
        with self._lock:
            self._net_events[kind] = self._net_events.get(kind, 0) + n

    @staticmethod
    def _bucket_index(latency_ms: float) -> int:
        for i, edge in enumerate(LATENCY_BUCKETS_MS):
            if latency_ms <= edge:
                return i
        return len(LATENCY_BUCKETS_MS) - 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self._cache_misses += 1

    def record_planner_decision(self, algorithm: str) -> None:
        """Tally one planner choice (only planner-made, not explicit)."""
        with self._lock:
            self._planner[algorithm] = self._planner.get(algorithm, 0) + 1

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_depth_max = max(self._queue_depth_max, depth)

    def record_trace(self, root_span) -> None:
        """Fold one finished request trace into the span rollups.

        Walks the :class:`repro.obs.Span` tree and accumulates, per
        span name, how many spans ran and their total wall time; the
        snapshot exposes these under ``"spans"`` so operators see
        where traced queries spend their time (plan vs. traverse vs.
        heap) without shipping whole traces.
        """
        with self._lock:
            for span in root_span.walk():
                aggregate = self._spans.setdefault(span.name, [0, 0.0])
                aggregate[0] += 1
                aggregate[1] += span.duration_ms

    # -- reading -----------------------------------------------------------

    @property
    def planner_decisions(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._planner)

    def snapshot(self, cache_size: Optional[int] = None, *,
                 reset: bool = False) -> dict:
        """A JSON-serialisable view of every metric.

        With ``reset=True`` the counters are zeroed *atomically* with
        the read, under the same lock: every recorded query lands in
        exactly one snapshot window, never two and never none.  The
        returned dict is always the pre-reset view.  (The process-wide
        ``KERNEL_STATS`` tallies are shared with non-service callers
        and are never reset here.)
        """
        with self._lock:
            hits, misses = self._cache_hits, self._cache_misses
            looked_up = hits + misses
            buckets = self._bucket_dict(self._latency_buckets)
            snapshot = {
                "queries": {
                    "submitted": self._submitted,
                    "by_status": dict(self._statuses),
                    "by_kind": dict(self._kinds),
                },
                "latency_ms": {
                    "count": self._latency_count,
                    "total": self._latency_total,
                    "mean": (self._latency_total / self._latency_count
                             if self._latency_count else 0.0),
                    "min": (self._latency_min
                            if self._latency_count else 0.0),
                    "max": self._latency_max,
                    "buckets": buckets,
                    "by_algorithm": {
                        name: {
                            "count": count,
                            "total": total,
                            "mean": total / count if count else 0.0,
                            "min": lo if count else 0.0,
                            "max": hi,
                            "buckets": self._bucket_dict(algo_buckets),
                        }
                        for name, (count, total, lo, hi, algo_buckets)
                        in sorted(self._latency_by_algorithm.items())
                    },
                },
                "planner": dict(self._planner),
                "cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / looked_up if looked_up else 0.0,
                },
                "io": {
                    "disk_reads": self._disk_reads,
                    "buffer_hits": self._buffer_hits,
                    "read_retries": self._read_retries,
                },
                "queue": {
                    "depth": self._queue_depth,
                    "max_depth": self._queue_depth_max,
                },
                # Fault handling: shed load, breaker activity, stale
                # serves and the storage errors behind them (see
                # docs/RESILIENCE.md for the taxonomy).
                "resilience": {
                    "shed": self._shed,
                    "breaker_rejections": self._breaker_rejections,
                    "stale_served": self._stale_served,
                    "parallel_fallbacks": self._parallel_fallbacks,
                    "partial_responses": self._partial_responses,
                    "storage_faults": dict(self._storage_faults),
                    "net": dict(self._net_events),
                },
                # Process-wide pairwise-kernel tallies (calls and entry
                # pairs per kernel, scalar path under *_scalar).  These
                # are the observed pair counts the cost model's CPU-side
                # estimates (repro.analysis.cost_model.estimate_cpu_ms)
                # are recalibrated against.
                "kernels": KERNEL_STATS.snapshot(),
                "spans": {
                    name: {
                        "count": count,
                        "total_ms": round(total_ms, 3),
                        "mean_ms": round(total_ms / count, 3) if count
                                   else 0.0,
                    }
                    for name, (count, total_ms) in sorted(
                        self._spans.items()
                    )
                },
            }
            if reset:
                self._reset_locked()
        if cache_size is not None:
            snapshot["cache"]["size"] = cache_size
        return snapshot

    def reset(self) -> dict:
        """Zero every counter and return the final pre-reset snapshot.

        Equivalent to ``snapshot(reset=True)``; the read-and-zero is
        one critical section, so concurrent :meth:`record_query` calls
        are attributed to exactly one window.
        """
        return self.snapshot(reset=True)

    @staticmethod
    def _bucket_dict(counts) -> Dict[str, int]:
        return {
            ("+inf" if math.isinf(edge) else f"<={edge:g}ms"): count
            for edge, count in zip(LATENCY_BUCKETS_MS, counts)
        }
