"""Per-tree-pair circuit breaker for the query service.

When a registered pair's storage keeps failing (transient faults that
exhaust their retries, detected page corruption), executing more
queries against it just burns worker threads and hammers a struggling
device.  The classic remedy is a circuit breaker (Nygard, *Release
It!*): after ``failure_threshold`` consecutive storage failures the
breaker *opens* and the service fails fast -- or serves a flagged
stale cache entry -- without touching storage at all.  After
``reset_timeout_s`` one probe request is let through (*half-open*); if
it succeeds the breaker closes, if it fails the timer starts over.

The breaker is deliberately storage-scoped: request-shaped errors
(unknown algorithm, bad window) do not trip it, because they say
nothing about the health of the pair.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: Breaker states, exposed via :attr:`CircuitBreaker.state`.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe three-state circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the breaker.
    reset_timeout_s:
        Seconds the breaker stays open before allowing one probe.
    clock:
        Monotonic time source; injectable so tests can step time
        instead of sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Lifetime counters for metrics/debugging.
        self.opens = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` to ``half_open`` when the
        reset timeout has elapsed."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In ``half_open`` exactly one caller gets True (the probe);
        everyone else is rejected until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """A permitted request completed without a storage failure.

        Ignored while the breaker is ``open``: a slow query admitted
        before the breaker opened that completes mid-storm must not
        re-close it and bypass ``reset_timeout_s``.  (The half-open
        probe itself never observes ``open`` here unless a concurrent
        failure already re-opened the breaker, in which case the
        failure verdict stands.)
        """
        with self._lock:
            if self._state == OPEN:
                return
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def release_probe(self) -> None:
        """Free the half-open probe slot without recording a verdict.

        Called when a permitted request ends in a non-storage outcome
        (deadline expiry, request-shaped error): that says nothing
        about the pair's health, but if the request held the probe
        slot it must be returned -- otherwise ``allow`` would reject
        everything and the breaker would sit half-open forever.
        """
        with self._lock:
            self._probing = False

    def record_failure(self) -> None:
        """A permitted request hit a storage failure."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or (
                self._failures >= self.failure_threshold
            ):
                if self._state != OPEN:
                    self.opens += 1
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False

    # -- internals ---------------------------------------------------------

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._probing = False
