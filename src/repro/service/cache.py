"""Result cache for the query service.

The RCP line of work (Xue et al.; Chan, Rahul & Xue -- see PAPERS.md)
treats closest-pair as a *repeated-query* problem where work amortises
across a query stream.  This module supplies the serving-side half of
that idea: an LRU map from fully-qualified query keys to finished
results.

Keys embed the *generation* of both trees of the queried pair
(:attr:`repro.rtree.tree.RTree.generation`, bumped on every insert and
delete), so a stale entry can never be returned -- after a mutation
the service looks up a key containing the new generation and simply
misses.  The service additionally calls :meth:`invalidate_pair` when
it observes a generation bump, which eagerly drops every entry of the
mutated pair instead of waiting for LRU pressure to push them out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

#: Sentinel distinguishing "miss" from a cached None.
_MISS = object()


def cache_key(
    pair: str,
    generation_p: int,
    generation_q: int,
    params: Tuple,
) -> Tuple:
    """Build the full cache key for one request against one pair.

    ``params`` is the request's own identity tuple (kind, k, point,
    window, ...); the pair name leads so :meth:`ResultCache.
    invalidate_pair` can match on it.
    """
    return (pair, generation_p, generation_q) + params


class ResultCache:
    """Thread-safe LRU cache of query results.

    Capacity 0 disables caching (every ``get`` misses, ``put`` is a
    no-op), mirroring the paper's "zero buffer" convention.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        #: Last-known-good results keyed *without* generations:
        #: ``(pair, params) -> value``.  Deliberately not dropped by
        #: :meth:`invalidate_pair` -- this is the degraded-mode stock
        #: the service may serve (flagged stale) while a pair's circuit
        #: breaker is open.  Same capacity bound, LRU evicted.
        self._stale: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Tuple[bool, Any]:
        """Look up a key; returns ``(hit, value)``."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Tuple, value: Any) -> None:
        """Install a result, evicting the LRU entry when full.

        Cached values are shared between all future hits: treat them
        as immutable.
        """
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            # (pair, params) without the generations: the stale stock
            # for breaker-open degraded serving.
            stale_key = (key[0],) + tuple(key[3:])
            if stale_key in self._stale:
                self._stale.move_to_end(stale_key)
            self._stale[stale_key] = value
            while len(self._stale) > self.capacity:
                self._stale.popitem(last=False)

    def get_stale(self, pair: str, params: Tuple) -> Tuple[bool, Any]:
        """Last known good result for ``(pair, params)``, any generation.

        Degraded-mode lookup used while a pair's circuit breaker is
        open: the result may predate mutations (hence *stale*) but was
        computed correctly at some point.  Returns ``(found, value)``
        without touching hit/miss accounting -- stale serves are
        tallied separately by the service metrics.
        """
        with self._lock:
            value = self._stale.get((pair,) + tuple(params), _MISS)
            if value is _MISS:
                return False, None
            return True, value

    def invalidate_pair(self, pair: str, drop_stale: bool = False) -> int:
        """Eagerly drop every entry of one registered pair.

        Returns the number of (fresh) entries removed.  Called by the
        service when it observes a tree-generation bump, so no entry of
        a mutated pair survives even transiently.  The last-known-good
        stock survives by default -- same trees, merely mutated, still
        worth serving flagged stale while a breaker is open.  Pass
        ``drop_stale=True`` when the *trees themselves* are replaced
        (a pair name re-registered): those results describe data no
        longer behind the name and must not be served at all.
        """
        with self._lock:
            dead = [k for k in self._entries if k[0] == pair]
            for k in dead:
                del self._entries[k]
            if drop_stale:
                for k in [k for k in self._stale if k[0] == pair]:
                    del self._stale[k]
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stale.clear()

    def keys(self) -> list:
        """Snapshot of the current keys (oldest first); for tests."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries
