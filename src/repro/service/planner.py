"""Algorithm selection for the query service.

The paper's conclusion (Section 4.4) is not "always use HEAP": which
of the five algorithms wins depends on tree sizes, buffer space and K.
The planner encodes that policy using the analytical cost model of
:mod:`repro.analysis.cost_model` plus the tree heights and the buffer
capacity actually configured on the queried pair:

* trivial trees (both a single leaf) -- ``exh``: one leaf scan; the
  sorting/heap machinery is pure overhead;
* predicted workload of a handful of node pairs -- ``sim``: pruning
  pays, ordering does not;
* working set fits the LRU buffer -- ``std``: the recursive sorted
  algorithm re-reads pages, but the buffer absorbs the re-reads
  (Figure 6 shows STD converging to HEAP as B grows) and it avoids
  HEAP's global queue;
* otherwise -- ``heap``: the global best-first order minimises disk
  accesses when buffer space is scarce, the regime where the paper
  finds it strongest.

``NAIVE`` is never planned; it exists as an experimental baseline.
For trees the cost model cannot shape (empty, or not 2-dimensional)
the planner falls back to ``heap``, the paper's best general answer.

Requests carrying a range window route through a separate ranged
policy: the planner estimates the window's workspace selectivity
(:func:`~repro.analysis.cost_model.estimate_range_selectivity`) and
picks the memoized RCP candidate structure for small windows or the
CLIPPED traversal for large ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.cost_model import (
    DEFAULT_GRID_SKEW_THRESHOLD,
    IndexKindDecision,
    TreeShape,
    estimate_closest_pair_distance,
    estimate_cpq_accesses,
    estimate_parallel_speedup,
    estimate_range_selectivity,
    grid_occupancy_cv,
    recommend_index_kind,
)
from repro.core.api import ALGORITHM_REGISTRY, PLANNABLE_ALGORITHMS
from repro.obs.trace import NULL_TRACER

#: The algorithms this planner chooses between, from the shared
#: registry (every non-plannable entry -- NAIVE -- is excluded there).
CANDIDATES = PLANNABLE_ALGORITHMS

#: Chosen when the cost model cannot shape a tree: the paper's best
#: general answer.
FALLBACK = "heap"
assert FALLBACK in CANDIDATES


@dataclass(frozen=True)
class PlanDecision:
    """One planner verdict, with the evidence it was based on."""

    algorithm: str
    reason: str
    estimated_accesses: float
    estimated_distance: float
    buffer_pages: int
    height_p: int
    height_q: int
    k: int
    #: Intra-query worker threads the executor should use (1 = serial).
    #: Only > 1 when the caller offered a worker budget AND the
    #: predicted traversal is large enough that the partitioned
    #: executor's serial setup is amortised.
    workers: int = 1
    #: Predicted wall-clock speedup at ``workers`` (1.0 when serial).
    estimated_speedup: float = 1.0
    #: Estimated fraction of the workspace the query window covers
    #: (``None`` for unconstrained plans).
    range_selectivity: Optional[float] = None

    def as_dict(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "reason": self.reason,
            "estimated_accesses": self.estimated_accesses,
            "estimated_distance": self.estimated_distance,
            "buffer_pages": self.buffer_pages,
            "heights": [self.height_p, self.height_q],
            "k": self.k,
            "workers": self.workers,
            "estimated_speedup": round(self.estimated_speedup, 3),
        }
        if self.range_selectivity is not None:
            out["range_selectivity"] = round(self.range_selectivity, 4)
        return out


class Planner:
    """Chooses a CPQ algorithm per request from cost-model estimates.

    ``sim_threshold`` is the predicted disk-access count below which
    candidate ordering cannot pay for itself.
    """

    def __init__(self, sim_threshold: float = 24.0,
                 parallel_speedup_threshold: float = 1.5,
                 rcp_selectivity_threshold: float = 0.10,
                 grid_skew_threshold: float = DEFAULT_GRID_SKEW_THRESHOLD):
        if sim_threshold < 0:
            raise ValueError("sim_threshold must be >= 0")
        if parallel_speedup_threshold < 1.0:
            raise ValueError("parallel_speedup_threshold must be >= 1.0")
        if not 0.0 <= rcp_selectivity_threshold <= 1.0:
            raise ValueError(
                "rcp_selectivity_threshold must lie in [0, 1]"
            )
        if grid_skew_threshold <= 0.0:
            raise ValueError("grid_skew_threshold must be > 0")
        self.sim_threshold = sim_threshold
        #: Minimum predicted speedup before the planner recommends
        #: spending worker threads on one query.
        self.parallel_speedup_threshold = parallel_speedup_threshold
        #: Ranged plans: windows covering at most this workspace
        #: fraction go to the memoized RCP candidate structure (small
        #: windows produce small, highly reusable candidate lists);
        #: larger windows run the CLIPPED traversal directly.
        self.rcp_selectivity_threshold = rcp_selectivity_threshold
        #: Grid-occupancy CV above which a dataset counts as skewed and
        #: :meth:`plan_index` stops recommending the grid index.
        self.grid_skew_threshold = grid_skew_threshold

    def plan_index(
        self,
        points=None,
        *,
        n: Optional[int] = None,
        skew: Optional[float] = None,
        mutable: bool = False,
        selectivity: Optional[float] = None,
        tracer=NULL_TRACER,
    ) -> IndexKindDecision:
        """Recommend an index kind for one dataset (the catalog's
        ``kind="auto"`` path).

        Pass the raw ``points`` to have the skew statistic
        (:func:`~repro.analysis.cost_model.grid_occupancy_cv`)
        computed, or precomputed ``n`` / ``skew`` when the points are
        not at hand.  ``mutable`` marks datasets that take live
        mutation (forces ``dynamic``); ``selectivity`` is the expected
        query-window workspace fraction, when the workload is known.
        """
        if points is not None:
            n = len(points)
            if skew is None:
                skew = grid_occupancy_cv(points)
        if n is None:
            raise ValueError("plan_index needs points or n")
        if skew is None:
            skew = float("nan")
        decision = recommend_index_kind(
            n, skew, mutable=mutable, selectivity=selectivity,
            skew_threshold=self.grid_skew_threshold,
        )
        if tracer.enabled:
            with tracer.span("plan_index") as span:
                span.annotate(**decision.as_dict())
        return decision

    def plan(
        self,
        shape_p: Optional[TreeShape],
        shape_q: Optional[TreeShape],
        buffer_pages: int,
        k: int = 1,
        tracer=NULL_TRACER,
        workers: int = 1,
        degraded: bool = False,
        range_spec=None,
    ) -> PlanDecision:
        """Pick an algorithm for one K-CPQ against a shaped tree pair.

        Parameters
        ----------
        shape_p, shape_q:
            Cost-model shapes of the two trees
            (:meth:`~repro.analysis.cost_model.TreeShape.from_tree`);
            ``None`` when the model cannot describe a tree (empty, or
            not 2-d), which forces the ``heap`` fallback.
        buffer_pages:
            Total LRU pages configured on the queried pair (both
            halves), compared against the predicted working set.
        k:
            Requested result cardinality; scales the predicted reach
            by ``sqrt(k)`` (uniform pair-population argument).
        workers:
            Worker-thread budget the caller is willing to spend on
            this one query (the service's ``max_query_workers``).  The
            decision's ``workers`` field is 1 unless the predicted
            speedup (:func:`estimate_parallel_speedup`) clears
            ``parallel_speedup_threshold``.
        tracer:
            Optional :class:`repro.obs.Tracer`; when enabled, the
            decision is recorded as a ``plan`` span carrying the full
            evidence (:meth:`PlanDecision.as_dict`).
        degraded:
            The pair's storage is suspect (its circuit breaker is not
            closed): cap the plan at one worker so a struggling device
            is not hit by a fan-out of parallel readers.
        range_spec:
            Optional :class:`repro.core.constraints.RangeSpec`.  Ranged
            plans choose between the specialized range algorithms by
            estimated window selectivity
            (:func:`~repro.analysis.cost_model.estimate_range_selectivity`):
            at most ``rcp_selectivity_threshold`` -> ``rcp`` (memoized
            candidate structure), above it -> ``clipped`` (clipped
            best-first traversal).

        Returns
        -------
        PlanDecision
            The chosen algorithm plus the estimates it was based on
            (``estimated_accesses`` in disk accesses,
            ``estimated_distance`` in workspace units).
        """
        if degraded:
            workers = 1
        if not tracer.enabled:
            decision = self._decide(shape_p, shape_q, buffer_pages, k,
                                    workers, range_spec)
        else:
            with tracer.span("plan") as span:
                decision = self._decide(shape_p, shape_q, buffer_pages, k,
                                        workers, range_spec)
                span.annotate(**decision.as_dict())
                if degraded:
                    span.annotate(degraded=True)
        spec = ALGORITHM_REGISTRY[decision.algorithm]
        # Unconstrained plans stay within the paper's plannable set;
        # ranged plans may pick the specialized range algorithms.
        assert spec.plannable or spec.specialized, (
            f"planner chose unplannable {spec.name!r}"
        )
        return decision

    def _decide(
        self,
        shape_p: Optional[TreeShape],
        shape_q: Optional[TreeShape],
        buffer_pages: int,
        k: int,
        workers: int = 1,
        range_spec=None,
    ) -> PlanDecision:
        if shape_p is None or shape_q is None:
            return PlanDecision(
                algorithm="clipped" if range_spec is not None else FALLBACK,
                reason="cost model unavailable for this pair; "
                       "defaulting to the best general algorithm",
                estimated_accesses=math.inf,
                estimated_distance=math.nan,
                buffer_pages=buffer_pages,
                height_p=shape_p.height if shape_p else 0,
                height_q=shape_q.height if shape_q else 0,
                k=k,
            )
        height_p = shape_p.height
        height_q = shape_q.height
        if height_p == 1 and height_q == 1:
            return PlanDecision(
                algorithm="exh",
                reason="both trees are a single leaf; one leaf-pair "
                       "scan, ordering machinery is overhead",
                estimated_accesses=2.0,
                estimated_distance=math.nan,
                buffer_pages=buffer_pages,
                height_p=height_p,
                height_q=height_q,
                k=k,
            )
        distance = estimate_closest_pair_distance(shape_p, shape_q)
        # E[d_K] of a uniform pair population scales like sqrt(K) times
        # the 1-CP distance; the bound a K-CPQ converges to is d_K.
        reach = distance * math.sqrt(k)
        accesses = estimate_cpq_accesses(shape_p, shape_q, t=reach)
        if range_spec is not None:
            return self._decide_ranged(
                shape_p, shape_q, buffer_pages, k, workers,
                range_spec, distance, accesses,
            )
        if accesses <= self.sim_threshold:
            algorithm = "sim"
            reason = (
                f"~{accesses:.0f} predicted accesses <= "
                f"{self.sim_threshold:g}; pruning pays, ordering "
                f"does not"
            )
        elif buffer_pages >= accesses:
            algorithm = "std"
            reason = (
                f"buffer of {buffer_pages} pages covers the "
                f"~{accesses:.0f}-access working set; recursive "
                f"sorted descent re-reads for free"
            )
        else:
            algorithm = "heap"
            reason = (
                f"~{accesses:.0f} predicted accesses exceed the "
                f"{buffer_pages}-page buffer; global best-first "
                f"order minimises disk I/O"
            )
        chosen_workers, speedup = 1, 1.0
        if workers > 1:
            speedup = estimate_parallel_speedup(accesses, workers)
            if speedup >= self.parallel_speedup_threshold:
                chosen_workers = workers
                reason += (
                    f"; ~{speedup:.1f}x predicted from {workers} workers"
                )
            else:
                speedup = 1.0
        return PlanDecision(
            algorithm=algorithm,
            reason=reason,
            estimated_accesses=accesses,
            estimated_distance=distance,
            buffer_pages=buffer_pages,
            height_p=height_p,
            height_q=height_q,
            k=k,
            workers=chosen_workers,
            estimated_speedup=speedup,
        )

    def _decide_ranged(
        self,
        shape_p: TreeShape,
        shape_q: TreeShape,
        buffer_pages: int,
        k: int,
        workers: int,
        range_spec,
        distance: float,
        accesses: float,
    ) -> PlanDecision:
        """Choose between the specialized range algorithms.

        Selectivity is estimated per constrained side and the largest
        taken (the side admitting more points dominates the traversal's
        qualifying population).
        """
        sides = []
        if range_spec.constrains_p:
            sides.append(estimate_range_selectivity(shape_p, range_spec))
        if range_spec.constrains_q:
            sides.append(estimate_range_selectivity(shape_q, range_spec))
        selectivity = max(sides) if sides else 1.0
        if selectivity <= self.rcp_selectivity_threshold:
            algorithm = "rcp"
            reason = (
                f"window covers ~{selectivity:.1%} of the workspace "
                f"(<= {self.rcp_selectivity_threshold:.0%}); small "
                f"candidate lists memoize well"
            )
        else:
            algorithm = "clipped"
            reason = (
                f"window covers ~{selectivity:.1%} of the workspace "
                f"(> {self.rcp_selectivity_threshold:.0%}); clipped "
                f"best-first traversal without memoization"
            )
        chosen_workers, speedup = 1, 1.0
        if workers > 1 and ALGORITHM_REGISTRY[algorithm].supports_parallel:
            speedup = estimate_parallel_speedup(accesses, workers)
            if speedup >= self.parallel_speedup_threshold:
                chosen_workers = workers
                reason += (
                    f"; ~{speedup:.1f}x predicted from {workers} workers"
                )
            else:
                speedup = 1.0
        return PlanDecision(
            algorithm=algorithm,
            reason=reason,
            estimated_accesses=accesses,
            estimated_distance=distance,
            buffer_pages=buffer_pages,
            height_p=shape_p.height,
            height_q=shape_q.height,
            k=k,
            workers=chosen_workers,
            estimated_speedup=speedup,
            range_selectivity=selectivity,
        )
