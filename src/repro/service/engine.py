"""Concurrent query service over registered R-tree pairs.

:class:`QueryService` turns the one-shot query functions of this
library into a servable system: requests (K-CPQ, K-NN, range) are
admitted onto a bounded queue, executed by a pool of worker threads,
answered from a generation-keyed result cache when possible, routed to
an algorithm by the cost-model planner, and observed end to end by
:class:`~repro.service.metrics.ServiceMetrics`.

Design points:

* **Admission control** -- the request queue is bounded; a submit
  against a full queue resolves immediately with a structured
  ``rejected`` response instead of blocking the caller.
* **Deadlines** -- every request may carry ``deadline_ms`` (measured
  from admission, so queue wait counts).  K-CPQ execution checks the
  deadline cooperatively once per visited node pair via the
  ``cancel_check`` hook threaded through :mod:`repro.core.engine`; an
  expired query resolves with a ``deadline_exceeded`` response and
  leaves trees and buffer pools consistent (the traversal only reads).
* **No exception escapes the pool** -- worker errors become ``error``
  responses carrying the exception text.
* **Mutations** -- every execution pins both trees' *committed
  snapshots* (:meth:`repro.rtree.tree.RTree.pin`) for its duration
  and reads through :class:`~repro.storage.snapshot.SnapshotView`
  proxies, so the whole query sees one consistent generation per
  tree.  Cache keys embed the pinned (committed) generations; a
  commit landing mid-query does not disturb the running traversal
  and is noticed by the next one, which drops the pair's stale cache
  entries and re-shapes the trees for the planner.  On trees with
  live mutation enabled (:meth:`~repro.rtree.tree.RTree.
  enable_live_mutation`) writers may therefore commit batches while
  queries are in flight; on plain trees pinning degrades to an
  unpinned peek and the old quiesce-first rule still applies.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.cost_model import TreeShape
from repro.core import api as core_api
from repro.core.api import (
    ALGORITHM_REGISTRY,
    ALGORITHMS,
    DeadlineExceeded,
    k_closest_pairs,
)
from repro.core.constraints import ColorSpec, RangeSpec
from repro.core.height import FIX_AT_ROOT
from repro.errors import (
    ServiceOverloadError,
    StorageError,
    UnsupportedCapabilityError,
)
from repro.geometry.mbr import MBR
from repro.obs.trace import NULL_TRACER
from repro.query.cpql import ParsedQuery, parse_cpql
from repro.query.knn import nearest_neighbors
from repro.query.range_query import range_query
from repro.rtree.tree import RTree
from repro.service.breaker import CLOSED, CircuitBreaker
from repro.service.cache import ResultCache, cache_key
from repro.service.metrics import ServiceMetrics
from repro.service.planner import PlanDecision, Planner

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_ERROR = "error"
#: Shed at admission: queue depth reached the shedding threshold.
STATUS_OVERLOADED = "overloaded"
#: Refused at execution: the pair's circuit breaker is open and no
#: stale result was available to degrade onto.
STATUS_UNAVAILABLE = "unavailable"
#: The request itself is invalid -- most prominently a capability
#: mismatch (:class:`repro.errors.UnsupportedCapabilityError`): a
#: range window or color predicate demanded from an algorithm whose
#: registry entry does not declare it.  The network edge maps this to
#: HTTP 400.
STATUS_BAD_REQUEST = "bad_request"


class ServiceClosed(RuntimeError):
    """Raised when submitting to a closed service."""


# ---------------------------------------------------------------------------
# Requests and responses
# ---------------------------------------------------------------------------

def _as_point(values: Sequence[float]) -> Tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class CPQRequest:
    """K closest pairs between the two trees of a registered pair.

    The service-level request adds routing concerns (``pair``,
    ``algorithm="auto"``, ``deadline_ms``, ``use_cache``) on top of the
    core query parameters; :meth:`to_query` projects it onto one
    :class:`repro.core.CPQRequest`, which is what execution and the
    cache key consume.
    """

    kind: ClassVar[str] = "cpq"

    pair: str
    k: int = 1
    #: ``"auto"`` delegates to the planner; any of
    #: :data:`repro.core.api.ALGORITHMS` forces that algorithm.
    algorithm: str = "auto"
    deadline_ms: Optional[float] = None
    use_cache: bool = True
    height_strategy: str = FIX_AT_ROOT
    #: Anything ``TieBreak.parse`` accepts (criterion names, chains).
    tie_break: Optional[object] = None
    maxmax_pruning: bool = True
    use_vectorized: bool = True
    #: Intra-query worker threads.  ``0`` (the default) is *auto*: the
    #: planner decides whether parallelism pays, within the service's
    #: ``max_query_workers`` budget.  Any value >= 1 forces exactly
    #: that many workers (still capped by ``max_query_workers``).
    #: Execution-only -- does not participate in the cache key.
    workers: int = 0
    #: Pin both trees' committed snapshots for the duration of the
    #: execution (the default).  A pinned query reads one consistent
    #: generation per tree even while writers commit batches; pages it
    #: can reach are not reclaimed until it releases.  ``False`` reads
    #: the live tree state unpinned -- only safe when nothing mutates
    #: concurrently.  Execution-only: not part of the cache key (the
    #: key already embeds the committed generations).
    pin_snapshot: bool = True
    #: Optional range window (:class:`repro.core.constraints.RangeSpec`
    #: or a bare ``(lo, hi)`` tuple) restricting reported pairs, and
    #: optional color predicates (:class:`~repro.core.constraints.
    #: ColorSpec`, a dict of its fields, or a bare modulus int).
    #: Capability validation happens when the request projects onto the
    #: core query: a forced algorithm without the matching flag raises
    #: :class:`~repro.errors.UnsupportedCapabilityError`, answered as
    #: ``bad_request``; ``"auto"`` plans a capable algorithm.
    range: Optional[RangeSpec] = None
    colors: Optional[ColorSpec] = None

    def __post_init__(self) -> None:
        # Normalise to the canonical frozen specs up front, so cache
        # keys, plans and wire payloads all see one identity.
        if self.range is not None and not isinstance(self.range, RangeSpec):
            lo, hi = self.range
            object.__setattr__(self, "range", RangeSpec(tuple(lo), tuple(hi)))
        if self.colors is not None and not isinstance(self.colors, ColorSpec):
            if isinstance(self.colors, dict):
                object.__setattr__(self, "colors", ColorSpec(**self.colors))
            else:
                object.__setattr__(
                    self, "colors", ColorSpec(modulus=int(self.colors))
                )

    def to_query(self, algorithm: Optional[str] = None,
                 workers: Optional[int] = None) -> core_api.CPQRequest:
        """The core query this request describes.

        ``algorithm`` substitutes the planner's choice for ``"auto"``;
        ``workers`` the resolved intra-query worker count for the
        ``0`` = auto default.  ``reset_stats`` is always off: the
        service accounts I/O itself and keeps buffers warm across
        requests.
        """
        if workers is None:
            workers = max(1, self.workers)
        return core_api.CPQRequest(
            k=self.k,
            algorithm=algorithm if algorithm is not None else self.algorithm,
            height_strategy=self.height_strategy,
            tie_break=self.tie_break,
            maxmax_pruning=self.maxmax_pruning,
            use_vectorized=self.use_vectorized,
            reset_stats=False,
            workers=max(1, workers),
            range=self.range,
            colors=self.colors,
        )

    def cache_params(self) -> Tuple:
        # The core request's own result-identity key, with one
        # substitution: "auto" requests are keyed on "auto" rather than
        # the planner's pick (decisions are deterministic per
        # generation, and the cache is invalidated on mutation).
        template = self.to_query(
            "heap" if self.algorithm == "auto" else self.algorithm
        )
        key = list(template.cache_key())
        key[1] = self.algorithm
        return (self.kind, *key)


@dataclass(frozen=True)
class KNNRequest:
    """K nearest neighbours of a point in one side of a pair."""

    kind: ClassVar[str] = "knn"

    pair: str
    point: Tuple[float, ...]
    k: int = 1
    #: Which tree of the pair to search: ``"p"`` or ``"q"``.
    side: str = "p"
    deadline_ms: Optional[float] = None
    use_cache: bool = True

    def __post_init__(self):
        object.__setattr__(self, "point", _as_point(self.point))

    def cache_params(self) -> Tuple:
        return (self.kind, self.side, self.point, self.k)


@dataclass(frozen=True)
class RangeRequest:
    """All points of one side of a pair inside a window."""

    kind: ClassVar[str] = "range"

    pair: str
    lo: Tuple[float, ...]
    hi: Tuple[float, ...]
    side: str = "p"
    deadline_ms: Optional[float] = None
    use_cache: bool = True

    def __post_init__(self):
        object.__setattr__(self, "lo", _as_point(self.lo))
        object.__setattr__(self, "hi", _as_point(self.hi))

    def cache_params(self) -> Tuple:
        return (self.kind, self.side, self.lo, self.hi)


Request = Union[CPQRequest, KNNRequest, RangeRequest]


@dataclass
class QueryResponse:
    """The structured outcome of one request (any status)."""

    status: str
    kind: str
    #: ``CPQResult`` for cpq; list of ``(distance, LeafEntry)`` for
    #: knn; list of ``LeafEntry`` for range.  ``None`` unless ``ok``.
    #: Shared with the cache on hits -- treat as immutable.
    result: Any = None
    algorithm: Optional[str] = None
    plan: Optional[PlanDecision] = None
    cached: bool = False
    #: True when this is a last-known-good cache entry served while the
    #: pair's circuit breaker was open; it may predate tree mutations.
    stale: bool = False
    #: True when a sharded execution lost one or more shards and the
    #: result covers only the surviving partitions (see
    #: ``docs/NETWORK.md``).  Always False for in-process execution
    #: and for sharded runs that recovered the lost work.
    partial: bool = False
    latency_ms: float = 0.0
    disk_reads: int = 0
    buffer_hits: int = 0
    #: Transient-read retries the buffer pool spent on this query
    #: (subject to the same concurrency caveat as ``disk_reads``).
    read_retries: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class PendingQuery:
    """Caller-side handle to an admitted (or rejected) request."""

    def __init__(self, request: Request, deadline: Optional[float]):
        self.request = request
        self.deadline = deadline
        self.admitted_at = time.monotonic()
        #: A :class:`PlanDecision` computed ahead of execution by
        #: :meth:`QueryService.submit_batch`, so a batch of "auto"
        #: queries against one pair plans once, not once per query.
        self.preplanned: Optional[PlanDecision] = None
        self._event = threading.Event()
        self._response: Optional[QueryResponse] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResponse:
        """Block until the response is ready."""
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        assert self._response is not None
        return self._response

    def _resolve(self, response: QueryResponse) -> None:
        self._response = response
        self._event.set()


class _RegisteredPair:
    """Service-side state of one (tree_p, tree_q) registration."""

    __slots__ = ("name", "tree_p", "tree_q", "lock", "shapes",
                 "seen_generations", "breaker")

    def __init__(self, name: str, tree_p: RTree, tree_q: RTree,
                 breaker: Optional[CircuitBreaker] = None):
        self.name = name
        self.tree_p = tree_p
        self.tree_q = tree_q
        self.lock = threading.Lock()
        #: Storage-scoped circuit breaker; tripped by StorageError
        #: executions against this pair only.
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: ``(shape_p, shape_q)`` for the planner, or None before the
        #: first CPQ / after a mutation.  A shape is itself None when
        #: the cost model cannot describe the tree.
        self.shapes: Optional[Tuple] = None
        self.seen_generations = (tree_p.generation, tree_q.generation)

    def buffer_pages(self) -> int:
        return (self.tree_p.file.buffer.capacity
                + self.tree_q.file.buffer.capacity)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class QueryService:
    """Thread-pooled query execution over registered tree pairs.

    Parameters
    ----------
    workers:
        Worker thread count.
    queue_size:
        Admission bound; submits beyond it are rejected, not queued.
    cache_size:
        Result-cache capacity (0 disables caching).
    default_deadline_ms:
        Deadline applied to requests that do not carry their own
        (milliseconds, measured from admission so queue wait counts).
    planner:
        Algorithm-selection policy; a default :class:`Planner` when
        omitted.
    metrics:
        Metrics sink shared across services if desired; a fresh
        :class:`ServiceMetrics` when omitted.
    tracer:
        A :class:`repro.obs.Tracer` to record every executed request
        as a span tree (``request`` -> ``plan`` -> ``traverse`` ->
        ``heap`` / ``io.p`` / ``io.q``) and fold per-span rollups into
        the metrics snapshot.  ``None`` (the default) disables tracing
        with zero hot-path cost.
    max_query_workers:
        Budget for *intra-query* parallelism: the largest worker count
        the partitioned executor (:mod:`repro.core.parallel`) may use
        for one CPQ.  ``1`` (the default) keeps queries serial;
        requests with ``workers=0`` (auto) let the planner decide
        within this budget, explicit ``workers>=1`` are capped by it.
    shed_threshold:
        Queue depth at which admission starts *shedding*: submits
        arriving while ``qsize() >= shed_threshold`` resolve
        immediately as ``overloaded`` (typed via
        :class:`repro.errors.ServiceOverloadError`) instead of joining
        the queue.  Must be <= ``queue_size`` to ever matter before
        hard rejection.  ``None`` (the default) disables shedding.
    breaker_factory:
        Builds the per-pair :class:`~repro.service.breaker.
        CircuitBreaker` at registration; defaults to
        ``CircuitBreaker()`` (5 consecutive storage failures open it
        for 30 s).  Inject a factory to tune thresholds or the clock.
    cpq_executor:
        Optional CPQ execution override, called as
        ``cpq_executor(pair_name, tree_p, tree_q, core_request,
        cancel_check, tracer)``.  Returning a
        :class:`~repro.core.result.CPQResult` substitutes for the
        in-process :func:`~repro.core.api.k_closest_pairs` call;
        returning ``None`` declines (unshardable algorithm, unknown
        pair) and execution falls through to the in-process path.
        This is how the network tier routes CPQ execution through a
        :class:`~repro.net.shard.ShardManager` while keeping the
        service's cache, planner, metrics and per-pair breaker in the
        loop.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 128,
        default_deadline_ms: Optional[float] = None,
        planner: Optional[Planner] = None,
        metrics: Optional[ServiceMetrics] = None,
        tracer=None,
        max_query_workers: int = 1,
        shed_threshold: Optional[int] = None,
        breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
        cpq_executor: Optional[Callable] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if max_query_workers < 1:
            raise ValueError("max_query_workers must be >= 1")
        if shed_threshold is not None and shed_threshold < 1:
            raise ValueError("shed_threshold must be >= 1")
        self.shed_threshold = shed_threshold
        self._breaker_factory = (
            breaker_factory if breaker_factory is not None
            else CircuitBreaker
        )
        self._cpq_executor = cpq_executor
        self.default_deadline_ms = default_deadline_ms
        #: Cap on *intra-query* parallelism (the partitioned executor's
        #: worker threads), independent of the ``workers`` pool that
        #: runs whole queries.  1 keeps every query serial.
        self.max_query_workers = max_query_workers
        self.planner = planner if planner is not None else Planner()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cache = ResultCache(cache_size)
        self._queue: "queue.Queue[Optional[PendingQuery]]" = queue.Queue(
            maxsize=queue_size
        )
        self._pairs: Dict[str, _RegisteredPair] = {}
        self._pairs_lock = threading.Lock()
        self._catalog = None
        self._catalog_open_kwargs: Dict[str, Any] = {}
        self._catalog_lock = threading.Lock()
        self._catalog_trees: List[RTree] = []
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- registration ------------------------------------------------------

    def register_pair(
        self, name: str, tree_p: RTree, tree_q: RTree
    ) -> None:
        """Make a tree pair addressable by ``request.pair == name``.

        ``tree_p`` is the "left" side of K-CPQ results and the
        ``side="p"`` target of K-NN/range requests; the trees must
        index points of the same dimension.  Re-registering a name
        replaces the pair (in-flight queries keep the trees they
        already resolved).
        """
        if tree_p.dimension != tree_q.dimension:
            raise ValueError("trees index points of different dimensions")
        with self._pairs_lock:
            replacing = name in self._pairs
            self._pairs[name] = _RegisteredPair(
                name, tree_p, tree_q, breaker=self._breaker_factory()
            )
        if replacing:
            # Cached results describe trees no longer behind the name.
            # Fresh entries could even collide (the new trees may reuse
            # the old generation numbers) and the last-known-good stock
            # is keyed without generations entirely, so drop both.
            self.cache.invalidate_pair(name, drop_stale=True)

    def pairs(self) -> List[str]:
        with self._pairs_lock:
            return sorted(self._pairs)

    def attach_catalog(
        self, catalog, *, kind: Optional[str] = None,
        use_mmap: Optional[bool] = None, buffer_capacity: int = 64,
        read_latency: float = 0.0,
    ) -> None:
        """Resolve unregistered pair names against a catalog.

        With a :class:`repro.catalog.Catalog` attached, a CPQ or SQL
        request addressing an unknown pair ``"a,b"`` (or a bare
        ``"a"``, the self-join) auto-registers it by opening the named
        datasets through :meth:`~repro.catalog.Catalog.open_dataset`
        -- the catalog's metadata, not hand-plumbed paths, decides
        page size, mmap and legacy flags.  ``kind`` pins one index
        kind for every dataset; ``None`` takes each dataset's
        default.  The open keyword arguments apply to every tree
        opened this way; the service closes those trees on
        :meth:`close`.  Explicit :meth:`register_pair` registrations
        always win over catalog resolution.
        """
        self._catalog = catalog
        self._catalog_open_kwargs = {
            "kind": kind,
            "use_mmap": use_mmap,
            "buffer_capacity": buffer_capacity,
            "read_latency": read_latency,
        }

    def _resolve_pair(self, name: str) -> None:
        """Auto-register ``name`` from the attached catalog if needed.

        Raises :class:`repro.errors.UnknownDatasetError` when a
        catalog is attached but does not know a referenced dataset;
        silently returns when no catalog is attached (the execution
        path then answers ``unknown pair`` as before).
        """
        with self._pairs_lock:
            if name in self._pairs:
                return
        if self._catalog is None:
            return
        datasets = [part.strip() for part in name.split(",")]
        if len(datasets) == 1:
            datasets = [datasets[0], datasets[0]]
        if len(datasets) != 2 or not all(datasets):
            return  # not a catalog-shaped pair name
        with self._catalog_lock:
            with self._pairs_lock:
                if name in self._pairs:
                    return
            opened: Dict[str, Any] = {}
            for dataset in datasets:
                # A self-join opens one tree and hands it to both
                # sides -- the self-CPQ algorithms insist on identity.
                if dataset not in opened:
                    opened[dataset] = self._catalog.open_dataset(
                        dataset,
                        self._catalog_open_kwargs.get("kind"),
                        use_mmap=self._catalog_open_kwargs.get(
                            "use_mmap"
                        ),
                        buffer_capacity=self._catalog_open_kwargs.get(
                            "buffer_capacity", 64
                        ),
                        read_latency=self._catalog_open_kwargs.get(
                            "read_latency", 0.0
                        ),
                    )
            self._catalog_trees.extend(opened.values())
            self.register_pair(
                name, opened[datasets[0]], opened[datasets[1]]
            )

    # -- CPQL --------------------------------------------------------------

    def submit_sql(
        self, sql: Union[str, ParsedQuery], *, pair: Optional[str] = None,
        deadline_ms: Optional[float] = None, use_cache: bool = True,
    ) -> PendingQuery:
        """Admit one CPQL statement (see :mod:`repro.query.cpql`).

        The statement's ``FROM`` datasets name the pair; an attached
        catalog (:meth:`attach_catalog`) resolves pairs not yet
        registered.  ``pair`` overrides the derived name for services
        whose registrations do not follow the ``"a,b"`` convention.
        Syntax errors raise :class:`~repro.errors.CPQLError` and
        unknown datasets :class:`~repro.errors.UnknownDatasetError`
        *synchronously* -- the request never enters the queue; the
        CLI and the network edge map both onto their bad-request
        surfaces (exit code 2, HTTP 400).  Load and execution
        failures resolve through the returned handle exactly as for
        :meth:`submit`.
        """
        parsed = parse_cpql(sql) if isinstance(sql, str) else sql
        request = parsed.to_service_request(
            pair=pair, deadline_ms=deadline_ms, use_cache=use_cache
        )
        self._resolve_pair(request.pair)
        return self.submit(request)

    def execute_sql(
        self, sql: Union[str, ParsedQuery], *,
        timeout: Optional[float] = None, **kwargs,
    ) -> QueryResponse:
        """Run one CPQL statement and wait for its response."""
        return self.submit_sql(sql, **kwargs).result(timeout)

    # -- submission --------------------------------------------------------

    def submit(self, request: Request,
               _preplanned: Optional[PlanDecision] = None) -> PendingQuery:
        """Admit a request; never blocks and never raises for load.

        Returns a handle whose :meth:`PendingQuery.result` yields the
        structured response -- immediately resolved as ``rejected``
        when the service is saturated or closed.  ``_preplanned`` is
        :meth:`submit_batch`'s channel for a shared plan decision; it
        must be installed before enqueueing (a pool worker may pick the
        query up immediately).
        """
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        pending = PendingQuery(request, deadline)
        pending.preplanned = _preplanned
        self.metrics.record_submitted()
        if self._closed:
            self._finish(pending, QueryResponse(
                status=STATUS_REJECTED, kind=request.kind,
                error="service closed",
            ))
            return pending
        if self.shed_threshold is not None:
            depth = self._queue.qsize()
            if depth >= self.shed_threshold:
                self.metrics.record_shed()
                self._finish(pending, QueryResponse(
                    status=STATUS_OVERLOADED, kind=request.kind,
                    error=str(ServiceOverloadError(
                        depth, self.shed_threshold
                    )),
                ))
                return pending
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._finish(pending, QueryResponse(
                status=STATUS_REJECTED, kind=request.kind,
                error="admission queue full",
            ))
            return pending
        self.metrics.set_queue_depth(self._queue.qsize())
        return pending

    def execute(
        self, request: Request, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit one request and wait for its response.

        ``timeout`` (seconds) bounds the *wait*, not the query -- use
        ``request.deadline_ms`` to bound execution.  Returns the
        structured :class:`QueryResponse`; like :meth:`submit`, never
        raises for load or query failure.
        """
        return self.submit(request).result(timeout)

    def run_batch(
        self, requests: Sequence[Request],
        timeout: Optional[float] = None,
    ) -> List[QueryResponse]:
        """Submit a batch and collect responses in request order.

        All requests are admitted before any response is awaited, so
        the batch runs at full pool width; ``timeout`` (seconds)
        applies to each individual wait.
        """
        handles = [self.submit(request) for request in requests]
        return [handle.result(timeout) for handle in handles]

    def submit_batch(
        self, requests: Sequence[Request]
    ) -> List[PendingQuery]:
        """Admit a batch with amortised planning and shared warmup.

        Per-query work that repeats across a homogeneous batch is
        hoisted out of the worker pool:

        * **Planning** -- ``algorithm="auto"`` CPQ requests against the
          same pair with the same ``k`` share one
          :class:`~repro.service.planner.PlanDecision` (decisions are
          deterministic per tree generation, so re-planning per query
          only costs time).  Each execution still tallies its applied
          decision in the metrics.
        * **Buffer warmup** -- both roots of every addressed pair are
          read once before admission, so the pool's first wave of
          workers hits a warm buffer instead of racing duplicate
          root faults.

        Returns the handles in request order; collect results with
        ``[h.result() for h in handles]``.  Admission semantics match
        :meth:`submit` (rejected-on-full, never blocks).
        """
        plans: Dict[Tuple, PlanDecision] = {}
        warmed = set()
        for request in requests:
            with self._pairs_lock:
                pair = self._pairs.get(request.pair)
            if pair is None:
                continue  # submit() resolves it as an error response
            self._refresh_pair(pair)
            if pair.name not in warmed:
                warmed.add(pair.name)
                for tree in (pair.tree_p, pair.tree_q):
                    if tree.root_id is not None:
                        tree.read_node(tree.root_id)
            if request.kind != "cpq" or request.algorithm != "auto":
                continue
            budget = (self.max_query_workers
                      if request.workers == 0 else 1)
            key = (pair.name, request.k, budget, request.range)
            if key not in plans:
                shape_p, shape_q = self._shapes(pair)
                plans[key] = self.planner.plan(
                    shape_p, shape_q, pair.buffer_pages(), k=request.k,
                    tracer=self.tracer, workers=budget,
                    range_spec=request.range,
                )
        handles = []
        for request in requests:
            preplanned = None
            if request.kind == "cpq" and request.algorithm == "auto":
                budget = (self.max_query_workers
                          if request.workers == 0 else 1)
                preplanned = plans.get(
                    (request.pair, request.k, budget, request.range)
                )
            handles.append(self.submit(request, _preplanned=preplanned))
        return handles

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable metrics snapshot (the serve-stats view).

        Top-level sections: ``queries``, ``latency_ms``, ``planner``,
        ``cache``, ``io``, ``queue`` and -- when a tracer is installed
        -- the per-span-name ``spans`` rollup.  Schemas are documented
        in ``docs/SERVICE.md`` and ``docs/OBSERVABILITY.md``.
        """
        self.metrics.set_queue_depth(self._queue.qsize())
        return self.metrics.snapshot(cache_size=len(self.cache))

    # -- lifecycle ---------------------------------------------------------

    def close(self, wait: bool = True, drain: bool = False) -> None:
        """Stop accepting work; optionally drain and join the pool.

        ``drain=True`` blocks until every already-admitted query has
        *finished executing* before the worker teardown begins, so no
        in-flight caller is left holding an unresolved handle.  (The
        poison-pill teardown alone already guarantees queued work runs
        before any worker exits -- the queue is FIFO -- but only
        ``wait=True`` observes it; ``drain`` makes the guarantee
        explicit and independent of ``wait``.)  New submissions are
        rejected from the first moment of either path.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            # Every admitted PendingQuery is balanced by a task_done
            # in the worker loop; join() returns once all of them --
            # including those currently executing -- have resolved.
            self._queue.join()
        for __ in self._workers:
            self._queue.put(None)
        if wait:
            for thread in self._workers:
                thread.join()
        if wait or drain:
            # All admitted work has finished: release the trees this
            # service opened itself (catalog auto-registration).
            # Caller-registered trees stay the caller's to close.
            with self._catalog_lock:
                trees, self._catalog_trees = self._catalog_trees, []
            for tree in trees:
                close = getattr(
                    getattr(tree.file, "store", None), "close", None
                )
                if close is not None:
                    close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker internals --------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            pending = self._queue.get()
            try:
                if pending is None:
                    return
                self.metrics.set_queue_depth(self._queue.qsize())
                self._run(pending)
            finally:
                self._queue.task_done()

    def _run(self, pending: PendingQuery) -> None:
        request = pending.request
        tracer = self.tracer
        if not tracer.enabled:
            self._finish(pending, self._guarded_execute(pending))
            return
        with tracer.span(
            "request", kind=request.kind, pair=request.pair
        ) as span:
            span.annotate(queue_wait_ms=round(
                (time.monotonic() - pending.admitted_at) * 1000.0, 3
            ))
            response = self._guarded_execute(pending)
            span.annotate(status=response.status, cached=response.cached)
            if response.algorithm is not None:
                span.annotate(algorithm=response.algorithm)
        self.metrics.record_trace(span)
        self._finish(pending, response)

    def _guarded_execute(self, pending: PendingQuery) -> QueryResponse:
        """Execute one admitted request; no exception escapes."""
        request = pending.request
        try:
            self._check_deadline(pending.deadline)
            return self._execute(request, pending.deadline,
                                 preplanned=pending.preplanned)
        except DeadlineExceeded:
            return QueryResponse(
                status=STATUS_DEADLINE, kind=request.kind,
                error="deadline exceeded",
            )
        except UnsupportedCapabilityError as exc:
            # The request is malformed, not the service unhealthy: a
            # forced algorithm lacking the demanded capability.  The
            # message carries the capable algorithms.
            return QueryResponse(
                status=STATUS_BAD_REQUEST, kind=request.kind,
                error=str(exc),
            )
        except Exception as exc:  # noqa: BLE001 -- pool must survive
            return QueryResponse(
                status=STATUS_ERROR, kind=request.kind,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _finish(
        self, pending: PendingQuery, response: QueryResponse
    ) -> None:
        response.latency_ms = (
            (time.monotonic() - pending.admitted_at) * 1000.0
        )
        self.metrics.record_query(
            kind=response.kind,
            status=response.status,
            latency_ms=response.latency_ms,
            cached=response.cached,
            disk_reads=response.disk_reads,
            buffer_hits=response.buffer_hits,
            algorithm=response.algorithm,
            read_retries=response.read_retries,
        )
        pending._resolve(response)

    @staticmethod
    def _check_deadline(deadline: Optional[float]) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded()

    @staticmethod
    def _deadline_probe(
        deadline: Optional[float],
    ) -> Optional[Callable[[], None]]:
        if deadline is None:
            return None

        def probe() -> None:
            if time.monotonic() > deadline:
                raise DeadlineExceeded()

        return probe

    def _execute(
        self, request: Request, deadline: Optional[float],
        preplanned: Optional[PlanDecision] = None,
    ) -> QueryResponse:
        with self._pairs_lock:
            pair = self._pairs.get(request.pair)
        if pair is None:
            return QueryResponse(
                status=STATUS_ERROR, kind=request.kind,
                error=f"unknown pair {request.pair!r}",
            )
        # Pin both committed snapshots for the whole execution: cache
        # key, planner refresh and traversal all describe exactly these
        # generations, and no page either query can reach is reclaimed
        # until the pins release (see docs/STORAGE.md).
        pin = getattr(request, "pin_snapshot", True)
        snap_p = pair.tree_p.pin() if pin else pair.tree_p.committed()
        snap_q = pair.tree_q.pin() if pin else pair.tree_q.committed()
        try:
            return self._execute_pinned(
                pair, request, deadline, snap_p, snap_q, preplanned
            )
        finally:
            if pin:
                pair.tree_p.release(snap_p)
                pair.tree_q.release(snap_q)

    def _execute_pinned(
        self, pair: _RegisteredPair, request: Request,
        deadline: Optional[float], snap_p, snap_q,
        preplanned: Optional[PlanDecision] = None,
    ) -> QueryResponse:
        generation_p, generation_q = self._refresh_pair(
            pair, (snap_p.generation, snap_q.generation)
        )
        view_p = pair.tree_p.view(snap_p)
        # A self-join pair shares one view: the self-CPQ algorithms
        # demand object identity between the two sides.
        if pair.tree_p is pair.tree_q:
            view_q = view_p
        else:
            view_q = pair.tree_q.view(snap_q)

        key = None
        if request.use_cache and self.cache.capacity > 0:
            key = cache_key(
                pair.name, generation_p, generation_q,
                request.cache_params(),
            )
            hit, value = self.cache.get(key)
            if hit:
                return QueryResponse(
                    status=STATUS_OK, kind=request.kind,
                    result=value["result"],
                    algorithm=value["algorithm"],
                    plan=value["plan"],
                    cached=True,
                )
            self.metrics.record_cache_miss()

        if not pair.breaker.allow():
            # Breaker open (or half-open with the probe slot taken):
            # fail fast without touching the suspect storage.  Degrade
            # onto the last known good result when the caller accepts
            # caching, flagged ``stale`` because it may predate
            # mutations.
            self.metrics.record_breaker_rejection()
            if request.use_cache and self.cache.capacity > 0:
                found, value = self.cache.get_stale(
                    pair.name, request.cache_params()
                )
                if found:
                    self.metrics.record_stale_served()
                    return QueryResponse(
                        status=STATUS_OK, kind=request.kind,
                        result=value["result"],
                        algorithm=value["algorithm"],
                        plan=value["plan"],
                        cached=True, stale=True,
                    )
            return QueryResponse(
                status=STATUS_UNAVAILABLE, kind=request.kind,
                error=(f"circuit breaker open for pair {pair.name!r} "
                       f"and no stale result available"),
            )

        before_p = pair.tree_p.stats.snapshot()
        before_q = pair.tree_q.stats.snapshot()
        try:
            if request.kind == "cpq":
                result, algorithm, plan = self._run_cpq(
                    pair, view_p, view_q, request, deadline, preplanned
                )
            elif request.kind == "knn":
                result, algorithm, plan = self._run_knn(
                    view_p, view_q, request, deadline
                )
            else:
                result, algorithm, plan = self._run_range(
                    view_p, view_q, request, deadline
                )
        except StorageError as exc:
            # Retries are already exhausted (or corruption confirmed)
            # by the storage layer when this surfaces: count it against
            # the pair's breaker and the fault tally, then let
            # _guarded_execute shape the error response.
            pair.breaker.record_failure()
            self.metrics.record_storage_fault(type(exc).__name__)
            raise
        except BaseException:
            # Non-storage outcome (deadline expiry, request-shaped
            # error): no verdict on pair health, but if this request
            # held the half-open probe slot it must be returned or the
            # breaker wedges half-open, rejecting everything.
            pair.breaker.release_probe()
            raise
        pair.breaker.record_success()
        after_p = pair.tree_p.stats.snapshot()
        after_q = pair.tree_q.stats.snapshot()
        disk_reads = (
            (after_p.disk_reads - before_p.disk_reads)
            + (after_q.disk_reads - before_q.disk_reads)
        )
        buffer_hits = (
            (after_p.buffer_hits - before_p.buffer_hits)
            + (after_q.buffer_hits - before_q.buffer_hits)
        )
        read_retries = (
            (after_p.read_retries - before_p.read_retries)
            + (after_q.read_retries - before_q.read_retries)
        )
        # A sharded execution that lost shards and could not recover
        # their partitions flags the result partial; such a result is
        # *not* cached (it is not the true answer for the key).
        partial = bool(
            request.kind == "cpq"
            and result.stats.extra.get("net", {}).get("partial")
        )
        if partial:
            self.metrics.record_partial_response()
        # Self-healing events this query's scatter-gather burned
        # through (retries, hedges, damaged frames) roll up into the
        # resilience.net section of /stats.
        if request.kind == "cpq":
            net = result.stats.extra.get("net", {})
            for event in ("retries", "hedges", "hedge_wins",
                          "frame_errors", "dedup_dropped"):
                count = net.get(event, 0)
                if count:
                    self.metrics.record_net_event(event, count)
        if key is not None and not partial:
            self.cache.put(
                key,
                {"result": result, "algorithm": algorithm, "plan": plan},
            )
        return QueryResponse(
            status=STATUS_OK, kind=request.kind,
            result=result, algorithm=algorithm, plan=plan,
            disk_reads=disk_reads, buffer_hits=buffer_hits,
            read_retries=read_retries, partial=partial,
        )

    def _run_cpq(
        self,
        pair: _RegisteredPair,
        view_p,
        view_q,
        request: CPQRequest,
        deadline: Optional[float],
        preplanned: Optional[PlanDecision] = None,
    ):
        plan = None
        if request.algorithm == "auto":
            if preplanned is not None:
                plan = preplanned
            else:
                shape_p, shape_q = self._shapes(pair)
                plan = self.planner.plan(
                    shape_p, shape_q, pair.buffer_pages(), k=request.k,
                    tracer=self.tracer,
                    workers=(self.max_query_workers
                             if request.workers == 0 else 1),
                    degraded=pair.breaker.state != CLOSED,
                    range_spec=request.range,
                )
            algorithm = plan.algorithm
            self.metrics.record_planner_decision(algorithm)
        elif request.algorithm in ALGORITHM_REGISTRY:
            algorithm = request.algorithm
        else:
            raise ValueError(
                f"unknown algorithm {request.algorithm!r}; expected "
                f"'auto' or one of {ALGORITHMS}"
            )
        if request.workers > 0:
            workers = min(request.workers, self.max_query_workers)
        elif plan is not None:
            workers = min(plan.workers, self.max_query_workers)
        else:
            workers = 1
        core_request = request.to_query(algorithm, workers=workers)
        probe = self._deadline_probe(deadline)
        result = None
        if self._cpq_executor is not None:
            result = self._cpq_executor(
                pair.name, view_p, view_q, core_request,
                probe, self.tracer,
            )
        if result is None:
            result = k_closest_pairs(
                view_p,
                view_q,
                request=core_request,
                cancel_check=probe,
                tracer=self.tracer,
            )
        if result.stats.extra.get("parallel_fallback"):
            self.metrics.record_parallel_fallback()
        return result, algorithm, plan

    def _run_knn(
        self,
        view_p,
        view_q,
        request: KNNRequest,
        deadline: Optional[float],
    ):
        tree = self._side(view_p, view_q, request.side)
        found = nearest_neighbors(tree, request.point, k=request.k)
        # The single-tree traversals have no cooperative hook; they are
        # short (O(height) node reads), so the deadline is enforced at
        # the boundaries only.
        self._check_deadline(deadline)
        return found, None, None

    def _run_range(
        self,
        view_p,
        view_q,
        request: RangeRequest,
        deadline: Optional[float],
    ):
        tree = self._side(view_p, view_q, request.side)
        found = range_query(tree, MBR(request.lo, request.hi))
        self._check_deadline(deadline)
        return found, None, None

    @staticmethod
    def _side(view_p, view_q, side: str):
        if side == "p":
            return view_p
        if side == "q":
            return view_q
        raise ValueError(f"side must be 'p' or 'q', not {side!r}")

    # -- pair state --------------------------------------------------------

    def _refresh_pair(
        self, pair: _RegisteredPair,
        generations: Optional[Tuple[int, int]] = None,
    ) -> Tuple[int, int]:
        """Observe tree generations; invalidate on mutation.

        ``generations`` carries the pinned committed generations when
        the caller already holds a snapshot pair; otherwise the trees'
        committed state is peeked.  Returns the generations the
        subsequent execution is keyed on.
        """
        if generations is None:
            generations = (
                pair.tree_p.committed().generation,
                pair.tree_q.committed().generation,
            )
        with pair.lock:
            if generations != pair.seen_generations:
                pair.seen_generations = generations
                pair.shapes = None
                self.cache.invalidate_pair(pair.name)
        return generations

    def _shapes(self, pair: _RegisteredPair) -> Tuple:
        """Planner shapes for a pair, rebuilt once per generation.

        The rebuilding scan reads every node; its I/O is attributed to
        the query that triggered it (it is real I/O the service paid).
        """
        with pair.lock:
            if pair.shapes is None:
                pair.shapes = (
                    self._shape_or_none(pair.tree_p),
                    self._shape_or_none(pair.tree_q),
                )
            return pair.shapes

    @staticmethod
    def _shape_or_none(tree: RTree) -> Optional[TreeShape]:
        if tree.root_id is None or tree.dimension != 2:
            return None
        return TreeShape.from_tree(tree)
