"""An analytical cost model for closest pair queries.

Extends the spatial-join analysis of Theodoridis, Stefanakis & Sellis
(ICDE'98) to CPQs.  A best-case CPQ algorithm (STD/HEAP with a quickly
tightened bound ``T``) must process every node pair whose MINMINDIST
does not exceed the final ``T`` -- the distance of the K-th closest
pair.  The model therefore predicts

    accesses  =  2 + sum over levels j of
                 2 * n_P(j) * n_Q(j) * Pr[within T along x] *
                                       Pr[within T along y]

where ``n_X(j)`` is the node count of tree X at level j and the
per-axis proximity probability treats node centres as uniform in
their workspace (the standard uniformity assumption of R-tree
analysis).  The two ingredients are:

* :func:`interval_proximity_probability` -- the exact probability that
  two random intervals lie within a given reach of each other;
* :func:`estimate_closest_pair_distance` -- the expected 1-CP distance
  of two uniform sets (or the workspace gap when they are disjoint).

All of this is approximate by design (uniformity, axis independence,
an L-infinity reach standing in for the Euclidean ball); the paper's
conclusions live on orders of magnitude and crossover locations, and
the validation benchmark checks the model at that granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.datasets.workspace import Workspace
from repro.rtree.tree import RTree


def _cdf_difference(t: float, a: float, b: float, c: float, d: float) -> float:
    """P(U - V <= t) for U ~ Uniform[a, b], V ~ Uniform[c, d]."""
    if b < a or d < c:
        raise ValueError("invalid interval bounds")
    if b == a and d == c:
        return 1.0 if a - c <= t else 0.0
    if b == a:
        # P(a - V <= t) = P(V >= a - t)
        return _clamped_fraction(a - t, c, d, lower_tail=False)
    if d == c:
        # P(U <= c + t)
        return _clamped_fraction(c + t, a, b, lower_tail=True)
    # Integrate P(U <= v + t) over v in [c, d]:
    #   f(v) = (min(b, max(a, v + t)) - a) / (b - a)
    # piecewise linear with breakpoints at v = a - t and v = b - t.
    lo = a - t
    hi = b - t
    total = 0.0
    # Region v <= lo: f = 0 (contributes nothing).
    # Region lo <= v <= hi: f = (v + t - a) / (b - a).
    seg_lo = max(c, lo)
    seg_hi = min(d, hi)
    if seg_hi > seg_lo:
        # integral of a linear ramp
        f_lo = (seg_lo + t - a) / (b - a)
        f_hi = (seg_hi + t - a) / (b - a)
        total += 0.5 * (f_lo + f_hi) * (seg_hi - seg_lo)
    # Region v >= hi: f = 1.
    seg_lo = max(c, hi)
    if d > seg_lo:
        total += d - seg_lo
    return total / (d - c)


def _clamped_fraction(
    threshold: float, lo: float, hi: float, lower_tail: bool
) -> float:
    """P(X <= threshold) or P(X >= threshold) for X ~ Uniform[lo, hi]."""
    if hi == lo:
        at_or_below = 1.0 if lo <= threshold else 0.0
        return at_or_below if lower_tail else (
            1.0 if lo >= threshold else 0.0
        )
    fraction = (threshold - lo) / (hi - lo)
    fraction = min(1.0, max(0.0, fraction))
    return fraction if lower_tail else 1.0 - fraction


def interval_proximity_probability(
    center_range_a: Tuple[float, float],
    length_a: float,
    center_range_b: Tuple[float, float],
    length_b: float,
    reach: float,
) -> float:
    """Probability two random intervals are within ``reach``.

    Interval A has length ``length_a`` and a centre uniform in
    ``center_range_a`` (likewise B).  They are "within reach" when the
    gap between them along the axis is at most ``reach``, i.e. when
    ``|centre_A - centre_B| <= (length_a + length_b) / 2 + reach``.
    Exact under the uniform-centre assumption.

    Parameters
    ----------
    center_range_a, center_range_b:
        ``(lo, hi)`` bounds of each interval centre's uniform
        distribution, in workspace units.
    length_a, length_b:
        Fixed interval lengths (average node extents along the axis),
        workspace units, ``>= 0``.
    reach:
        Maximum allowed gap between the intervals (the pruning bound
        ``T`` projected on this axis), workspace units, ``>= 0``.

    Returns
    -------
    float
        A probability in ``[0, 1]``.
    """
    if reach < 0:
        raise ValueError("reach must be >= 0")
    if length_a < 0 or length_b < 0:
        raise ValueError("interval lengths must be >= 0")
    a, b = center_range_a
    c, d = center_range_b
    radius = (length_a + length_b) / 2.0 + reach
    if a == b and c == d:
        # Two point masses: the subtraction of CDFs below would lose
        # the boundary case |difference| == radius.
        return 1.0 if abs(a - c) <= radius else 0.0
    return _cdf_difference(radius, a, b, c, d) - _cdf_difference(
        -radius, a, b, c, d
    )


@dataclass(frozen=True)
class LevelShape:
    """Aggregate geometry of one tree level."""

    level: int
    node_count: int
    avg_width: float
    avg_height: float


@dataclass
class TreeShape:
    """What the cost model needs to know about one R-tree."""

    levels: List[LevelShape]  # index 0 = leaf level
    workspace: Workspace
    point_count: int

    @property
    def height(self) -> int:
        return len(self.levels)

    @classmethod
    def from_tree(
        cls, tree: RTree, workspace: Optional[Workspace] = None
    ) -> "TreeShape":
        """Measure an actual tree (exact node counts and extents)."""
        if tree.root_id is None:
            raise ValueError("cannot shape an empty tree")
        counts = [0] * tree.height
        widths = [0.0] * tree.height
        heights = [0.0] * tree.height
        for node in tree.iter_nodes():
            mbr = node.mbr()
            counts[node.level] += 1
            widths[node.level] += mbr.side(0)
            heights[node.level] += mbr.side(1)
        if workspace is None:
            root_mbr = tree.read_root().mbr()
            workspace = Workspace(
                root_mbr.lo[0], root_mbr.lo[1],
                max(root_mbr.hi[0], root_mbr.lo[0] + 1e-12),
                max(root_mbr.hi[1], root_mbr.lo[1] + 1e-12),
            )
        levels = [
            LevelShape(j, counts[j], widths[j] / counts[j],
                       heights[j] / counts[j])
            for j in range(tree.height)
        ]
        return cls(levels, workspace, len(tree))

    @classmethod
    def uniform(
        cls,
        n: int,
        workspace: Workspace,
        fanout: float = 14.0,
        height: Optional[int] = None,
    ) -> "TreeShape":
        """Predict the shape of a tree over uniform data analytically.

        Nodes at level j: ``ceil(n / fanout^(j+1))``; each covers an
        approximately square share of the workspace area.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if fanout <= 1:
            raise ValueError("fanout must be > 1")
        if height is None:
            height = max(1, math.ceil(math.log(max(n, 2), fanout)))
        area = workspace.area
        levels = []
        for j in range(height):
            count = max(1, math.ceil(n / fanout ** (j + 1)))
            side = math.sqrt(area / count)
            levels.append(
                LevelShape(
                    j,
                    count,
                    min(side, workspace.width),
                    min(side, workspace.height),
                )
            )
        return cls(levels, workspace, n)


def estimate_closest_pair_distance(
    shape_p: TreeShape, shape_q: TreeShape
) -> float:
    """Expected 1-CP distance between the two (uniform) point sets.

    For overlapping workspaces with ``n`` cross pairs inside the shared
    region of area ``A``: the minimum of ``n`` approximately-uniform
    pair distances has E[d*] ~ sqrt(A / (pi * n)).  For disjoint
    workspaces the answer is dominated by the workspace gap.

    This is the model's guess at the bound ``T`` a well-pruned
    algorithm converges to (the quantity the paper's Inequality 2
    tightens during the descent, Section 3.2).

    Parameters
    ----------
    shape_p, shape_q:
        The two tree shapes; only their workspaces and point counts
        are used here.

    Returns
    -------
    float
        Euclidean distance in workspace units.  Uniformity makes this
        an underestimate on clustered data (see the worked example in
        ``docs/OBSERVABILITY.md``).
    """
    wp = shape_p.workspace
    wq = shape_q.workspace
    ox = min(wp.xmax, wq.xmax) - max(wp.xmin, wq.xmin)
    oy = min(wp.ymax, wq.ymax) - max(wp.ymin, wq.ymin)
    gap_x = max(0.0, -ox)
    gap_y = max(0.0, -oy)
    if gap_x > 0 or gap_y > 0:
        return math.hypot(gap_x, gap_y)
    shared = ox * oy
    in_region_p = shape_p.point_count * shared / wp.area
    in_region_q = shape_q.point_count * shared / wq.area
    pairs = max(1.0, in_region_p * in_region_q)
    return math.sqrt(shared / (math.pi * pairs))


#: Measured CPU cost of one entry pair in each pairwise expansion
#: kernel, in nanoseconds (``benchmarks/bench_kernels.py``, M = 21
#: nodes, d = 2, Euclidean; re-run it after kernel changes and update
#: these).  Keys are the :data:`repro.geometry.vectorized.KERNEL_STATS`
#: kernel names: the NumPy batch kernels plus the engine's ``*_scalar``
#: fallbacks.
KERNEL_NS_PER_PAIR = {
    "minmin": 112.0,
    "minmax": 616.0,
    "maxmax": 88.0,
    "points": 54.0,
    "minmin_scalar": 1940.0,
    "minmax_scalar": 10980.0,
    "maxmax_scalar": 2120.0,
    "points_scalar": 3280.0,
}


def estimate_cpu_ms(kernels: dict) -> float:
    """Predicted CPU milliseconds spent in the pairwise kernels.

    Folds a kernel tally -- the ``"kernels"`` section of the service
    metrics snapshot, i.e. ``{name: {"pairs": ...}}`` from
    :meth:`repro.geometry.vectorized.KernelStats.snapshot` -- through
    the :data:`KERNEL_NS_PER_PAIR` calibration table.  This is the
    CPU-side complement of :func:`estimate_cpq_accesses` (which prices
    only I/O): comparing the two tells an operator whether a workload
    is disk- or compute-bound, and comparing this estimate against the
    measured latency rollups recalibrates the table.

    Unknown kernel names are priced at the most expensive known rate
    rather than dropped, so the estimate stays an upper-ish bound when
    new kernels land before their calibration does.
    """
    fallback = max(KERNEL_NS_PER_PAIR.values())
    total_ns = 0.0
    for name, tally in kernels.items():
        pairs = tally["pairs"] if isinstance(tally, dict) else tally
        total_ns += pairs * KERNEL_NS_PER_PAIR.get(name, fallback)
    return total_ns / 1e6


def _center_range(lo: float, hi: float, side: float) -> Tuple[float, float]:
    half = min(side, hi - lo) / 2.0
    return lo + half, max(lo + half, hi - half)


def estimate_cpq_accesses(
    shape_p: TreeShape,
    shape_q: TreeShape,
    t: Optional[float] = None,
) -> float:
    """Predicted disk accesses of a well-pruned 1-CP query.

    A best-case algorithm (STD/HEAP, Section 3 of the paper) must
    visit every node pair whose MINMINDIST does not exceed the final
    pruning bound; this sums, level by level, the expected number of
    such pairs times two reads per pair.

    Parameters
    ----------
    shape_p, shape_q:
        Tree shapes from :meth:`TreeShape.from_tree` (measured) or
        :meth:`TreeShape.uniform` (analytic).
    t:
        The pruning bound the algorithm converges to, in workspace
        units; defaults to :func:`estimate_closest_pair_distance`.
        Pass ``E[d_1] * sqrt(k)`` to approximate a K-CPQ (the scaling
        the service planner uses).

    Returns
    -------
    float
        Expected node fetches (the paper's disk-access unit, i.e.
        buffer misses with a cold buffer).  Each qualifying node pair
        costs two accesses (one per side); the two roots are always
        read.  Compare against measurements with
        ``benchmarks/test_cost_model.py``.
    """
    if t is None:
        t = estimate_closest_pair_distance(shape_p, shape_q)
    wp = shape_p.workspace
    wq = shape_q.workspace
    total = 2.0  # the roots
    # Pair levels from the leaves upwards, excluding each root (which
    # is read once, not once per pair).
    depth = min(shape_p.height, shape_q.height)
    for j in range(depth):
        lp = shape_p.levels[j]
        lq = shape_q.levels[j]
        if lp.node_count <= 1 and lq.node_count <= 1:
            continue  # root-vs-root is covered by the constant term
        px = interval_proximity_probability(
            _center_range(wp.xmin, wp.xmax, lp.avg_width),
            lp.avg_width,
            _center_range(wq.xmin, wq.xmax, lq.avg_width),
            lq.avg_width,
            t,
        )
        py = interval_proximity_probability(
            _center_range(wp.ymin, wp.ymax, lp.avg_height),
            lp.avg_height,
            _center_range(wq.ymin, wq.ymax, lq.avg_height),
            lq.avg_height,
            t,
        )
        total += 2.0 * lp.node_count * lq.node_count * px * py
    return total


def estimate_range_selectivity(shape: TreeShape, range_spec) -> float:
    """Fraction of a tree's workspace a query window covers.

    Under the model's uniformity assumption this is also the fraction
    of the tree's points that satisfy the window -- the *selectivity*
    of a range-constrained CPQ on that side.  The window is clipped to
    the workspace first (the part outside holds no points), so the
    result is always in ``[0, 1]``.

    Parameters
    ----------
    shape:
        The tree's cost-model shape; only its workspace is used.
    range_spec:
        A :class:`repro.core.constraints.RangeSpec` (or anything with
        2-d ``lo`` / ``hi`` corner tuples).

    Returns
    -------
    float
        Covered workspace fraction; the service planner routes low
        values to the RCP candidate structure and the rest to the
        CLIPPED traversal.
    """
    ws = shape.workspace
    lo, hi = range_spec.lo, range_spec.hi
    if len(lo) != 2:
        return 1.0  # the cost model is 2-d; do not pretend otherwise
    ox = min(ws.xmax, hi[0]) - max(ws.xmin, lo[0])
    oy = min(ws.ymax, hi[1]) - max(ws.ymin, lo[1])
    if ox <= 0.0 or oy <= 0.0 or ws.area <= 0.0:
        return 0.0
    return min(1.0, (ox * oy) / ws.area)


def estimate_parallel_speedup(
    accesses: float,
    workers: int,
    partition_accesses: float = 8.0,
) -> float:
    """Amdahl-style speedup estimate for the partitioned executor.

    The parallel executor (:mod:`repro.core.parallel`) expands both
    roots serially to build its task list -- roughly
    ``partition_accesses`` node reads that no worker count can hide --
    and splits the remaining traversal across ``workers``.  The model
    ignores bound-sharing losses (workers start from the partitioning
    bound, so duplicated work is limited to the refresh interval) and
    buffer-lock contention; treat the result as an upper bound used for
    go/no-go decisions, not a latency prediction.

    Parameters
    ----------
    accesses:
        Predicted total disk accesses of the serial execution
        (:func:`estimate_cpq_accesses`).
    workers:
        Worker count being considered (>= 1).
    partition_accesses:
        Serial node reads spent building the task list (the 1-2 level
        frontier expansion of both roots).

    Returns
    -------
    float
        Estimated wall-clock speedup factor (>= 1.0 when the serial
        fraction dominates nothing; == 1.0 for one worker).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or accesses <= 0:
        return 1.0
    serial = min(partition_accesses, accesses)
    parallel = max(accesses - serial, 0.0)
    return accesses / (serial + parallel / workers)


# ---------------------------------------------------------------------------
# Index-kind recommendation (the catalog's planner dimension)
# ---------------------------------------------------------------------------

#: Index kinds the catalog can build and the planner chooses between.
#: ``str`` = Sort-Tile-Recursive packed (repro.rtree.bulk), ``grid`` =
#: uniform-grid packed (repro.rtree.grid), ``dynamic`` = one-at-a-time
#: R* insertion (updatable in place).
INDEX_KINDS = ("str", "grid", "dynamic")

#: Coefficient of variation of grid-cell occupancy above which data
#: counts as skewed: uniform points at ~one leaf per cell sit well
#: below (Poisson counts give CV ~ 1/sqrt(occupancy)), clustered real
#: data (SEQUOIA-like) sits well above.
DEFAULT_GRID_SKEW_THRESHOLD = 0.75


@dataclass(frozen=True)
class IndexKindDecision:
    """One index-kind verdict, with the evidence it was based on."""

    kind: str
    reason: str
    #: Occupancy CV of the probe grid (NaN when not computed).
    skew: float
    #: Point count the decision describes.
    n: int
    #: Query-window selectivity the decision accounted for (None for
    #: unconstrained workloads).
    selectivity: Optional[float] = None

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "reason": self.reason,
            "skew": round(self.skew, 4) if self.skew == self.skew
            else None,
            "n": self.n,
        }
        if self.selectivity is not None:
            out["selectivity"] = round(self.selectivity, 4)
        return out


def grid_occupancy_cv(
    points, cells_per_axis: Optional[int] = None, dimension: int = 2
) -> float:
    """Skew statistic: coefficient of variation of grid occupancy.

    Overlays a ``cells_per_axis``-per-axis uniform grid on the points'
    bounding box and returns ``std / mean`` of the per-cell counts
    over **all** cells of the box (empty ones included -- emptiness is
    exactly what clustering produces).  Uniform data at a few points
    per cell scores well under 1; clustered data scores above, growing
    with the clustering.  The default resolution targets ~8 expected
    points per cell so the Poisson noise floor (``1/sqrt(8)`` ~ 0.35)
    stays clearly below :data:`DEFAULT_GRID_SKEW_THRESHOLD`.
    """
    n = len(points)
    if n == 0:
        return float("nan")
    if cells_per_axis is None:
        cells_per_axis = max(
            2, int(round((n / 8.0) ** (1.0 / dimension)))
        )
    from repro.rtree.grid import grid_occupancy

    counts = grid_occupancy(points, cells_per_axis, dimension=dimension)
    total_cells = cells_per_axis ** dimension
    mean = n / total_cells
    if mean <= 0:
        return float("nan")
    sum_sq = sum(c * c for c in counts.values())
    variance = sum_sq / total_cells - mean * mean
    if variance < 0.0:
        variance = 0.0
    return math.sqrt(variance) / mean


def recommend_index_kind(
    n: int,
    skew: float,
    mutable: bool = False,
    selectivity: Optional[float] = None,
    skew_threshold: float = DEFAULT_GRID_SKEW_THRESHOLD,
    selectivity_threshold: float = 0.05,
) -> IndexKindDecision:
    """Pick an index kind for a dataset's shape and workload.

    The policy mirrors what ``benchmarks/bench_catalog.py`` measures:

    * a **mutable** dataset needs ``dynamic`` -- packed indexes are
      read-optimised snapshots that would need a rebuild per batch;
    * **low skew** (uniform-ish data) -> ``grid``: one arithmetic pass
      builds leaves as tight as STR's;
    * **skewed** data -> ``str``: sort-tile recursion adapts tile
      boundaries to the data, where a uniform grid leaves elongated,
      overlapping leaves;
    * a tight expected query window (``selectivity`` at most
      ``selectivity_threshold``) also prefers ``str`` -- clipped
      traversals prune best against data-partitioned MBRs.
    """
    if mutable:
        return IndexKindDecision(
            kind="dynamic",
            reason="dataset takes live mutation; packed indexes are "
                   "read-only snapshots needing a rebuild per batch",
            skew=skew, n=n, selectivity=selectivity,
        )
    if selectivity is not None and selectivity <= selectivity_threshold:
        return IndexKindDecision(
            kind="str",
            reason=f"expected query windows cover ~{selectivity:.1%} "
                   f"of the workspace (<= {selectivity_threshold:.0%}); "
                   f"data-partitioned STR leaves prune tight windows "
                   f"best",
            skew=skew, n=n, selectivity=selectivity,
        )
    if skew == skew and skew <= skew_threshold:  # NaN-safe
        return IndexKindDecision(
            kind="grid",
            reason=f"grid-occupancy CV {skew:.2f} <= "
                   f"{skew_threshold:g}: near-uniform data packs into "
                   f"tight grid leaves in one arithmetic pass",
            skew=skew, n=n, selectivity=selectivity,
        )
    return IndexKindDecision(
        kind="str",
        reason=(
            f"grid-occupancy CV {skew:.2f} > {skew_threshold:g}: "
            f"skewed data needs sort-tile leaf boundaries"
            if skew == skew else
            "no skew statistic available; STR is the safe default"
        ),
        skew=skew, n=n, selectivity=selectivity,
    )
