"""Analytical study of CPQ cost (paper Section 6, future work (b)).

"The analytical study of CPQs, extending related work in spatial
joins [Theodoridis, Stefanakis & Sellis] and nearest-neighbor queries
[Papadopoulos & Manolopoulos]."

:mod:`~repro.analysis.cost_model` predicts the disk accesses of a
closest pair query from the *shapes* of the two R-trees (node counts
and average directory-rectangle extents per level) and the workspace
geometry, without executing the query.  A validation benchmark
(``benchmarks/test_cost_model.py``) compares predictions with
measurements across the overlap sweep.
"""

from repro.analysis.cost_model import (
    TreeShape,
    estimate_closest_pair_distance,
    estimate_cpq_accesses,
    interval_proximity_probability,
)

__all__ = [
    "TreeShape",
    "estimate_cpq_accesses",
    "estimate_closest_pair_distance",
    "interval_proximity_probability",
]
