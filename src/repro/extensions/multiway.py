"""Multi-way closest tuples (paper Section 6, future work (a)).

"The study of multi-way CPQs where tuples of objects are expected to
be the answers, extending related work in multi-way spatial joins."

Given m >= 2 point sets, each in its own R-tree, find the K tuples
``(p_1, ..., p_m)`` minimising an aggregate distance over a query
graph, in the style of Mamoulis & Papadias / Papadias, Mamoulis &
Theodoridis (multi-way spatial joins):

* ``"chain"`` -- sum of distances over consecutive pairs
  ``d(p_1,p_2) + d(p_2,p_3) + ...`` (e.g. site -> resort -> airport);
* ``"clique"`` -- sum over all pairs (a compactness objective).

The algorithm is a best-first search over *tuples of nodes* in the
spirit of the paper's HEAP algorithm: a global min-heap keyed by a
lower bound (the edge-wise sum of MINMINDIST values, which lower
bounds the aggregate of every point tuple in the sub-cube), a K-heap
of the best tuples found, and simultaneous expansion of all non-leaf
members of a popped tuple.  Bounds for all child combinations are
computed as one broadcast NumPy tensor.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.geometry.vectorized import (
    pairwise_mindist,
    pairwise_point_distances,
)
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats

GRAPHS = ("chain", "clique")


@dataclass(frozen=True, order=True)
class ClosestTuple:
    """One result tuple with its aggregate distance."""

    distance: float
    points: Tuple[Tuple[float, ...], ...]
    oids: Tuple[int, ...] = ()


@dataclass
class MultiwayResult:
    """Outcome of a multi-way closest-tuples query."""

    tuples: List[ClosestTuple] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    graph: str = "chain"
    k: int = 1

    def distances(self) -> List[float]:
        return [t.distance for t in self.tuples]


def _edges(m: int, graph: str) -> List[Tuple[int, int]]:
    if graph == "chain":
        return [(i, i + 1) for i in range(m - 1)]
    return [(i, j) for i in range(m) for j in range(i + 1, m)]


def _expansion_side(node: Node):
    """Candidate rectangles and target pages for one tuple member.

    Internal nodes expand into their children; a leaf member of a
    mixed-level tuple stays fixed as a single pseudo-candidate (its
    own MBR and page), the fix-at-leaves treatment generalised to
    tuples.
    """
    if node.is_leaf:
        mbr = node.mbr()
        lo = np.array([mbr.lo], dtype=float)
        hi = np.array([mbr.hi], dtype=float)
        return lo, hi, [node.page_id]
    return (
        node.lo_array(),
        node.hi_array(),
        [entry.child_id for entry in node.entries],
    )


def _bound_tensor(sides, edges, metric) -> np.ndarray:
    """Lower-bound aggregate for every candidate combination.

    ``sides`` holds per-member ``(lo, hi, pages)`` triples from
    :func:`_expansion_side`.  Entry ``[i_1, ..., i_m]`` of the result
    is the sum over graph edges of MINMINDIST between the chosen
    rectangles -- a lower bound on the aggregate distance of any point
    tuple drawn from them.
    """
    m = len(sides)
    sizes = tuple(len(side[2]) for side in sides)
    total = np.zeros(sizes)
    for a, b in edges:
        matrix = pairwise_mindist(
            sides[a][0], sides[a][1], sides[b][0], sides[b][1], metric
        )
        shape = [1] * m
        shape[a] = sizes[a]
        shape[b] = sizes[b]
        total = total + matrix.reshape(shape)
    return total


def _distance_tensor(leaves: Sequence[Node], edges, metric) -> np.ndarray:
    """Exact aggregate distance for every point combination."""
    m = len(leaves)
    sizes = tuple(len(n.entries) for n in leaves)
    total = np.zeros(sizes)
    for a, b in edges:
        matrix = pairwise_point_distances(
            leaves[a].points_array(), leaves[b].points_array(), metric
        )
        shape = [1] * m
        shape[a] = sizes[a]
        shape[b] = sizes[b]
        total = total + matrix.reshape(shape)
    return total


def multiway_closest_tuples(
    trees: Sequence[RTree],
    k: int = 1,
    graph: str = "chain",
    metric: MinkowskiMetric = EUCLIDEAN,
    *,
    reset_stats: bool = True,
) -> MultiwayResult:
    """Find the K tuples with the smallest aggregate distance.

    Parameters
    ----------
    trees:
        One R-tree per data set (at least two, same dimension).
    k:
        Number of result tuples.
    graph:
        ``"chain"`` or ``"clique"`` aggregation (see module docs).
    """
    if len(trees) < 2:
        raise ValueError("multi-way CPQ needs at least two trees")
    if graph not in GRAPHS:
        raise ValueError(f"unknown graph {graph!r}; expected one of {GRAPHS}")
    if k < 1:
        raise ValueError("k must be >= 1")
    dimension = trees[0].dimension
    for tree in trees[1:]:
        if tree.dimension != dimension:
            raise ValueError("all trees must index the same dimension")
    if reset_stats:
        for tree in trees:
            tree.file.reset_for_query()

    stats = QueryStats()
    result = MultiwayResult(stats=stats, graph=graph, k=k)
    if any(tree.root_id is None for tree in trees):
        return result

    m = len(trees)
    edges = _edges(m, graph)

    # K-heap of best tuples: max-heap via negated distances.
    best: List[Tuple[float, int, ClosestTuple]] = []
    seq_best = 0

    def threshold() -> float:
        if len(best) < k:
            return math.inf
        return -best[0][0]

    def offer(candidate: ClosestTuple) -> None:
        nonlocal seq_best
        seq_best += 1
        item = (-candidate.distance, seq_best, candidate)
        if len(best) < k:
            heapq.heappush(best, item)
        elif candidate.distance < threshold():
            heapq.heapreplace(best, item)

    # Global heap over node tuples keyed by the aggregate lower bound.
    heap: List[Tuple[float, int, Tuple[int, ...]]] = []
    seq = 0

    def push(bound: float, pages: Tuple[int, ...]) -> None:
        nonlocal seq
        if bound > threshold():
            return
        seq += 1
        heapq.heappush(heap, (bound, seq, pages))
        stats.queue_inserts += 1
        if len(heap) > stats.max_queue_size:
            stats.max_queue_size = len(heap)

    def process(nodes: Sequence[Node]) -> None:
        stats.node_pairs_visited += 1
        if all(node.is_leaf for node in nodes):
            tensor = _distance_tensor(nodes, edges, metric)
            stats.distance_computations += tensor.size
            limit = threshold()
            flat = tensor.ravel()
            candidates = np.nonzero(flat <= limit)[0]
            if candidates.size == 0:
                return
            values = flat[candidates]
            for r in np.argsort(values, kind="stable"):
                value = float(values[r])
                if value > threshold():
                    break
                index = np.unravel_index(candidates[r], tensor.shape)
                entries = [
                    node.entries[i] for node, i in zip(nodes, index)
                ]
                offer(
                    ClosestTuple(
                        value,
                        tuple(e.point for e in entries),
                        tuple(e.oid for e in entries),
                    )
                )
            return
        # Expand every non-leaf member simultaneously; leaf members of
        # a mixed-level tuple stay fixed (single pseudo-candidate).
        sides = [_expansion_side(node) for node in nodes]
        tensor = _bound_tensor(sides, edges, metric)
        limit = threshold()
        flat = tensor.ravel()
        survivors = np.nonzero(flat <= limit)[0]
        for position in survivors:
            index = np.unravel_index(int(position), tensor.shape)
            pages = tuple(
                side[2][i] for side, i in zip(sides, index)
            )
            push(float(flat[position]), pages)

    roots = [tree.read_node(tree.root_id) for tree in trees]
    process(roots)
    while heap:
        bound, __, pages = heapq.heappop(heap)
        if bound > threshold():
            break
        nodes = [
            tree.read_node(page) for tree, page in zip(trees, pages)
        ]
        process(nodes)

    result.tuples = sorted(t for __, __, t in best)
    stats.merge_io(*(tree.stats for tree in trees))
    return result


def brute_force_tuples(
    point_sets: Sequence[Sequence[Tuple[float, ...]]],
    k: int,
    graph: str = "chain",
    metric: MinkowskiMetric = EUCLIDEAN,
) -> List[float]:
    """Reference implementation (tests/benchmarks only): the K smallest
    aggregate distances by exhaustive enumeration."""
    edges = _edges(len(point_sets), graph)
    distances = []
    for combo in itertools.product(*point_sets):
        total = sum(
            metric.distance(combo[a], combo[b]) for a, b in edges
        )
        distances.append(total)
    distances.sort()
    return distances[:k]
