"""Semi-CPQ: the all-nearest-neighbour join (Section 6).

"A set of point pairs is produced, where the first point of each pair
appears only once in the result (i.e. for each point in P, the nearest
point in Q is discovered)."

The implementation batches by *leaf* of P: one best-first traversal of
Q serves all the points of a P leaf at once.  Node pairs are pruned
with MINMINDIST(leaf MBR, Q node MBR) against ``U``, the worst current
answer among the leaf's points -- a node farther than ``U`` from the
whole leaf cannot improve any of its points.  Since a leaf holds up to
M (= 21) co-located points, the Q traversal cost is amortised
several-fold compared with running an independent nearest-neighbour
query per point (measured in ``benchmarks/test_extensions_bench.py``).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.core.result import ClosestPair, CPQResult
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.geometry.vectorized import (
    pairwise_mindist,
    pairwise_point_distances,
)
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats

NAME = "SEMI"


def semi_closest_pairs(
    tree_p: RTree,
    tree_q: RTree,
    metric: MinkowskiMetric = EUCLIDEAN,
    *,
    sort_result: bool = True,
    reset_stats: bool = True,
) -> CPQResult:
    """For every point of P, its nearest point of Q.

    Returns one pair per P point, sorted by ascending distance when
    ``sort_result`` (the natural presentation for a Semi-CPQ report).
    """
    if reset_stats:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
    stats = QueryStats()
    result = CPQResult(stats=stats, algorithm=NAME, k=0)
    if tree_p.root_id is None or tree_q.root_id is None:
        return result

    pairs: List[ClosestPair] = []
    for leaf in _iter_leaves(tree_p):
        pairs.extend(_leaf_batch_nn(tree_q, leaf, metric, stats))

    result.k = len(pairs)
    if sort_result:
        pairs.sort()
    result.pairs = pairs
    stats.merge_io(tree_p.stats, tree_q.stats)
    return result


def _iter_leaves(tree: RTree):
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        if node.is_leaf:
            yield node
        else:
            stack.extend(e.child_id for e in node.entries)


def _leaf_batch_nn(
    tree_q: RTree,
    leaf: Node,
    metric: MinkowskiMetric,
    stats: QueryStats,
) -> List[ClosestPair]:
    """Nearest Q point for every point of one P leaf, in one traversal."""
    points = leaf.points_array()
    count = len(leaf.entries)
    best_distance = np.full(count, np.inf)
    best_entry: List[Optional[object]] = [None] * count
    leaf_mbr = leaf.mbr()
    leaf_lo = np.array([leaf_mbr.lo], dtype=float)
    leaf_hi = np.array([leaf_mbr.hi], dtype=float)

    # Best-first over Q keyed by MINMINDIST(leaf MBR, node MBR).
    heap: List[Tuple[float, int, int]] = [(0.0, 0, tree_q.root_id)]
    seq = 0
    while heap:
        bound, __, page_id = heapq.heappop(heap)
        worst = float(best_distance.max())
        if bound > worst:
            break  # no remaining node can improve any leaf point
        node = tree_q.read_node(page_id)
        if node.is_leaf:
            distances = pairwise_point_distances(
                points, node.points_array(), metric
            )
            stats.distance_computations += distances.size
            col = np.argmin(distances, axis=1)
            row_best = distances[np.arange(count), col]
            improved = np.nonzero(row_best < best_distance)[0]
            for i in improved:
                best_distance[i] = row_best[i]
                best_entry[i] = node.entries[int(col[i])]
        else:
            bounds = pairwise_mindist(
                node.lo_array(), node.hi_array(), leaf_lo, leaf_hi,
                metric,
            )[:, 0]
            for i in np.nonzero(bounds <= worst)[0]:
                seq += 1
                heapq.heappush(
                    heap,
                    (float(bounds[i]), seq,
                     node.entries[int(i)].child_id),
                )
        if len(heap) > stats.max_queue_size:
            stats.max_queue_size = len(heap)

    pairs = []
    for i, entry in enumerate(leaf.entries):
        q_entry = best_entry[i]
        assert q_entry is not None  # tree_q is non-empty
        pairs.append(
            ClosestPair(
                float(best_distance[i]), entry.point, q_entry.point,
                entry.oid, q_entry.oid,
            )
        )
    return pairs
