"""Extensions from the paper's future-work section (Section 6).

* :mod:`~repro.extensions.self_cpq` -- Self-CPQ: both data sets are the
  same entity (P = Q); result pairs must consist of two distinct
  points.
* :mod:`~repro.extensions.semi_cpq` -- Semi-CPQ: for each point of P,
  its nearest point of Q (each P point appears exactly once).
* :mod:`~repro.extensions.multiway` -- multi-way CPQ: the K closest
  *tuples* across m data sets under a chain or clique aggregate.
"""

from repro.extensions.multiway import (
    ClosestTuple,
    MultiwayResult,
    multiway_closest_tuples,
)
from repro.extensions.self_cpq import self_k_closest_pairs
from repro.extensions.semi_cpq import semi_closest_pairs

__all__ = [
    "self_k_closest_pairs",
    "semi_closest_pairs",
    "multiway_closest_tuples",
    "ClosestTuple",
    "MultiwayResult",
]
