"""Self-CPQ: the K closest pairs *within* one data set (Section 6).

"In the first case, both data sets actually refer to the same entity
(P = Q)."  Joining a tree with itself needs three adjustments to the
standard machinery:

* a point must not pair with itself, and the symmetric pair (q, p)
  duplicates (p, q) -- results are canonicalised to ``p_oid < q_oid``;
* MINMAXDIST-based tightening of T is only sound for *distinct* nodes
  (for a node paired with itself, the "guaranteed pair" of Inequality 2
  may be a point with itself at distance 0);
* node pairs are canonicalised (page_p <= page_q) so each unordered
  pair of subtrees is examined once.

The implementation is a heap-based traversal in the style of the
paper's HEAP algorithm.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Tuple

import numpy as np

from repro.core.kheap import KHeap
from repro.core.result import ClosestPair, CPQResult
from repro.geometry.minkowski import EUCLIDEAN, MinkowskiMetric
from repro.geometry.vectorized import (
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
)
from repro.rtree.node import Node
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats

NAME = "SELF-HEAP"


def self_k_closest_pairs(
    tree: RTree,
    k: int = 1,
    metric: MinkowskiMetric = EUCLIDEAN,
    *,
    reset_stats: bool = True,
) -> CPQResult:
    """The K closest pairs of distinct points of one indexed set."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if reset_stats:
        tree.file.reset_for_query()
    stats = QueryStats()
    kheap = KHeap(k)
    result = CPQResult(stats=stats, algorithm=NAME, k=k)
    if tree.root_id is None or len(tree) < 2:
        stats.merge_io(tree.stats)
        return result

    bound = math.inf

    def t() -> float:
        return min(kheap.threshold, bound)

    def offer(entry_a, entry_b, distance: float) -> None:
        if entry_a.oid == entry_b.oid:
            return
        if entry_a.oid < entry_b.oid:
            first, second = entry_a, entry_b
        else:
            first, second = entry_b, entry_a
        kheap.offer(
            ClosestPair(
                float(distance), first.point, second.point,
                first.oid, second.oid,
            )
        )

    def scan(leaf_a: Node, leaf_b: Node) -> None:
        pts_a = leaf_a.points_array()
        pts_b = leaf_b.points_array()
        distances = pairwise_point_distances(pts_a, pts_b, metric)
        stats.distance_computations += distances.size
        if leaf_a.page_id == leaf_b.page_id:
            # Self pair of a leaf: only the strict upper triangle is a
            # distinct unordered pair.
            distances = np.where(
                np.triu(np.ones_like(distances, dtype=bool), 1),
                distances,
                np.inf,
            )
        keep = np.isfinite(distances) & (distances <= t())
        rows, cols = np.nonzero(keep)
        if rows.size == 0:
            return
        values = distances[rows, cols]
        for r in np.argsort(values, kind="stable"):
            d = float(values[r])
            if d > t():
                break
            offer(leaf_a.entries[rows[r]], leaf_b.entries[cols[r]], d)

    # Heap items: (MINMINDIST, sequence, page_a, page_b), page_a <= page_b.
    heap: List[Tuple[float, int, int, int]] = []
    seq = 0

    def process(node_a: Node, node_b: Node) -> None:
        nonlocal seq, bound
        stats.node_pairs_visited += 1
        if node_a.is_leaf and node_b.is_leaf:
            scan(node_a, node_b)
            return
        # Same-height self join: both sides are internal together.
        lo_a, hi_a = node_a.lo_array(), node_a.hi_array()
        lo_b, hi_b = node_b.lo_array(), node_b.hi_array()
        minmin = pairwise_mindist(lo_a, hi_a, lo_b, hi_b, metric)
        same_node = node_a.page_id == node_b.page_id
        if k == 1:
            minmax = pairwise_minmaxdist(lo_a, hi_a, lo_b, hi_b, metric)
            if same_node:
                # Only distinct children give a sound Inequality-2 bound.
                np.fill_diagonal(minmax, np.inf)
            candidate = float(minmax.min())
            if candidate < bound:
                bound = candidate
        for i in range(minmin.shape[0]):
            start = i if same_node else 0
            for j in range(start, minmin.shape[1]):
                d = float(minmin[i, j])
                if d > t():
                    continue
                page_a = node_a.entries[i].child_id
                page_b = node_b.entries[j].child_id
                if page_a > page_b:
                    page_a, page_b = page_b, page_a
                seq += 1
                heapq.heappush(heap, (d, seq, page_a, page_b))
                stats.queue_inserts += 1
        if len(heap) > stats.max_queue_size:
            stats.max_queue_size = len(heap)

    root = tree.read_node(tree.root_id)
    process(root, root)
    while heap:
        minmin, __, page_a, page_b = heapq.heappop(heap)
        if minmin > t():
            break
        process(tree.read_node(page_a), tree.read_node(page_b))

    stats.merge_io(tree.stats)
    result.pairs = kheap.sorted_pairs()
    return result
