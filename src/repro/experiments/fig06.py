"""Figure 6: the four 1-CP algorithms under a varying LRU buffer.

Paper setup: real vs uniform 40K and 80K, B = 0..256 pages (B/2 per
tree), overlap 0 % (6a) and 100 % (6b).

Expected shape: EXH and SIM improve by up to 2-3x as the buffer grows
but never catch STD/HEAP at 0 % overlap, where the latter two are
insensitive to buffer size.  At 100 % overlap STD also gains from the
buffer while HEAP stays flat (~10 % improvement only), so HEAP loses
its lead beyond about B = 4 pages.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import PAPER_ALGORITHMS, run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

CARDINALITIES = (40_000, 80_000)
OVERLAPS = (0.0, 1.0)


def run(quick: bool = False) -> Table:
    n_real = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 6: LRU buffer sweep, real({n_real}) vs uniform, 1-CPQ"
        ),
        columns=(
            "combo", "overlap_pct", "buffer_pages", "algorithm",
            "disk_accesses",
        ),
        notes=(
            "Paper shape: EXH/SIM improve up to 2-3x with buffer; HEAP is "
            "buffer-insensitive and loses its lead past B=4 at overlap."
        ),
    )
    tree_p = get_tree(real_spec(n_real))
    for cardinality in CARDINALITIES:
        n = config.scaled(cardinality, quick)
        combo = f"R/{n}"
        for overlap in OVERLAPS:
            tree_q = get_tree(uniform_spec(n, overlap))
            for buffer_pages in config.BUFFER_SIZES:
                for algorithm in PAPER_ALGORITHMS:
                    result = run_cpq(
                        tree_p, tree_q, algorithm, k=1,
                        buffer_pages=buffer_pages,
                    )
                    table.add(
                        combo,
                        round(overlap * 100),
                        buffer_pages,
                        algorithm.upper(),
                        result.stats.disk_accesses,
                    )
    return table
