"""The experiment harness: one runner per paper figure.

Every figure of the paper's evaluation (Figures 2-10) has a module
``figNN`` exposing ``run(quick=False) -> Table``.  ``quick=True``
shrinks cardinalities so the full pipeline executes in seconds (used by
the integration tests); the regular mode is controlled by two
environment variables (see :mod:`~repro.experiments.config`):

* ``REPRO_SCALE`` -- fraction of the paper's cardinalities (default
  0.25; set 1 for full paper-size runs).
* ``REPRO_BUILD`` -- ``str`` (default, fast bulk loading) or
  ``dynamic`` (one-at-a-time R* insertion, maximum fidelity).

The ``benchmarks/`` tree wires each figure into pytest-benchmark and
prints the regenerated table next to the paper's expected shape.
"""

from repro.experiments.chart import series_chart
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.report import Table

__all__ = ["FIGURES", "run_figure", "Table", "series_chart"]
