"""Figure 10: non-incremental (STD, HEAP) vs incremental (EVN, SML).

Paper setup: all four combinations of buffer size {0, 128 pages} and
overlap {0 %, 100 %}, K from 1 to 100,000, real vs uniform data; the
BAS policy is omitted from the chart ("turned out to be inefficient
for most settings") but can be added via ``include_bas``.

Expected shape: EVN competitive for small K, inefficient for
K >= 10,000; with zero buffer HEAP and SML lead (nearly identical for
disjoint workspaces); with a large buffer STD is the most efficient,
beating SML by up to ~50 %.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq, run_incremental
from repro.experiments.trees import get_tree, real_spec, uniform_spec

NON_INCREMENTAL = ("std", "heap")
INCREMENTAL = ("evn", "sml")
BUFFERS = (0, 128)
OVERLAPS = (0.0, 1.0)


def run(quick: bool = False, include_bas: bool = False) -> Table:
    n = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 10: STD/HEAP vs incremental EVN/SML, real({n}) vs "
            f"uniform({n})"
        ),
        columns=(
            "buffer_pages", "overlap_pct", "k", "algorithm",
            "disk_accesses", "max_queue",
        ),
        notes=(
            "Paper shape: EVN falls off for K>=10,000; zero buffer "
            "favours HEAP/SML (identical when disjoint); large buffer "
            "favours STD (up to ~50% over SML).  max_queue illustrates "
            "Section 3.9: the incremental queue dwarfs HEAP's."
        ),
    )
    incremental = INCREMENTAL + (("bas",) if include_bas else ())
    tree_p = get_tree(real_spec(n))
    for overlap in OVERLAPS:
        tree_q = get_tree(uniform_spec(n, overlap))
        for buffer_pages in BUFFERS:
            for k in config.k_sweep(quick):
                for algorithm in NON_INCREMENTAL:
                    result = run_cpq(
                        tree_p, tree_q, algorithm, k=k,
                        buffer_pages=buffer_pages,
                    )
                    table.add(
                        buffer_pages, round(overlap * 100), k,
                        algorithm.upper(),
                        result.stats.disk_accesses,
                        result.stats.max_queue_size,
                    )
                for policy in incremental:
                    result = run_incremental(
                        tree_p, tree_q, policy, k=k,
                        buffer_pages=buffer_pages,
                    )
                    table.add(
                        buffer_pages, round(overlap * 100), k,
                        policy.upper(),
                        result.stats.disk_accesses,
                        result.stats.max_queue_size,
                    )
    return table
