"""Dataset/tree construction with caching.

Building a scaled tree takes seconds; every figure reuses trees for
identical specifications, so a process-wide cache keyed by the full
dataset specification avoids rebuilding across figures and benchmark
rounds.  Buffer contents and I/O counters are per-query state and are
reset by the query entry points, so sharing trees is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.datasets.sequoia import sequoia_like
from repro.datasets.uniform import uniform_points
from repro.datasets.workspace import (
    UNIT_WORKSPACE,
    Workspace,
    overlapping_workspace,
)
from repro.experiments import config
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout

#: Seeds: P-side and Q-side sets must be independent samples.
SEED_P = 101
SEED_Q = 202
SEED_REAL = 2000


@dataclass(frozen=True)
class DatasetSpec:
    """Deterministic description of one indexed data set."""

    kind: str  # "uniform" | "sequoia"
    n: int
    seed: int
    workspace: Workspace = UNIT_WORKSPACE
    build: str = ""  # "" = config.BUILD
    #: Snap coordinates to a grid x grid lattice (uniform sets only);
    #: quantised coordinates make exact distance ties possible, which
    #: the Figure 2 tie-treatment experiment needs.
    grid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "sequoia"):
            raise ValueError(f"unknown dataset kind {self.kind!r}")


def make_points(spec: DatasetSpec) -> np.ndarray:
    if spec.kind == "uniform":
        return uniform_points(
            spec.n, spec.workspace, spec.seed, grid=spec.grid
        )
    return sequoia_like(spec.n, spec.workspace, spec.seed)


_TREES: Dict[DatasetSpec, RTree] = {}


def get_tree(spec: DatasetSpec) -> RTree:
    """Return (building and caching if needed) the tree for a spec."""
    tree = _TREES.get(spec)
    if tree is not None:
        return tree
    points = make_points(spec)
    build = spec.build or config.BUILD
    tree_config = RTreeConfig(layout=PageLayout(page_size=config.PAGE_SIZE))
    if build == "str":
        tree = bulk_load(points, config=tree_config)
    else:
        tree = RTree(tree_config)
        for oid, point in enumerate(points):
            tree.insert(tuple(point), oid)
    _TREES[spec] = tree
    return tree


def clear_cache() -> None:
    _TREES.clear()


def uniform_spec(
    n: int,
    overlap: Optional[float] = None,
    seed: int = SEED_Q,
    grid: Optional[int] = None,
) -> DatasetSpec:
    """A uniform set; placed in a workspace overlapping the unit one by
    ``overlap`` when given (None = the unit workspace itself)."""
    workspace = (
        UNIT_WORKSPACE
        if overlap is None
        else overlapping_workspace(UNIT_WORKSPACE, overlap)
    )
    return DatasetSpec("uniform", n, seed, workspace, grid=grid)


def real_spec(n: int) -> DatasetSpec:
    """The sequoia-like 'real' set in the unit workspace (P side)."""
    return DatasetSpec("sequoia", n, SEED_REAL)
