"""Figure 7: the four K-CP algorithms for varying K, zero buffer.

Paper setup: the real set vs an equal-cardinality uniform set
(62,536 points each), K from 1 to 100,000, B = 0, overlap 0 % (7a)
and 100 % (7b).

Expected shape: cost grows with K, sharply (near-exponentially) past a
threshold around K = 100-1,000.  At 0 % overlap STD and HEAP are
10-50x faster than EXH while SIM gains little; at 100 % overlap only
HEAP clearly improves on EXH (by roughly 10-30 %).
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import PAPER_ALGORITHMS, run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

OVERLAPS = (0.0, 1.0)


def run(quick: bool = False) -> Table:
    n = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 7: K-CP algorithms for varying K, real({n}) vs "
            f"uniform({n}), B=0"
        ),
        columns=(
            "overlap_pct", "k", "algorithm", "disk_accesses",
        ),
        notes=(
            "Paper shape: cost rises sharply past K~100-1000; STD/HEAP "
            "10-50x better at 0% overlap, HEAP 10-30% better at 100%."
        ),
    )
    tree_p = get_tree(real_spec(n))
    for overlap in OVERLAPS:
        tree_q = get_tree(uniform_spec(n, overlap))
        for k in config.k_sweep(quick):
            for algorithm in PAPER_ALGORITHMS:
                result = run_cpq(tree_p, tree_q, algorithm, k=k)
                table.add(
                    round(overlap * 100),
                    k,
                    algorithm.upper(),
                    result.stats.disk_accesses,
                )
    return table
