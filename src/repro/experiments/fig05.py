"""Figure 5: finding a threshold on the overlap factor (1-CPQ).

Paper setup: relative cost of SIM, STD and HEAP with respect to EXH,
real vs uniform 40K and 80K, overlap portion swept from 0 % to 100 %,
zero buffer.

Expected shape: for small overlap (up to ~5 %) the three pruning
algorithms are 2-20x faster than EXH (relative cost far below 100 %);
as overlap grows the advantage shrinks; full overlap is orders of
magnitude costlier than disjoint for every algorithm.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

ALGORITHMS = ("exh", "sim", "std", "heap")
CARDINALITIES = (40_000, 80_000)


def run(quick: bool = False) -> Table:
    n_real = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 5: overlap threshold, real({n_real}) vs uniform, "
            "B=0, 1-CPQ (cost relative to EXH)"
        ),
        columns=(
            "combo", "overlap_pct", "algorithm",
            "disk_accesses", "relative_to_exh_pct",
        ),
        notes=(
            "Paper shape: <=5% overlap makes SIM/STD/HEAP 2-20x faster "
            "than EXH; full overlap costs orders of magnitude more than "
            "disjoint."
        ),
    )
    tree_p = get_tree(real_spec(n_real))
    for cardinality in CARDINALITIES:
        n = config.scaled(cardinality, quick)
        combo = f"R/{n}"
        for overlap in config.overlap_sweep():
            tree_q = get_tree(uniform_spec(n, overlap))
            exh_cost = None
            for algorithm in ALGORITHMS:
                result = run_cpq(tree_p, tree_q, algorithm, k=1)
                cost = result.stats.disk_accesses
                if algorithm == "exh":
                    exh_cost = cost
                relative = 100.0 * cost / exh_cost if exh_cost else 100.0
                table.add(
                    combo,
                    round(overlap * 100),
                    algorithm.upper(),
                    cost,
                    round(relative, 1),
                )
    return table
