"""Experiment-wide configuration.

The paper's setup (Section 4): 1 KiB pages (R*-tree capacity M = 21,
m = 7), uniform sets of 20K-80K points, the 62,536-point Sequoia set
and its uniform twin, LRU buffers of 0-256 pages split evenly between
the trees.

Because a pure-Python run of every figure at full size takes hours,
cardinalities are multiplied by ``REPRO_SCALE`` (default 0.25) and the
K sweep is truncated proportionally.  All comparisons in the paper are
*relative* (algorithm vs algorithm at equal configuration), so scaling
preserves every qualitative conclusion; set ``REPRO_SCALE=1`` to
reproduce the original sizes.
"""

from __future__ import annotations

import os


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {value!r}") from None


#: Fraction of the paper's cardinalities to use.
SCALE = _env_float("REPRO_SCALE", 0.25)
if not 0.0 < SCALE <= 1.0:
    raise ValueError("REPRO_SCALE must be in (0, 1]")

#: Tree construction: "str" (bulk) or "dynamic" (R* insertion).
BUILD = os.environ.get("REPRO_BUILD", "str")
if BUILD not in ("str", "dynamic"):
    raise ValueError("REPRO_BUILD must be 'str' or 'dynamic'")

#: Page size used throughout (gives M = 21, m = 7).
PAGE_SIZE = 1024

#: LRU buffer sweep of Figures 6 and 9 (total pages B).
BUFFER_SIZES = (0, 4, 16, 64, 256)

#: Cardinality of the real data set (Sequoia California sites).
REAL_CARDINALITY = 62_536

#: The paper's uniform cardinalities.
UNIFORM_CARDINALITIES = (20_000, 40_000, 60_000, 80_000)

#: Quick-mode shrink factor relative to the paper sizes (used by the
#: integration tests: every figure must execute in seconds).
QUICK_SCALE = 0.02


def scaled(n: int, quick: bool = False) -> int:
    """A paper cardinality scaled to the configured run size."""
    factor = QUICK_SCALE if quick else SCALE
    return max(200, round(n * factor))


def k_sweep(quick: bool = False, full_max: int = 100_000) -> list:
    """The K values of Figures 7-10, truncated proportionally to scale.

    The paper sweeps K in decades up to 100,000 (about 1.6x the real
    cardinality); the truncation keeps the same K-to-cardinality ratio.
    """
    factor = QUICK_SCALE if quick else SCALE
    ceiling = max(10, round(full_max * factor))
    values = [k for k in (1, 10, 100, 1_000, 10_000, 100_000) if k <= ceiling]
    return values


def overlap_sweep() -> tuple:
    """The overlap portions of Figures 5 and 8."""
    return (0.0, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0)
