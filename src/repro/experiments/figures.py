"""Registry of figure runners."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
)
from repro.experiments.report import Table

#: Figure id -> runner.  Figure 1 is the metric illustration (covered
#: by the geometry tests and the quickstart example), so runners start
#: at Figure 2, the first experimental chart.
FIGURES: Dict[str, Callable[..., Table]] = {
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
}


def run_figure(figure_id: str, quick: bool = False) -> Table:
    """Run one figure's experiment by id (e.g. ``"fig04"``)."""
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; expected one of "
            f"{sorted(FIGURES)}"
        ) from None
    return runner(quick=quick)
