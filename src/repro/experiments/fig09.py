"""Figure 9: LRU buffer size x K for STD and HEAP.

Paper setup: disk accesses of STD (9a) and HEAP (9b) with the buffer
swept over B = 0..256 pages and K over 1..100,000; real vs uniform
data at 0 % overlap; log scale.  SIM is included as an extra series
because the paper's text notes it also gains strongly from the buffer.

Expected shape: SIM and STD improve by up to an order of magnitude as
the buffer grows (largest K benefits most); HEAP responds only for
large K (more than half its cost saved for K >= 10,000 and B > 16),
so STD overtakes HEAP past roughly B = 4 pages.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

ALGORITHMS = ("sim", "std", "heap")
OVERLAP = 0.0


def run(quick: bool = False) -> Table:
    n = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 9: buffer x K, real({n}) vs uniform({n}), "
            "overlap 0%"
        ),
        columns=(
            "buffer_pages", "k", "algorithm", "disk_accesses",
        ),
        notes=(
            "Paper shape: SIM/STD gain up to 10x from the buffer; HEAP "
            "only for large K; STD overtakes HEAP past B=4."
        ),
    )
    tree_p = get_tree(real_spec(n))
    tree_q = get_tree(uniform_spec(n, OVERLAP))
    for buffer_pages in config.BUFFER_SIZES:
        for k in config.k_sweep(quick):
            for algorithm in ALGORITHMS:
                result = run_cpq(
                    tree_p, tree_q, algorithm, k=k,
                    buffer_pages=buffer_pages,
                )
                table.add(
                    buffer_pages,
                    k,
                    algorithm.upper(),
                    result.stats.disk_accesses,
                )
    return table
