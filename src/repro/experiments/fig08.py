"""Figure 8: overlap factor x K surface for STD and HEAP.

Paper setup: cost of STD (8a) and HEAP (8b) relative to EXH, real vs
uniform data, K from 1 to 100,000 crossed with overlap portion 0-100 %,
zero buffer.

Expected shape: STD and HEAP nearly equivalent and 5-50x faster than
EXH below ~10 % overlap; above 50 % overlap HEAP saves 15 % (small K)
to 35 % (large K) while STD's advantage fades; SIM (not shown in the
paper's chart) never improves more than ~20 %.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

ALGORITHMS = ("exh", "std", "heap")


def run(quick: bool = False) -> Table:
    n = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 8: overlap x K, real({n}) vs uniform({n}), B=0 "
            "(cost relative to EXH)"
        ),
        columns=(
            "overlap_pct", "k", "algorithm",
            "disk_accesses", "relative_to_exh_pct",
        ),
        notes=(
            "Paper shape: STD~HEAP, 5-50x faster than EXH for overlap "
            "<10%; HEAP ahead of STD at overlap >50%, gap growing with K."
        ),
    )
    tree_p = get_tree(real_spec(n))
    for overlap in config.overlap_sweep():
        tree_q = get_tree(uniform_spec(n, overlap))
        for k in config.k_sweep(quick):
            exh_cost = None
            for algorithm in ALGORITHMS:
                result = run_cpq(tree_p, tree_q, algorithm, k=k)
                cost = result.stats.disk_accesses
                if algorithm == "exh":
                    exh_cost = cost
                relative = 100.0 * cost / exh_cost if exh_cost else 100.0
                table.add(
                    round(overlap * 100),
                    k,
                    algorithm.upper(),
                    cost,
                    round(relative, 1),
                )
    return table
