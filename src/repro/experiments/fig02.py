"""Figure 2: comparison of tie-treatment approaches T1-T5.

Paper setup: STD (2a) and HEAP (2b) on uniform 60K/60K data, overlap
portion 0-100 %, zero buffer, 1-CPQ.  Cost of each criterion is shown
relative to T1 (T1 = 100 %).

Expected shape: T1 always wins; alternatives deteriorate by up to 50 %
on overlapping data sets, while at 0 % overlap ties are rare and all
criteria are nearly equivalent.

Exact MINMINDIST ties (what the criteria arbitrate) require quantised
coordinates -- real-world data is quantised (metres, arc-seconds), but
continuous uniform samples almost never tie.  The experiment therefore
snaps the uniform sets to a lattice (``GRID``), matching the paper's
integer-coordinate data sets.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq
from repro.experiments.trees import SEED_P, SEED_Q, get_tree, uniform_spec

OVERLAPS = (0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0)
CRITERIA = ("T1", "T2", "T3", "T4", "T5")
ALGORITHMS = ("std", "heap")
#: Coordinate lattice resolution (see module docstring).
GRID = 1024


def run(quick: bool = False) -> Table:
    n = config.scaled(60_000, quick)
    table = Table(
        title=(
            f"Figure 2: tie treatments T1-T5, uniform {n}/{n} "
            f"(grid-quantised), B=0, 1-CPQ"
        ),
        columns=(
            "algorithm", "overlap_pct", "criterion",
            "disk_accesses", "relative_pct",
        ),
        notes="Paper shape: T1 wins; others up to +50% on overlapping sets.",
    )
    tree_p = get_tree(uniform_spec(n, None, SEED_P, grid=GRID))
    for overlap in OVERLAPS:
        tree_q = get_tree(uniform_spec(n, overlap, SEED_Q, grid=GRID))
        for algorithm in ALGORITHMS:
            baseline = None
            for criterion in CRITERIA:
                result = run_cpq(
                    tree_p, tree_q, algorithm, k=1, tie_break=criterion
                )
                cost = result.stats.disk_accesses
                if baseline is None:
                    baseline = cost
                relative = 100.0 * cost / baseline if baseline else 100.0
                table.add(
                    algorithm.upper(),
                    round(overlap * 100),
                    criterion,
                    cost,
                    round(relative, 1),
                )
    return table
