"""Text charts for experiment tables.

The paper presents its results as line charts (often log-scale); the
harness complements each regenerated table with a horizontal-bar text
chart so the *shape* -- who wins, by what factor, where the crossover
falls -- is visible directly in terminal output.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.experiments.report import Table, format_value

BAR_WIDTH = 40


def _bar(value: float, lo: float, hi: float, log: bool) -> str:
    if value <= 0:
        return ""
    if log:
        lo = max(lo, 1.0)
        if hi <= lo:
            return "#" * BAR_WIDTH
        fraction = (math.log10(max(value, lo)) - math.log10(lo)) / (
            math.log10(hi) - math.log10(lo)
        )
    else:
        fraction = value / hi if hi > 0 else 0.0
    return "#" * max(1, round(fraction * BAR_WIDTH))


def series_chart(
    table: Table,
    x: str,
    series: str,
    value: str,
    log: bool = True,
    title: Optional[str] = None,
    **filters,
) -> str:
    """Render one column as grouped horizontal bars.

    ``x`` picks the grouping column (e.g. ``"k"``), ``series`` the
    per-group lines (e.g. ``"algorithm"``), ``value`` the numeric
    column.  Extra keyword filters restrict rows first, mirroring
    :meth:`Table.select`.
    """
    rows = table.select(**filters) if filters else list(table.rows)
    if not rows:
        raise ValueError(f"no rows match {filters}")
    columns = list(table.columns)
    xi = columns.index(x)
    si = columns.index(series)
    vi = columns.index(value)

    values = [float(r[vi]) for r in rows if float(r[vi]) > 0]
    lo = min(values) if values else 1.0
    hi = max(values) if values else 1.0

    x_order: Sequence = list(dict.fromkeys(r[xi] for r in rows))
    s_order: Sequence = list(dict.fromkeys(r[si] for r in rows))
    label_width = max(len(str(s)) for s in s_order)

    lines = []
    heading = title or (
        f"{value} by {x} / {series}"
        + (f"  [{filters}]" if filters else "")
        + ("  (log scale)" if log else "")
    )
    lines.append(heading)
    lines.append("-" * len(heading))
    for x_value in x_order:
        lines.append(f"{x} = {format_value(x_value)}")
        for s_value in s_order:
            matching = [
                r for r in rows
                if r[xi] == x_value and r[si] == s_value
            ]
            if not matching:
                continue
            v = float(matching[0][vi])
            bar = _bar(v, lo, hi, log)
            lines.append(
                f"  {str(s_value):<{label_width}}  "
                f"{bar:<{BAR_WIDTH}} {format_value(matching[0][vi])}"
            )
    return "\n".join(lines)
