"""Figure 3: fix-at-leaves vs fix-at-root for trees of different heights.

Paper setup: the taller tree is fixed at 80K uniform points; the
shorter at 20K-60K; overlap 0/50/100 %; zero buffer; STD (3a) and
HEAP (3b); log-scale disk accesses.

Expected shape: fix-at-root performs better than fix-at-leaves for
HEAP (and SIM), typically by 10-40 %; for STD the two are roughly
equivalent except at 0 % overlap, where fix-at-leaves is clearly
better.
"""

from __future__ import annotations

from repro.core.height import FIX_AT_LEAVES, FIX_AT_ROOT
from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import run_cpq
from repro.experiments.trees import SEED_P, SEED_Q, get_tree, uniform_spec

SHORTER = (20_000, 40_000, 60_000)
TALLER = 80_000
OVERLAPS = (0.0, 0.5, 1.0)
ALGORITHMS = ("std", "heap", "sim")
STRATEGIES = (FIX_AT_LEAVES, FIX_AT_ROOT)


def _taller_cardinality(quick: bool, shorter_height: int) -> int:
    """Smallest scaled cardinality whose tree is strictly taller.

    Scaling can land the paper's 80K and the shorter sets on the same
    side of a tree-height boundary (heights only change at fanout
    powers); the figure is about *different* heights, so the taller
    side's cardinality is escalated until its tree outgrows the tallest
    shorter tree, mirroring the paper's 80K (h=5) vs 20-60K (h=4).
    """
    n = config.scaled(TALLER, quick)
    while True:
        tree = get_tree(uniform_spec(n, 0.0, SEED_Q))
        if tree.height > shorter_height:
            return n
        n = int(n * 1.5)


def run(quick: bool = False) -> Table:
    shorter_height = max(
        get_tree(uniform_spec(config.scaled(s, quick), None, SEED_P)).height
        for s in SHORTER
    )
    n_tall = _taller_cardinality(quick, shorter_height)
    table = Table(
        title=(
            "Figure 3: height treatment (fix-at-leaves vs fix-at-root), "
            f"uniform shorter/{n_tall}, B=0, 1-CPQ"
        ),
        columns=(
            "algorithm", "combo", "overlap_pct", "strategy",
            "disk_accesses",
        ),
        notes=(
            "Paper shape: fix-at-root wins for SIM/HEAP (10-40%); for STD "
            "the two are comparable except 0% overlap where fix-at-leaves "
            "wins."
        ),
    )
    for short in SHORTER:
        n_short = config.scaled(short, quick)
        combo = f"{n_short}/{n_tall}"
        tree_p = get_tree(uniform_spec(n_short, None, SEED_P))
        for overlap in OVERLAPS:
            tree_q = get_tree(uniform_spec(n_tall, overlap, SEED_Q))
            for algorithm in ALGORITHMS:
                for strategy in STRATEGIES:
                    result = run_cpq(
                        tree_p,
                        tree_q,
                        algorithm,
                        k=1,
                        height_strategy=strategy,
                    )
                    table.add(
                        algorithm.upper(),
                        combo,
                        round(overlap * 100),
                        strategy,
                        result.stats.disk_accesses,
                    )
    return table
