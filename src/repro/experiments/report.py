"""Plain-text experiment tables.

Each figure runner returns a :class:`Table`; benchmarks print it so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the paper's
numbers as readable rows, and EXPERIMENTS.md records them.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import List, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


@dataclass
class Table:
    """A titled grid of experiment results."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row of {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        """All values of one column, in row order."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def select(self, **filters) -> List[Sequence]:
        """Rows whose named columns equal the given values."""
        indices = {
            name: list(self.columns).index(name) for name in filters
        }
        return [
            row
            for row in self.rows
            if all(row[indices[n]] == v for n, v in filters.items())
        ]

    def value(self, column: str, **filters):
        """The single value of ``column`` in the unique row matching
        ``filters``."""
        rows = self.select(**filters)
        if len(rows) != 1:
            raise ValueError(
                f"expected exactly one row for {filters}, found {len(rows)}"
            )
        return rows[0][list(self.columns).index(column)]

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            str(c).ljust(w) for c, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(v.rjust(w) for v, w in zip(row, widths))
            )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def __str__(self) -> str:
        return self.render()
