"""Figure 4: the four 1-CP algorithms with zero buffer.

Paper setup: the real (Sequoia) set against uniform sets of 20K-80K,
workspaces 0 % (4a) and 100 % (4b) overlapping; B = 0.

Expected shape: at 0 % overlap STD and HEAP cost about an order of
magnitude less than SIM and EXH; at 100 % overlap STD and HEAP still
win with average gaps around 10-20 %.
"""

from __future__ import annotations

from repro.experiments import config
from repro.experiments.report import Table
from repro.experiments.runner import PAPER_ALGORITHMS, run_cpq
from repro.experiments.trees import get_tree, real_spec, uniform_spec

OVERLAPS = (0.0, 1.0)


def run(quick: bool = False) -> Table:
    n_real = config.scaled(config.REAL_CARDINALITY, quick)
    table = Table(
        title=(
            f"Figure 4: 1-CP algorithms, real({n_real}) vs uniform, B=0"
        ),
        columns=(
            "combo", "overlap_pct", "algorithm", "disk_accesses",
        ),
        notes=(
            "Paper shape: STD/HEAP about an order of magnitude below "
            "EXH/SIM at 0% overlap; 10-20% gaps at 100%."
        ),
    )
    tree_p = get_tree(real_spec(n_real))
    for cardinality in config.UNIFORM_CARDINALITIES:
        n = config.scaled(cardinality, quick)
        combo = f"R/{n}"
        for overlap in OVERLAPS:
            tree_q = get_tree(uniform_spec(n, overlap))
            for algorithm in PAPER_ALGORITHMS:
                result = run_cpq(tree_p, tree_q, algorithm, k=1)
                table.add(
                    combo,
                    round(overlap * 100),
                    algorithm.upper(),
                    result.stats.disk_accesses,
                )
    return table
