"""Query execution helpers shared by the figure runners."""

from __future__ import annotations

from typing import Optional

from repro.core.api import CPQRequest, k_closest_pairs
from repro.core.result import CPQResult
from repro.core.ties import TieBreak
from repro.incremental.distance_join import k_distance_join
from repro.rtree.tree import RTree

#: The non-incremental algorithms compared throughout Sections 4-5.
PAPER_ALGORITHMS = ("exh", "sim", "std", "heap")

#: The incremental policies of Section 5.2 (BAS is reported by the
#: paper as "inefficient for most settings" and excluded from Fig. 10).
INCREMENTAL_POLICIES = ("bas", "evn", "sml")


def run_cpq(
    tree_p: RTree,
    tree_q: RTree,
    algorithm: str,
    k: int = 1,
    buffer_pages: int = 0,
    height_strategy: str = "fix-at-root",
    tie_break: Optional[object] = None,
    workers: int = 1,
) -> CPQResult:
    """One cold-cache CPQ execution with a total LRU budget of
    ``buffer_pages`` (split B/2 per tree, as in Section 4.3.3)."""
    request = CPQRequest(
        k=k,
        algorithm=algorithm,
        height_strategy=height_strategy,
        tie_break=TieBreak.parse(tie_break) if tie_break is not None else None,
        buffer_pages=buffer_pages,
        reset_stats=True,
        workers=workers,
    )
    return k_closest_pairs(tree_p, tree_q, request=request)


def run_incremental(
    tree_p: RTree,
    tree_q: RTree,
    policy: str,
    k: int = 1,
    buffer_pages: int = 0,
) -> CPQResult:
    """One cold-cache incremental distance join bounded at K pairs."""
    return k_distance_join(
        tree_p,
        tree_q,
        k=k,
        policy=policy,
        buffer_pages=buffer_pages,
        reset_stats=True,
    )
