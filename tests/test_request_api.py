"""CPQRequest, the algorithm registry, and the tracer watch refcount.

These pin the unified query API: one frozen request object validated at
construction, a single registry every consumer derives algorithm
knowledge from, a cache key that captures result identity and nothing
else, and buffer observers that come off the trees when the traversal
that installed them finishes.
"""

import random

import pytest

from repro.analysis.cost_model import KERNEL_NS_PER_PAIR, estimate_cpu_ms
from repro.core import k_closest_pairs
from repro.core.api import (
    ALGORITHM_REGISTRY,
    ALGORITHMS,
    PLANNABLE_ALGORITHMS,
    CPQRequest,
    DeadlineExceeded,
)
from repro.core.height import FIX_AT_LEAVES
from repro.core.ties import TieBreak
from repro.geometry.minkowski import MANHATTAN
from repro.obs.trace import Tracer
from repro.rtree.bulk import bulk_load


@pytest.fixture(scope="module")
def trees():
    rng = random.Random(23)
    pts_p = [(rng.random(), rng.random()) for __ in range(500)]
    pts_q = [(rng.random(), rng.random()) for __ in range(500)]
    return bulk_load(pts_p), bulk_load(pts_q)


class TestCPQRequest:
    def test_defaults_are_runnable(self, trees):
        result = k_closest_pairs(*trees, request=CPQRequest())
        assert result.algorithm == "HEAP"
        assert len(result.pairs) == 1

    def test_algorithm_normalised_lowercase(self):
        assert CPQRequest(algorithm="HEAP").algorithm == "heap"

    def test_tie_break_stored_parsed(self):
        request = CPQRequest(algorithm="std", tie_break="T2")
        assert isinstance(request.tie_break, TieBreak)

    def test_frozen(self):
        request = CPQRequest()
        with pytest.raises(AttributeError):
            request.k = 5

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"algorithm": "quantum"}, "unknown algorithm"),
            ({"k": 0}, "k must be"),
            ({"buffer_pages": -1}, "buffer_pages"),
            ({"deadline_ms": 0}, "deadline_ms"),
            ({"height_strategy": "sideways"}, "height strategy"),
            ({"algorithm": "std", "tie_break": "T7"}, "tie criterion"),
        ],
    )
    def test_validation_at_construction(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CPQRequest(**kwargs)

    def test_classic_keywords_removed(self, trees):
        # The historical ``k_closest_pairs(.., k=, algorithm=)`` shim
        # finished its deprecation cycle; the knobs live on the
        # request object only.
        with pytest.raises(TypeError):
            k_closest_pairs(*trees, k=50, algorithm="naive")

    def test_deadline_raises(self, trees):
        request = CPQRequest(k=10, deadline_ms=1e-6)
        with pytest.raises(DeadlineExceeded):
            k_closest_pairs(*trees, request=request)

    def test_trace_attaches_span_tree(self, trees):
        result = k_closest_pairs(*trees, request=CPQRequest(trace=True))
        assert result.trace is not None
        assert result.trace.find("traverse") is not None

    def test_no_trace_by_default(self, trees):
        result = k_closest_pairs(*trees, request=CPQRequest())
        assert result.trace is None


class TestCacheKey:
    def test_excludes_execution_environment(self):
        base = CPQRequest(k=5)
        for variant in (
            CPQRequest(k=5, use_vectorized=False),
            CPQRequest(k=5, buffer_pages=64),
            CPQRequest(k=5, deadline_ms=100.0),
            CPQRequest(k=5, trace=True),
            CPQRequest(k=5, reset_stats=False),
        ):
            assert variant.cache_key() == base.cache_key()

    def test_captures_result_identity(self):
        base = CPQRequest(k=5)
        for variant in (
            CPQRequest(k=6),
            CPQRequest(k=5, algorithm="std"),
            CPQRequest(k=5, metric=MANHATTAN),
            CPQRequest(k=5, height_strategy=FIX_AT_LEAVES),
            CPQRequest(k=5, algorithm="std", tie_break="T2"),
            CPQRequest(k=5, maxmax_pruning=False),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_key_is_hashable_primitives(self):
        key = CPQRequest(algorithm="std", tie_break="T3").cache_key()
        assert hash(key) is not None


class TestRegistry:
    def test_every_algorithm_registered_with_runner(self):
        assert ALGORITHMS[:5] == ("naive", "exh", "sim", "std", "heap")
        assert set(ALGORITHMS) == {
            "naive", "exh", "sim", "std", "heap",
            "clipped", "rcp",
            "self", "semi", "multiway", "incremental",
        }
        for name, spec in ALGORITHM_REGISTRY.items():
            assert spec.name == name
            assert callable(spec.runner)

    def test_core_labels_match_names(self):
        for name in ("naive", "exh", "sim", "std", "heap"):
            assert ALGORITHM_REGISTRY[name].label == name.upper()

    def test_capability_flags(self):
        for name in ("naive", "exh", "sim", "std", "heap"):
            spec = ALGORITHM_REGISTRY[name]
            assert spec.supports_parallel
            assert spec.supports_range and spec.supports_colors
            assert not (spec.self_join or spec.semi or spec.multiway
                        or spec.incremental)
        for name in ("clipped", "rcp"):
            spec = ALGORITHM_REGISTRY[name]
            assert spec.specialized and not spec.plannable
            assert spec.supports_range and spec.supports_colors
        assert ALGORITHM_REGISTRY["clipped"].supports_parallel
        assert not ALGORITHM_REGISTRY["rcp"].supports_parallel
        assert ALGORITHM_REGISTRY["self"].self_join
        assert ALGORITHM_REGISTRY["semi"].semi
        assert ALGORITHM_REGISTRY["multiway"].multiway
        assert ALGORITHM_REGISTRY["incremental"].incremental
        for name in ("self", "semi", "multiway", "incremental"):
            spec = ALGORITHM_REGISTRY[name]
            assert not spec.supports_parallel
            assert not spec.plannable

    def test_naive_is_not_plannable(self):
        assert "naive" not in PLANNABLE_ALGORITHMS
        assert set(PLANNABLE_ALGORITHMS) == {"exh", "sim", "std", "heap"}

    def test_planner_candidates_come_from_registry(self):
        from repro.service.planner import CANDIDATES

        assert CANDIDATES == PLANNABLE_ALGORITHMS

    def test_spec_property(self):
        assert CPQRequest(algorithm="sim").spec.label == "SIM"


class TestTracerWatchRefcount:
    class _Buffer:
        on_read = None

    def test_nested_watch_survives_inner_unwatch(self):
        tracer = Tracer()
        buffer = self._Buffer()
        tracer.watch_buffer(buffer, "io.p")
        tracer.watch_buffer(buffer, "io.p")
        tracer.unwatch_buffer(buffer)
        assert buffer.on_read is not None
        tracer.unwatch_buffer(buffer)
        assert buffer.on_read is None

    def test_unwatch_unknown_buffer_is_noop(self):
        tracer = Tracer()
        buffer = self._Buffer()
        tracer.unwatch_buffer(buffer)
        assert buffer.on_read is None

    def test_unwatch_spares_replacement_observer(self):
        tracer = Tracer()
        other = Tracer()
        buffer = self._Buffer()
        tracer.watch_buffer(buffer, "io.p")
        other.watch_buffer(buffer, "io.p")
        tracer.unwatch_buffer(buffer)
        # The replacement installed by the other tracer must survive.
        assert buffer.on_read is not None
        other.unwatch_buffer(buffer)
        assert buffer.on_read is None

    def test_traced_query_releases_observers(self, trees):
        # The regression this guards: traced_traversal used to leave
        # its on_read observers installed after the query returned.
        tree_p, tree_q = trees
        tracer = Tracer()
        k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=3), tracer=tracer
        )
        assert tree_p.file.buffer.on_read is None
        assert tree_q.file.buffer.on_read is None

    def test_traced_query_releases_observers_on_deadline(self, trees):
        tree_p, tree_q = trees
        tracer = Tracer()
        with pytest.raises(DeadlineExceeded):
            k_closest_pairs(
                *trees,
                request=CPQRequest(k=10, deadline_ms=1e-6),
                tracer=tracer,
            )
        assert tree_p.file.buffer.on_read is None
        assert tree_q.file.buffer.on_read is None


class TestKernelCostEstimate:
    def test_prices_known_kernels(self):
        kernels = {"minmin": {"calls": 2, "pairs": 1000}}
        expected = 1000 * KERNEL_NS_PER_PAIR["minmin"] / 1e6
        assert estimate_cpu_ms(kernels) == pytest.approx(expected)

    def test_unknown_kernel_priced_at_worst_rate(self):
        worst = max(KERNEL_NS_PER_PAIR.values())
        assert estimate_cpu_ms(
            {"future_kernel": {"calls": 1, "pairs": 100}}
        ) == pytest.approx(100 * worst / 1e6)

    def test_empty_tally_is_free(self):
        assert estimate_cpu_ms({}) == 0.0

    def test_snapshot_section_feeds_estimate(self):
        from repro.service.metrics import ServiceMetrics

        snapshot = ServiceMetrics().snapshot()
        assert "kernels" in snapshot
        assert estimate_cpu_ms(snapshot["kernels"]) >= 0.0
