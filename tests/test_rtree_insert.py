"""R-tree / R*-tree insertion tests (invariants, variants, growth)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import RTreeInvariantError, validate
from repro.storage.page import PageLayout

SMALL = PageLayout(page_size=16 + 4 * 48)  # M = 4, m = 1


def build(points, variant="rstar", layout=SMALL):
    tree = RTree(RTreeConfig(layout=layout, variant=variant))
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.read_root() is None
        validate(tree)

    def test_single_insert(self):
        tree = RTree()
        tree.insert((1.0, 2.0), 7)
        assert len(tree) == 1
        assert tree.height == 1
        root = tree.read_root()
        assert root.is_leaf
        assert root.entries[0].point == (1.0, 2.0)
        assert root.entries[0].oid == 7
        validate(tree)

    def test_dimension_mismatch_rejected(self):
        tree = RTree()
        with pytest.raises(ValueError):
            tree.insert((1.0, 2.0, 3.0), 0)

    def test_duplicate_points_allowed(self):
        tree = build([(0.5, 0.5)] * 20)
        assert len(tree) == 20
        validate(tree)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            RTreeConfig(variant="bogus")

    def test_bad_reinsert_fraction_rejected(self):
        with pytest.raises(ValueError):
            RTreeConfig(reinsert_fraction=0.0)


class TestGrowth:
    def test_root_split_grows_height(self):
        # M = 4: the fifth insert must split the root leaf.
        points = [(float(i), float(i)) for i in range(5)]
        tree = build(points)
        assert tree.height == 2
        validate(tree)

    @pytest.mark.parametrize("variant", ["rstar", "guttman"])
    @pytest.mark.parametrize("n", [1, 4, 5, 16, 17, 65, 200])
    def test_invariants_across_sizes(self, variant, n):
        rng = random.Random(n)
        points = [(rng.random(), rng.random()) for __ in range(n)]
        tree = build(points, variant=variant)
        summary = validate(tree)
        assert summary.entries == n

    def test_collinear_points(self):
        tree = build([(float(i), 0.0) for i in range(50)])
        validate(tree)

    def test_identical_points_mass(self):
        # Every MBR degenerates; splits must still terminate.
        tree = build([(1.0, 1.0)] * 60)
        validate(tree)

    def test_clustered_insertion_order(self):
        rng = random.Random(9)
        cluster_a = [(rng.random() * 0.1, rng.random() * 0.1) for __ in range(60)]
        cluster_b = [
            (0.9 + rng.random() * 0.1, 0.9 + rng.random() * 0.1)
            for __ in range(60)
        ]
        tree = build(cluster_a + cluster_b)
        validate(tree)

    def test_paper_capacity_tree(self):
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for __ in range(500)]
        tree = build(points, layout=PageLayout(page_size=1024))
        summary = validate(tree)
        assert summary.entries == 500
        assert tree.height >= 2


class TestContents:
    def test_all_points_retrievable(self):
        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for __ in range(150)]
        tree = build(points)
        stored = sorted((e.point, e.oid) for e in tree.iter_leaf_entries())
        expected = sorted(
            ((float(x), float(y)), oid)
            for oid, (x, y) in enumerate(points)
        )
        assert stored == expected

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=25)
    def test_invariants_hold_for_any_input(self, points):
        tree = build(points)
        summary = validate(tree)
        assert summary.entries == len(points)


class TestValidateDetectsCorruption:
    def test_detects_wrong_parent_mbr(self):
        tree = build([(float(i), float(i)) for i in range(20)])
        root = tree.read_root()
        assert not root.is_leaf
        # Corrupt the first entry's MBR and expect the validator to see it.
        from repro.geometry.mbr import MBR
        from repro.rtree.entries import InternalEntry

        bad = InternalEntry(MBR((-99, -99), (99, 99)), root.entries[0].child_id)
        root.entries[0] = bad
        root.invalidate_caches()
        tree._write_node(root)
        with pytest.raises(RTreeInvariantError):
            validate(tree)

    def test_detects_count_mismatch(self):
        tree = build([(float(i), float(i)) for i in range(10)])
        tree._count += 1
        with pytest.raises(RTreeInvariantError):
            validate(tree)
