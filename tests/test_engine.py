"""Unit tests for the shared CPQ engine internals."""

import math

import numpy as np
import pytest

from repro.core.engine import (
    CPQContext,
    CPQOptions,
    _guaranteed_points,
    _kcp_bound_from_maxmax,
    generate_candidates,
    order_candidates,
)
from repro.rtree.bulk import bulk_load


class TestKCPBound:
    def test_first_guarantee_is_minmax(self):
        # K = 1 accumulates one pair: the smallest MINMAXDIST.
        bound = _kcp_bound_from_maxmax(
            minmax=np.array([3.0, 5.0]),
            maxmax=np.array([10.0, 12.0]),
            counts=np.array([4.0, 4.0]),
            k=1,
        )
        assert bound == 3.0

    def test_accumulates_counts(self):
        # Guarantees sorted: (3.0, 1), (5.0, 1), (10.0, 3), (12.0, 3).
        bound = _kcp_bound_from_maxmax(
            minmax=np.array([3.0, 5.0]),
            maxmax=np.array([10.0, 12.0]),
            counts=np.array([4.0, 4.0]),
            k=5,
        )
        assert bound == 10.0

    def test_k_beyond_total_is_infinite(self):
        bound = _kcp_bound_from_maxmax(
            minmax=np.array([1.0]),
            maxmax=np.array([2.0]),
            counts=np.array([3.0]),
            k=100,
        )
        assert bound == math.inf

    def test_exact_boundary(self):
        # cumulative = [1, 2] -> k = 2 is covered by the second value.
        bound = _kcp_bound_from_maxmax(
            minmax=np.array([1.0]),
            maxmax=np.array([7.0]),
            counts=np.array([2.0]),
            k=2,
        )
        assert bound == 7.0


class TestGuaranteedPoints:
    def test_children_of_internal_node(self):
        points = [(float(i) / 100, float(i % 10) / 10) for i in range(300)]
        tree = bulk_load(points)
        root = tree.read_root()
        assert not root.is_leaf
        counts = _guaranteed_points(tree, root, expanded=True)
        assert len(counts) == len(root.entries)
        # children at level root.level - 1 hold >= m ** root.level points
        assert np.all(counts == tree.min_entries ** root.level)
        # the guarantee must actually hold
        for entry in root.entries:
            child = tree.read_node(entry.child_id)
            total = sum(1 for __ in _leaf_points(tree, child))
            assert total >= counts[0]

    def test_fixed_root_guarantee(self):
        points = [(float(i), 0.0) for i in range(50)]
        tree = bulk_load(points)
        root = tree.read_root()
        counts = _guaranteed_points(tree, root, expanded=False)
        assert counts.shape == (1,)
        assert counts[0] <= len(points)


def _leaf_points(tree, node):
    if node.is_leaf:
        yield from node.entries
        return
    for entry in node.entries:
        yield from _leaf_points(tree, tree.read_node(entry.child_id))


class TestCandidateGeneration:
    @pytest.fixture
    def context(self):
        p = bulk_load([(i / 60.0, (i % 8) / 8.0) for i in range(360)])
        q = bulk_load([(0.5 + i / 60.0, (i % 8) / 8.0) for i in range(360)])
        return CPQContext(p, q, k=1)

    def test_no_prune_keeps_every_pair(self, context):
        options = CPQOptions(prune=False, update_bound=False)
        candidates = generate_candidates(
            context, context.root_p, context.root_q, options
        )
        expected = len(context.root_p.entries) * len(context.root_q.entries)
        assert len(candidates) == expected

    def test_prune_respects_bound(self, context):
        context.bound = 0.0  # only MINMINDIST == 0 pairs survive
        options = CPQOptions(prune=True, update_bound=False)
        candidates = generate_candidates(
            context, context.root_p, context.root_q, options
        )
        assert np.all(candidates.minmin <= 0.0)

    def test_update_bound_tightens_t(self, context):
        assert context.t == math.inf
        options = CPQOptions(prune=True, update_bound=True)
        generate_candidates(
            context, context.root_p, context.root_q, options
        )
        assert context.t < math.inf

    def test_sorted_order_is_ascending(self, context):
        options = CPQOptions(prune=False, update_bound=True, sort=True)
        candidates = generate_candidates(
            context, context.root_p, context.root_q, options
        )
        order = order_candidates(context, candidates, options)
        values = candidates.minmin[order]
        assert np.all(np.diff(values) >= 0)

    def test_unsorted_order_is_natural(self, context):
        options = CPQOptions(prune=False, update_bound=False, sort=False)
        candidates = generate_candidates(
            context, context.root_p, context.root_q, options
        )
        order = order_candidates(context, candidates, options)
        assert list(order) == list(range(len(candidates)))

    def test_dimension_mismatch_rejected(self):
        from repro.rtree.tree import RTree, RTreeConfig
        from repro.storage.page import PageLayout

        p = bulk_load([(0.0, 0.0)])
        q3 = RTree(RTreeConfig(layout=PageLayout(dimension=3)))
        with pytest.raises(ValueError):
            CPQContext(p, q3, k=1)
