"""Tests for the Hilbert curve and Hilbert-packed bulk loading."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.hilbert import (
    hilbert_bulk_load,
    hilbert_index,
    hilbert_point,
    hilbert_sort_key,
)
from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import validate
from repro.storage.page import PageLayout


class TestHilbertCurve:
    def test_order_one_square(self):
        # The canonical 2x2 curve: (0,0) -> (0,1) -> (1,1) -> (1,0).
        visits = [hilbert_point(d, order=1) for d in range(4)]
        assert visits == [(0, 0), (0, 1), (1, 1), (1, 0)]

    @given(st.integers(0, 2 ** 12 - 1))
    def test_roundtrip(self, d):
        x, y = hilbert_point(d, order=6)
        assert hilbert_index(x, y, order=6) == d

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_inverse_roundtrip(self, x, y):
        d = hilbert_index(x, y, order=6)
        assert hilbert_point(d, order=6) == (x, y)

    @given(st.integers(0, 2 ** 10 - 2))
    def test_consecutive_cells_are_adjacent(self, d):
        # The defining property of the curve: unit steps in the index
        # move exactly one cell in the grid.
        x1, y1 = hilbert_point(d, order=5)
        x2, y2 = hilbert_point(d + 1, order=5)
        assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_bijective_small_grid(self):
        order = 3
        seen = {
            hilbert_point(d, order) for d in range(4 ** order)
        }
        assert len(seen) == 4 ** order

    def test_out_of_grid_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index(-1, 0, order=4)
        with pytest.raises(ValueError):
            hilbert_index(16, 0, order=4)
        with pytest.raises(ValueError):
            hilbert_point(4 ** 4, order=4)

    def test_sort_key_handles_degenerate_extent(self):
        import numpy as np

        keys = hilbert_sort_key(np.array([[1.0, 1.0], [1.0, 1.0]]))
        assert keys[0] == keys[1]


class TestHilbertBulkLoad:
    @pytest.mark.parametrize("n", [1, 14, 15, 100, 3000])
    def test_invariants_across_sizes(self, n):
        rng = random.Random(n)
        points = [(rng.random(), rng.random()) for __ in range(n)]
        tree = hilbert_bulk_load(points)
        summary = validate(tree)
        assert summary.entries == n

    def test_contents_preserved(self):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for __ in range(500)]
        tree = hilbert_bulk_load(points)
        stored = sorted((e.point, e.oid) for e in tree.iter_leaf_entries())
        expected = sorted(
            ((float(x), float(y)), oid)
            for oid, (x, y) in enumerate(points)
        )
        assert stored == expected

    def test_queries_work(self):
        from repro.query import nearest_neighbors

        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for __ in range(1000)]
        tree = hilbert_bulk_load(points)
        found = nearest_neighbors(tree, (0.5, 0.5), k=3)
        brute = sorted(math.dist((0.5, 0.5), p) for p in points)[:3]
        assert [d for d, __ in found] == pytest.approx(brute, abs=1e-9)

    def test_cpq_identical_to_str_tree(self):
        from repro.core import CPQRequest, k_closest_pairs
        from repro.rtree.bulk import bulk_load

        rng = random.Random(4)
        pts_p = [(rng.random(), rng.random()) for __ in range(600)]
        pts_q = [(rng.random(), rng.random()) for __ in range(600)]
        hp, hq = hilbert_bulk_load(pts_p), hilbert_bulk_load(pts_q)
        sp, sq = bulk_load(pts_p), bulk_load(pts_q)
        hilbert_result = k_closest_pairs(hp, hq, request=CPQRequest(k=12))
        str_result = k_closest_pairs(sp, sq, request=CPQRequest(k=12))
        assert hilbert_result.distances() == pytest.approx(
            str_result.distances()
        )

    def test_rejects_non_2d(self):
        config = RTreeConfig(layout=PageLayout(dimension=3))
        with pytest.raises(ValueError, match="2-d"):
            hilbert_bulk_load([(0.0, 0.0, 0.0)], config=config)

    def test_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            hilbert_bulk_load([(0.0, 0.0)], fill=2.0)

    def test_empty(self):
        tree = hilbert_bulk_load([])
        assert len(tree) == 0


class TestLinearSplitVariant:
    def test_linear_variant_builds_valid_trees(self):
        rng = random.Random(5)
        tree = RTree(RTreeConfig(variant="linear"))
        points = [(rng.random(), rng.random()) for __ in range(800)]
        for oid, point in enumerate(points):
            tree.insert(point, oid)
        summary = validate(tree)
        assert summary.entries == 800

    def test_linear_variant_queries_correctly(self):
        from repro.core import CPQRequest, k_closest_pairs
        from repro.rtree.bulk import bulk_load

        rng = random.Random(6)
        pts_p = [(rng.random(), rng.random()) for __ in range(300)]
        pts_q = [(rng.random(), rng.random()) for __ in range(300)]
        tree_p = RTree(RTreeConfig(variant="linear"))
        for oid, point in enumerate(pts_p):
            tree_p.insert(point, oid)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(tree_p, tree_q, request=CPQRequest(k=5))
        reference = k_closest_pairs(
            bulk_load(pts_p),
            tree_q,
            request=CPQRequest(k=5),
        )
        assert result.distances() == pytest.approx(reference.distances())

    def test_identical_points_split_terminates(self):
        tree = RTree(RTreeConfig(variant="linear"))
        for i in range(60):
            tree.insert((1.0, 1.0), i)
        validate(tree)
