"""Tests for the future-work extensions: Self-CPQ and Semi-CPQ."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions import self_k_closest_pairs, semi_closest_pairs
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

coord = st.floats(min_value=0, max_value=20, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=2, max_size=30)


def self_brute(points, k):
    distances = sorted(
        math.dist(points[i], points[j])
        for i in range(len(points))
        for j in range(i + 1, len(points))
    )
    return distances[:k]


class TestSelfCPQ:
    @given(point_lists, st.integers(1, 6))
    @settings(max_examples=20)
    def test_matches_brute_force(self, points, k):
        n_pairs = len(points) * (len(points) - 1) // 2
        k = min(k, n_pairs)
        result = self_k_closest_pairs(bulk_load(points), k=k)
        assert result.distances() == pytest.approx(
            self_brute(points, k), abs=1e-9
        )

    def test_no_self_pairs_and_canonical_order(self):
        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for __ in range(200)]
        result = self_k_closest_pairs(bulk_load(points), k=20)
        for pair in result.pairs:
            assert pair.p_oid < pair.q_oid

    def test_duplicate_points_pair_at_zero(self):
        points = [(1.0, 1.0), (1.0, 1.0), (5.0, 5.0)]
        result = self_k_closest_pairs(bulk_load(points), k=1)
        assert result.pairs[0].distance == 0.0
        assert result.pairs[0].p_oid != result.pairs[0].q_oid

    def test_larger_set(self):
        rng = random.Random(9)
        points = [(rng.random(), rng.random()) for __ in range(800)]
        result = self_k_closest_pairs(bulk_load(points), k=15)
        assert result.distances() == pytest.approx(
            self_brute(points, 15), abs=1e-9
        )
        assert result.stats.disk_accesses > 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            self_k_closest_pairs(bulk_load([(0.0, 0.0)] * 3), k=0)

    def test_tiny_trees(self):
        assert self_k_closest_pairs(RTree(), k=1).pairs == []
        assert self_k_closest_pairs(bulk_load([(0.0, 0.0)]), k=1).pairs == []
        two = self_k_closest_pairs(
            bulk_load([(0.0, 0.0), (3.0, 4.0)]), k=5
        )
        assert two.distances() == pytest.approx([5.0])


class TestSemiCPQ:
    @given(point_lists, point_lists)
    @settings(max_examples=20)
    def test_every_p_point_gets_its_nearest(self, pts_p, pts_q):
        result = semi_closest_pairs(
            bulk_load(pts_p), bulk_load(pts_q), sort_result=False
        )
        assert len(result.pairs) == len(pts_p)
        nearest = {}
        for pair in result.pairs:
            nearest[pair.p_oid] = pair.distance
        assert sorted(nearest) == list(range(len(pts_p)))
        for oid, point in enumerate(pts_p):
            expected = min(math.dist(point, q) for q in pts_q)
            assert nearest[oid] == pytest.approx(expected, abs=1e-9)

    def test_sorted_output(self):
        rng = random.Random(2)
        pts_p = [(rng.random(), rng.random()) for __ in range(150)]
        pts_q = [(rng.random(), rng.random()) for __ in range(150)]
        result = semi_closest_pairs(bulk_load(pts_p), bulk_load(pts_q))
        distances = result.distances()
        assert distances == sorted(distances)

    def test_semi_is_asymmetric(self):
        pts_p = [(0.0, 0.0)]
        pts_q = [(1.0, 0.0), (2.0, 0.0)]
        forward = semi_closest_pairs(bulk_load(pts_p), bulk_load(pts_q))
        backward = semi_closest_pairs(bulk_load(pts_q), bulk_load(pts_p))
        assert len(forward.pairs) == 1
        assert len(backward.pairs) == 2

    def test_empty_sides(self):
        empty = RTree()
        tree = bulk_load([(0.0, 0.0)])
        assert semi_closest_pairs(empty, tree).pairs == []
        assert semi_closest_pairs(tree, empty).pairs == []

    def test_prunes_io_against_scan(self):
        rng = random.Random(14)
        pts_p = [(rng.random(), rng.random()) for __ in range(400)]
        pts_q = [(rng.random(), rng.random()) for __ in range(2000)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = semi_closest_pairs(tree_p, tree_q)
        full_scan = len(pts_p) * tree_q.node_count()
        assert result.stats.disk_accesses < full_scan / 10
