"""Hypothesis stateful (model-based) testing of the R-tree.

A rule machine interleaves inserts, deletes and queries against a
plain-dict model; after every step the structural invariants must hold
and query answers must match the model.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.geometry.mbr import MBR
from repro.query import nearest_neighbors, range_query
from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import validate
from repro.storage.page import PageLayout

SMALL = PageLayout(page_size=16 + 4 * 48)  # M = 4: splits early
coordinate = st.integers(min_value=0, max_value=15).map(float)


class RTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = RTree(RTreeConfig(layout=SMALL))
        self.model = {}  # oid -> point
        self.next_oid = 0

    @rule(x=coordinate, y=coordinate)
    def insert(self, x, y):
        point = (x, y)
        self.tree.insert(point, self.next_oid)
        self.model[self.next_oid] = point
        self.next_oid += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        point = self.model.pop(oid)
        assert self.tree.delete(point, oid)

    @rule(x=coordinate, y=coordinate)
    def delete_missing(self, x, y):
        # A coordinate pair that is not in the model must not delete.
        if (x, y) not in self.model.values():
            assert not self.tree.delete((x, y), oid=99_999_999)

    @rule(x1=coordinate, y1=coordinate, x2=coordinate, y2=coordinate)
    def range_matches_model(self, x1, y1, x2, y2):
        window = MBR(
            (min(x1, x2), min(y1, y2)), (max(x1, x2), max(y1, y2))
        )
        got = sorted(e.oid for e in range_query(self.tree, window))
        want = sorted(
            oid
            for oid, point in self.model.items()
            if window.contains_point(point)
        )
        assert got == want

    @precondition(lambda self: self.model)
    @rule(x=coordinate, y=coordinate)
    def nearest_matches_model(self, x, y):
        found = nearest_neighbors(self.tree, (x, y), k=1)
        best = min(
            math.dist((x, y), point) for point in self.model.values()
        )
        assert found[0][0] == best

    @invariant()
    def structure_is_valid(self):
        summary = validate(self.tree)
        assert summary.entries == len(self.model)


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
