"""CPQL: grammar, error positions, and compilation parity.

The language adds nothing the programmatic API lacks -- so the
headline assertions here are *equivalences*: a parsed statement
compiled to a request returns byte-identical pairs and tie order to
the hand-built request, in-process, through the CLI renderer, and
over a real 2-shard socket speaking the wire-v3 ``sql`` envelope.
Around that: parser round-trips, reserved-word handling, and the
property that every syntax error carries a caret position inside the
source string.
"""

import json
import random

import pytest
from hypothesis import given, strategies as st

from repro.catalog import Catalog
from repro.core.api import ALGORITHMS
from repro.core.constraints import ColorSpec, RangeSpec
from repro.errors import CPQLError
from repro.net import NetClient, NetServer, ShardManager, wire
from repro.query.cpql import KEYWORDS, ParsedQuery, parse, tokenize
from repro.service import CPQRequest, QueryService


def _points(n, seed):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for __ in range(n)]


class TestParser:
    def test_minimal_statement(self):
        parsed = parse("SELECT CLOSEST PAIRS FROM parks, schools")
        assert parsed == ParsedQuery("parks", "schools")
        assert parsed.k == 1
        assert parsed.algorithm == "auto"
        assert parsed.pair_name == "parks,schools"

    def test_single_dataset_is_self_join(self):
        parsed = parse("SELECT CLOSEST PAIRS K 3 FROM towns")
        assert parsed.dataset_p == parsed.dataset_q == "towns"
        assert parsed.pair_name == "towns,towns"

    def test_keywords_case_insensitive(self):
        parsed = parse("select closest pairs k 7 from a, b using heap")
        assert parsed.k == 7
        assert parsed.algorithm == "heap"

    def test_range_predicate(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b "
            "WHERE RANGE (0.1, 0.2, 0.6, 0.7)"
        )
        assert parsed.range_spec == RangeSpec(
            lo=(0.1, 0.2), hi=(0.6, 0.7)
        )
        assert parsed.range_spec.mode == "both"

    def test_range_on_side(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b "
            "WHERE RANGE (0, 0, 1, 1) ON P"
        )
        assert parsed.range_spec.mode == "p"

    def test_colors_distinct_defaults_modulus_two(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b WHERE COLORS DISTINCT"
        )
        assert parsed.colors == ColorSpec(modulus=2, distinct=True)

    def test_colors_full_form(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b "
            "WHERE COLORS MOD 4 DISTINCT P (1, 3) Q (0, 2)"
        )
        assert parsed.colors == ColorSpec(
            modulus=4, colors_p=(1, 3), colors_q=(0, 2), distinct=True
        )

    def test_both_predicates_joined_by_and(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS K 10 FROM a, b "
            "WHERE RANGE (0, 0, 1, 1) AND COLORS MOD 3 "
            "USING heap"
        )
        assert parsed.range_spec is not None
        assert parsed.colors is not None
        assert parsed.algorithm == "heap"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_accepted(self, algorithm):
        parsed = parse(
            f"SELECT CLOSEST PAIRS FROM a, a USING {algorithm}"
        )
        assert parsed.algorithm == algorithm

    def test_scientific_notation_coordinates(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b "
            "WHERE RANGE (1e-3, -2.5E2, .5, 1.0)"
        )
        assert parsed.range_spec.lo == (0.001, -250.0)

    def test_dataset_names_with_dots_and_dashes(self):
        parsed = parse("SELECT CLOSEST PAIRS FROM us-east.parks, b")
        assert parsed.dataset_p == "us-east.parks"


class TestErrors:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("", "expected SELECT"),
            ("SELECT", "expected CLOSEST"),
            ("SELECT CLOSEST PAIRS", "expected FROM"),
            ("SELECT CLOSEST PAIRS K 0 FROM a", "K must be >= 1"),
            ("SELECT CLOSEST PAIRS FROM", "expected a dataset name"),
            ("SELECT CLOSEST PAIRS FROM SELECT", "expected a dataset"),
            ("SELECT CLOSEST PAIRS FROM a, b WHERE", "RANGE or COLORS"),
            ("SELECT CLOSEST PAIRS FROM a WHERE RANGE (1, 2, 3)",
             "even number"),
            ("SELECT CLOSEST PAIRS FROM a WHERE COLORS", "MOD n"),
            ("SELECT CLOSEST PAIRS FROM a USING quantum",
             "unknown algorithm"),
            ("SELECT CLOSEST PAIRS FROM a, b extra", "end of query"),
            ("SELECT CLOSEST PAIRS FROM a WHERE RANGE (0,0,1,1) "
             "AND RANGE (0,0,1,1)", "duplicate RANGE"),
            ("SELECT CLOSEST PAIRS FROM a WHERE COLORS MOD 2 "
             "AND COLORS DISTINCT", "duplicate COLORS"),
        ],
    )
    def test_error_messages(self, source, fragment):
        with pytest.raises(CPQLError, match=fragment):
            parse(source)

    def test_stray_character_position(self):
        source = "SELECT CLOSEST PAIRS FROM a; DROP"
        with pytest.raises(CPQLError) as info:
            parse(source)
        assert info.value.position == source.index(";")

    def test_caret_points_at_offence(self):
        source = "SELECT CLOSEST PAIRS FROM a USING quantum"
        with pytest.raises(CPQLError) as info:
            parse(source)
        caret = info.value.caret()
        assert source in caret
        lines = caret.splitlines()
        assert lines[-1].index("^") == source.index("quantum")

    def test_semantic_error_from_color_spec(self):
        # Residue 5 does not exist mod 4: the ColorSpec's ValueError
        # surfaces as a CPQLError carrying the query.
        with pytest.raises(CPQLError, match="lie in"):
            parse(
                "SELECT CLOSEST PAIRS FROM a, b "
                "WHERE COLORS MOD 4 P (5)"
            )

    def test_non_string_rejected(self):
        with pytest.raises(CPQLError, match="must be a string"):
            parse(42)

    @given(st.text(max_size=80))
    def test_any_input_errors_with_position_in_source(self, source):
        try:
            parse(source)
        except CPQLError as exc:
            assert 0 <= exc.position <= len(source)
        # Parsing successfully is fine too -- the property under test
        # is only that failures point inside the source.

    @given(st.text(
        alphabet=st.sampled_from(
            list("SELECTCLOSEPAIRSFROMWHERE()0123456789,. ")
        ),
        max_size=60,
    ))
    def test_near_miss_inputs_never_crash(self, source):
        try:
            parse(source)
        except CPQLError:
            pass


class TestTokenizer:
    def test_positions_are_source_offsets(self):
        source = "SELECT  CLOSEST\n PAIRS"
        tokens = tokenize(source)
        assert [t.position for t in tokens[:-1]] == [
            source.index("SELECT"), source.index("CLOSEST"),
            source.index("PAIRS"),
        ]
        assert tokens[-1].kind == "end"
        assert tokens[-1].position == len(source)

    def test_keywords_sorted_and_upper(self):
        assert list(KEYWORDS) == sorted(KEYWORDS)
        assert all(k == k.upper() for k in KEYWORDS)


class TestCompilation:
    def test_service_request_equivalence(self):
        parsed = parse(
            "SELECT CLOSEST PAIRS K 5 FROM parks, schools "
            "WHERE RANGE (0.1, 0.1, 0.9, 0.9) AND COLORS DISTINCT "
            "USING heap"
        )
        compiled = parsed.to_service_request(use_cache=False)
        built = CPQRequest(
            pair="parks,schools", k=5, algorithm="heap",
            range=((0.1, 0.1), (0.9, 0.9)), colors=2, use_cache=False,
        )
        assert compiled.pair == built.pair
        assert compiled.k == built.k
        assert compiled.algorithm == built.algorithm
        assert compiled.range == built.range
        assert compiled.colors == ColorSpec(modulus=2, distinct=True)
        assert compiled.cache_params() == built.cache_params()

    def test_core_request_needs_concrete_algorithm(self):
        parsed = parse("SELECT CLOSEST PAIRS FROM a, b")
        with pytest.raises(ValueError, match="planner"):
            parsed.to_core_request()
        assert parsed.to_core_request(algorithm="heap").algorithm == \
            "heap"

    def test_capability_mismatch_surfaces_at_compile(self):
        # 'incremental' cannot honour a range constraint; compiling to
        # a core request fails exactly like the programmatic
        # constructor (the service defers the same check to execution
        # and answers bad_request -- see the CLI exit-code test).
        parsed = parse(
            "SELECT CLOSEST PAIRS FROM a, b "
            "WHERE RANGE (0, 0, 1, 1) USING incremental"
        )
        with pytest.raises(ValueError, match="range"):
            parsed.to_core_request()


@pytest.fixture(scope="module")
def sql_stack(tmp_path_factory):
    """Catalog-registered datasets behind a 2-shard socket stack."""
    tmp = tmp_path_factory.mktemp("cpql-e2e")
    catalog = Catalog(str(tmp))
    catalog.register_dataset("parks", _points(220, seed=1), kind="str")
    catalog.register_dataset("schools", _points(200, seed=2),
                             kind="str")
    manager = ShardManager(
        catalog.tree_spec("parks"), catalog.tree_spec("schools"),
        shards=2, pair="parks,schools",
    )
    service = QueryService(
        workers=4, cpq_executor=manager.service_executor()
    )
    service.register_pair(
        "parks,schools", manager.tree_p, manager.tree_q
    )
    service.attach_catalog(catalog)
    server = NetServer(service, manager=manager).start_in_thread()
    yield server, catalog
    server.close()


class TestInProcessParity:
    def test_sql_equals_programmatic(self, sql_stack, tmp_path):
        __, catalog = sql_stack
        service = QueryService(workers=1, cache_size=0)
        service.attach_catalog(catalog)
        try:
            via_sql = service.execute_sql(
                "SELECT CLOSEST PAIRS K 8 FROM parks, schools "
                "USING heap",
                use_cache=False,
            )
            via_api = service.submit(CPQRequest(
                pair="parks,schools", k=8, algorithm="heap",
                use_cache=False,
            )).result()
            assert via_sql.ok and via_api.ok
            # Byte-identical pairs, including tie order.
            assert via_sql.result.pairs == via_api.result.pairs
        finally:
            service.close()

    def test_constrained_sql_equals_programmatic(self, sql_stack):
        __, catalog = sql_stack
        service = QueryService(workers=1, cache_size=0)
        service.attach_catalog(catalog)
        try:
            via_sql = service.execute_sql(
                "SELECT CLOSEST PAIRS K 6 FROM parks, schools "
                "WHERE RANGE (0.2, 0.2, 0.8, 0.8) USING rcp",
                use_cache=False,
            )
            via_api = service.submit(CPQRequest(
                pair="parks,schools", k=6, algorithm="rcp",
                range=((0.2, 0.2), (0.8, 0.8)), use_cache=False,
            )).result()
            assert via_sql.ok, via_sql.error
            assert via_sql.result.pairs == via_api.result.pairs
        finally:
            service.close()


class TestSocketParity:
    def test_sql_over_socket_equals_programmatic(self, sql_stack):
        server, __ = sql_stack
        with NetClient("127.0.0.1", server.port) as client:
            via_sql = client.sql(
                "SELECT CLOSEST PAIRS K 8 FROM parks, schools "
                "USING heap",
                use_cache=False,
            )
            via_api = client.query(CPQRequest(
                pair="parks,schools", k=8, algorithm="heap",
                use_cache=False,
            ))
            assert via_sql.status == "ok", via_sql.error
            assert via_sql.result.pairs == via_api.result.pairs
            assert via_sql.result.stats.extra["net"]["shards"] == 2

    def test_syntax_error_maps_to_400_with_position(self, sql_stack):
        server, __ = sql_stack
        with NetClient("127.0.0.1", server.port) as client:
            with pytest.raises(wire.WireError, match="position"):
                client.sql("SELECT CLOSEST GARBAGE FROM a")

    def test_unknown_dataset_maps_to_400(self, sql_stack):
        server, __ = sql_stack
        with NetClient("127.0.0.1", server.port) as client:
            with pytest.raises(wire.WireError, match="missing"):
                client.sql("SELECT CLOSEST PAIRS FROM missing, also")

    def test_sql_op_rejected_on_v2_envelope(self, sql_stack):
        import http.client

        server, __ = sql_stack
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request(
                "POST", "/v1/sql",
                body=json.dumps({
                    "v": 2, "op": "sql",
                    "sql": "SELECT CLOSEST PAIRS FROM parks",
                }),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            obj = json.loads(response.read())
            assert response.status == 400
            assert "wire version" in obj["error"]
        finally:
            conn.close()


class TestWireSQL:
    def test_sql_request_round_trip(self):
        request = wire.SQLRequest(
            sql="SELECT CLOSEST PAIRS K 2 FROM a, b",
            deadline_ms=50.0, use_cache=False,
        )
        envelope = wire.encode_request(request)
        assert envelope["v"] == wire.WIRE_VERSION
        assert envelope["op"] == "sql"
        decoded = wire.loads_request(wire.dumps_request(request))
        assert isinstance(decoded, wire.SQLRequest)
        assert decoded.sql == request.sql
        assert decoded.deadline_ms == request.deadline_ms
        assert decoded.use_cache is False

    def test_empty_sql_rejected(self):
        with pytest.raises(wire.WireError, match="sql"):
            wire.decode_request(
                {"v": wire.WIRE_VERSION, "op": "sql", "sql": ""}
            )


class TestCLI:
    @pytest.fixture()
    def cli_catalog(self, tmp_path):
        from repro.cli import main

        points = tmp_path / "pts.csv"
        rng = random.Random(33)
        rows = ["x,y"] + [
            f"{rng.random()},{rng.random()}" for __ in range(150)
        ]
        points.write_text("\n".join(rows) + "\n")
        assert main([
            "catalog", "register", "parks", str(points),
            "--catalog", str(tmp_path), "--kind", "str",
        ]) == 0
        assert main([
            "catalog", "register", "schools", str(points),
            "--catalog", str(tmp_path), "--kind", "str",
        ]) == 0
        return tmp_path

    def test_sql_matches_query_command(self, cli_catalog, capsys):
        from repro.cli import main

        assert main([
            "query", "parks", "schools", "--catalog",
            str(cli_catalog), "--k", "5", "--algorithm", "heap",
        ]) == 0
        query_pairs = [
            line for line in capsys.readouterr().out.splitlines()
            if not line.startswith("#")
        ]
        assert main([
            "sql",
            "SELECT CLOSEST PAIRS K 5 FROM parks, schools USING heap",
            "--catalog", str(cli_catalog),
        ]) == 0
        sql_pairs = [
            line for line in capsys.readouterr().out.splitlines()
            if not line.startswith("#")
        ]
        assert sql_pairs == query_pairs

    def test_bad_statement_exits_2_with_caret(self, cli_catalog,
                                              capsys):
        from repro.cli import main

        assert main([
            "sql", "SELECT CLOSEST NONSENSE",
            "--catalog", str(cli_catalog),
        ]) == 2
        err = capsys.readouterr().err
        assert "CPQL" in err and "^" in err

    def test_unknown_dataset_exits_2(self, cli_catalog, capsys):
        from repro.cli import main

        assert main([
            "sql", "SELECT CLOSEST PAIRS FROM atlantis",
            "--catalog", str(cli_catalog),
        ]) == 2
        assert "atlantis" in capsys.readouterr().err

    def test_capability_mismatch_exits_3(self, cli_catalog, capsys):
        from repro.cli import main

        assert main([
            "sql",
            "SELECT CLOSEST PAIRS FROM parks, schools "
            "WHERE RANGE (0, 0, 1, 1) USING incremental",
            "--catalog", str(cli_catalog),
        ]) == 3
        capsys.readouterr()

    def test_missing_catalog_exits_2(self, capsys):
        from repro.cli import main

        assert main(["sql", "SELECT CLOSEST PAIRS FROM a"]) == 2
        assert "--catalog" in capsys.readouterr().err

    def test_json_output(self, cli_catalog, capsys):
        from repro.cli import main

        assert main([
            "sql",
            "SELECT CLOSEST PAIRS K 3 FROM parks, schools USING heap",
            "--catalog", str(cli_catalog), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert len(payload["pairs"]) == 3
