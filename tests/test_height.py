"""Height-strategy (fix-at-root / fix-at-leaves) decision tests."""

import pytest

from repro.core.height import (
    EXPAND_BOTH,
    EXPAND_P,
    EXPAND_Q,
    FIX_AT_LEAVES,
    FIX_AT_ROOT,
    expansion,
    validate_strategy,
)
from repro.rtree.node import Node


def node(level):
    return Node(page_id=level * 10, level=level)


class TestValidate:
    def test_known_strategies(self):
        assert validate_strategy(FIX_AT_ROOT) == FIX_AT_ROOT
        assert validate_strategy(FIX_AT_LEAVES) == FIX_AT_LEAVES

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            validate_strategy("fix-somewhere")


class TestExpansion:
    def test_leaf_leaf_rejected(self):
        with pytest.raises(ValueError):
            expansion(node(0), node(0), FIX_AT_ROOT)

    @pytest.mark.parametrize("strategy", [FIX_AT_ROOT, FIX_AT_LEAVES])
    def test_leaf_vs_internal_expands_internal(self, strategy):
        assert expansion(node(0), node(2), strategy) == EXPAND_Q
        assert expansion(node(2), node(0), strategy) == EXPAND_P

    def test_equal_internal_levels_expand_both(self):
        for strategy in (FIX_AT_ROOT, FIX_AT_LEAVES):
            assert expansion(node(2), node(2), strategy) == EXPAND_BOTH

    def test_fix_at_root_descends_taller_side_only(self):
        # Unequal internal levels: only the higher-level node expands.
        assert expansion(node(3), node(1), FIX_AT_ROOT) == EXPAND_P
        assert expansion(node(1), node(3), FIX_AT_ROOT) == EXPAND_Q

    def test_fix_at_leaves_descends_both_while_internal(self):
        assert expansion(node(3), node(1), FIX_AT_LEAVES) == EXPAND_BOTH
        assert expansion(node(1), node(3), FIX_AT_LEAVES) == EXPAND_BOTH
