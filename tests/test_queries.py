"""Substrate query tests: range, point location, K-NN vs brute force."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.minkowski import CHEBYSHEV, MANHATTAN
from repro.query import (
    nearest_neighbor,
    nearest_neighbors,
    point_location,
    range_query,
)
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

coord = st.floats(min_value=0, max_value=10, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=0, max_size=80)


class TestRangeQuery:
    @given(point_lists, coord, coord, coord, coord)
    @settings(max_examples=30)
    def test_matches_brute_force(self, points, x1, y1, x2, y2):
        window = MBR(
            (min(x1, x2), min(y1, y2)), (max(x1, x2), max(y1, y2))
        )
        tree = bulk_load(points)
        got = sorted(e.oid for e in range_query(tree, window))
        want = sorted(
            i for i, p in enumerate(points) if window.contains_point(p)
        )
        assert got == want

    def test_empty_tree(self):
        assert range_query(RTree(), MBR((0, 0), (1, 1))) == []

    def test_window_dimension_mismatch(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError):
            range_query(tree, MBR((0, 0, 0), (1, 1, 1)))

    def test_whole_space_returns_everything(self):
        points = [(float(i), float(i)) for i in range(50)]
        tree = bulk_load(points)
        got = range_query(tree, MBR((-1, -1), (99, 99)))
        assert len(got) == 50


class TestPointLocation:
    def test_finds_all_objects_at_point(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        tree = bulk_load(points)
        oids = sorted(e.oid for e in point_location(tree, (1.0, 1.0)))
        assert oids == [0, 1]

    def test_miss(self):
        tree = bulk_load([(1.0, 1.0)])
        assert point_location(tree, (5.0, 5.0)) == []

    def test_empty_tree(self):
        assert point_location(RTree(), (0.0, 0.0)) == []

    def test_dimension_mismatch(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError):
            point_location(tree, (0.0, 0.0, 0.0))


class TestKNN:
    @given(point_lists, st.tuples(coord, coord), st.integers(1, 10))
    @settings(max_examples=30)
    def test_matches_brute_force(self, points, query, k):
        tree = bulk_load(points)
        found = nearest_neighbors(tree, query, k=k)
        brute = sorted(math.dist(query, p) for p in points)[:k]
        assert len(found) == min(k, len(points))
        for (d, __), expected in zip(found, brute):
            assert d == pytest.approx(expected, abs=1e-9)

    def test_results_sorted(self):
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for __ in range(200)]
        tree = bulk_load(points)
        found = nearest_neighbors(tree, (0.5, 0.5), k=20)
        distances = [d for d, __ in found]
        assert distances == sorted(distances)

    def test_k_larger_than_tree(self):
        tree = bulk_load([(0.0, 0.0), (1.0, 1.0)])
        assert len(nearest_neighbors(tree, (0.0, 0.0), k=10)) == 2

    def test_empty_tree(self):
        assert nearest_neighbors(RTree(), (0.0, 0.0), k=1) == []
        assert nearest_neighbor(RTree(), (0.0, 0.0)) is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            nearest_neighbors(bulk_load([(0.0, 0.0)]), (0.0, 0.0), k=0)

    def test_dimension_mismatch(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError):
            nearest_neighbors(tree, (0.0,), k=1)

    @pytest.mark.parametrize("metric", [MANHATTAN, CHEBYSHEV])
    def test_other_metrics(self, metric):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for __ in range(150)]
        tree = bulk_load(points)
        query = (0.3, 0.7)
        found = nearest_neighbors(tree, query, k=5, metric=metric)
        brute = sorted(metric.distance(query, p) for p in points)[:5]
        for (d, __), expected in zip(found, brute):
            assert d == pytest.approx(expected, abs=1e-9)

    def test_knn_prunes_io(self):
        # A 1-NN query must touch far fewer nodes than the tree holds.
        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for __ in range(5000)]
        tree = bulk_load(points)
        tree.file.reset_for_query()
        nearest_neighbors(tree, (0.5, 0.5), k=1)
        assert tree.stats.disk_reads < tree.node_count() / 5
