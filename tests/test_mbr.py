"""Unit and property tests for MBRs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR

coord = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def mbrs(draw, dims=2):
    lo = [draw(coord) for __ in range(dims)]
    hi = [draw(coord) for __ in range(dims)]
    lo, hi = (
        [min(a, b) for a, b in zip(lo, hi)],
        [max(a, b) for a, b in zip(lo, hi)],
    )
    return MBR(lo, hi)


@st.composite
def points_in(draw, box: MBR):
    return tuple(
        draw(st.floats(min_value=l, max_value=h))
        for l, h in zip(box.lo, box.hi)
    )


class TestConstruction:
    def test_basic(self):
        box = MBR((0, 1), (2, 3))
        assert box.lo == (0.0, 1.0)
        assert box.hi == (2.0, 3.0)
        assert box.dimension == 2

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MBR((1, 0), (0, 1))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MBR((0,), (1, 2))

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            MBR((), ())

    def test_from_point_is_degenerate(self):
        box = MBR.from_point((3, 4))
        assert box.lo == box.hi == (3.0, 4.0)
        assert box.area() == 0.0

    def test_from_points(self):
        box = MBR.from_points([(0, 5), (2, 1), (1, 3)])
        assert box == MBR((0, 1), (2, 5))

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_union_all(self):
        boxes = [MBR((0, 0), (1, 1)), MBR((2, -1), (3, 0.5))]
        assert MBR.union_all(boxes) == MBR((0, -1), (3, 1))

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.union_all([])


class TestMeasures:
    def test_area_margin_center(self):
        box = MBR((0, 0), (4, 2))
        assert box.area() == 8.0
        assert box.margin() == 6.0
        assert box.center == (2.0, 1.0)
        assert box.side(0) == 4.0
        assert box.side(1) == 2.0

    def test_3d_volume(self):
        box = MBR((0, 0, 0), (2, 3, 4))
        assert box.area() == 24.0
        assert box.margin() == 9.0


class TestPredicates:
    def test_contains_point_boundary(self):
        box = MBR((0, 0), (1, 1))
        assert box.contains_point((0, 0))
        assert box.contains_point((1, 1))
        assert box.contains_point((0.5, 0.5))
        assert not box.contains_point((1.0001, 0.5))

    def test_contains_box(self):
        outer = MBR((0, 0), (10, 10))
        assert outer.contains(MBR((1, 1), (2, 2)))
        assert outer.contains(outer)
        assert not MBR((1, 1), (2, 2)).contains(outer)

    def test_intersects_touching(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((1, 0), (2, 1))  # shares an edge
        assert a.intersects(b)
        assert not a.intersects(MBR((1.1, 0), (2, 1)))


class TestCombination:
    @given(mbrs(), mbrs())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(mbrs(), mbrs())
    def test_union_is_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(mbrs(), mbrs())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-6

    @given(mbrs(), mbrs())
    def test_intersection_consistent_with_predicate(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains(inter)
            assert b.contains(inter)
            assert inter.area() == pytest.approx(
                a.intersection_area(b), abs=1e-6
            )

    @given(mbrs(), mbrs())
    def test_intersection_area_symmetric(self, a, b):
        assert a.intersection_area(b) == pytest.approx(
            b.intersection_area(a)
        )

    @given(mbrs(), st.tuples(coord, coord))
    def test_extended_to_point_contains(self, box, point):
        extended = box.extended_to_point(point)
        assert extended.contains_point(point)
        assert extended.contains(box)


class TestFacesAndCorners:
    def test_face_count_2d(self):
        box = MBR((0, 0), (1, 2))
        faces = list(box.faces())
        assert len(faces) == 4
        # each face is degenerate in exactly one dimension
        for face in faces:
            flat = sum(
                1 for l, h in zip(face.lo, face.hi) if l == h
            )
            assert flat >= 1
            assert box.contains(face)

    def test_corner_count(self):
        assert len(list(MBR((0, 0), (1, 1)).corners())) == 4
        assert len(list(MBR((0, 0, 0), (1, 1, 1)).corners())) == 8

    @given(mbrs())
    def test_corners_inside(self, box):
        for corner in box.corners():
            assert box.contains_point(corner)


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((0.0, 0.0), (1.0, 1.0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != MBR((0, 0), (1, 2))
        assert a != "not a box"

    def test_repr_roundtrippable_info(self):
        assert "lo=(0.0, 0.0)" in repr(MBR((0, 0), (1, 1)))
