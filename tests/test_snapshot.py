"""Snapshot generations: COW isolation, pinning, rollback, concurrency.

Exercises the MVCC side of the live-mutation layer
(``docs/STORAGE.md``): a pinned reader sees exactly the generation it
pinned while a writer commits batches underneath it; superseded pages
park until the last pin that can reach them is released; batches bump
the generation exactly once through the commit seam; aborted batches
roll back bodily.  The concurrent stress test at the bottom is the
acceptance check that a query admitted during a write batch observes a
single consistent generation.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout
from repro.storage.snapshot import Snapshot, SnapshotManager

SMALL = PageLayout(page_size=16 + 4 * 48)  # M = 4


def live_tree(points=(), layout=SMALL):
    tree = RTree(RTreeConfig(layout=layout))
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    tree.enable_live_mutation()
    return tree


def grid(n, dx=0.0, dy=0.0):
    side = int(n ** 0.5) + 1
    return [((i % side) + dx, (i // side) + dy) for i in range(n)]


def leaf_points(view):
    """Materialise (point, oid) pairs reachable from a view's root."""
    if view.root_id is None:
        return set()
    found = set()
    stack = [view.root_id]
    while stack:
        node = view.read_node(stack.pop())
        if node.is_leaf:
            found.update((e.point, e.oid) for e in node.entries)
        else:
            stack.extend(e.child_id for e in node.entries)
    return found


class TestManager:
    def test_pin_release_accounting(self):
        manager = SnapshotManager(lambda pid: None,
                                  Snapshot(0, None, 0, 0))
        first = manager.pin()
        second = manager.pin()
        assert manager.pinned() == 2
        manager.release(first)
        manager.release(second)
        assert manager.pinned() == 0

    def test_unbalanced_release_rejected(self):
        manager = SnapshotManager(lambda pid: None,
                                  Snapshot(0, None, 0, 0))
        snap = manager.pin()
        manager.release(snap)
        with pytest.raises(ValueError, match="without a matching pin"):
            manager.release(snap)

    def test_publish_must_advance_generation(self):
        manager = SnapshotManager(lambda pid: None,
                                  Snapshot(3, None, 0, 0))
        with pytest.raises(ValueError, match="does not advance"):
            manager.publish(Snapshot(3, None, 0, 0))

    def test_superseded_pages_park_until_unpinned(self):
        freed = []
        manager = SnapshotManager(freed.append, Snapshot(0, 0, 1, 1))
        pin = manager.pin()
        manager.publish(Snapshot(1, 5, 1, 1), superseded=[0])
        assert manager.pending_pages() == 1 and freed == []
        manager.release(pin)
        assert freed == [0] and manager.pending_pages() == 0
        assert manager.reclaimed == 1

    def test_unpinned_publish_reclaims_immediately(self):
        freed = []
        manager = SnapshotManager(freed.append, Snapshot(0, 0, 1, 1))
        manager.publish(Snapshot(1, 5, 1, 1), superseded=[0, 3])
        assert sorted(freed) == [0, 3]

    def test_old_pin_blocks_newer_queues_too(self):
        # A pin at generation 0 must keep pages superseded by *both*
        # later commits: its root can still reach the gen-0 pages, and
        # draining is all-or-nothing per queue threshold.
        freed = []
        manager = SnapshotManager(freed.append, Snapshot(0, 0, 1, 1))
        pin = manager.pin()
        manager.publish(Snapshot(1, 5, 1, 1), superseded=[0])
        manager.publish(Snapshot(2, 9, 1, 1), superseded=[5])
        assert freed == [] and manager.pending_pages() == 2
        manager.release(pin)
        assert sorted(freed) == [0, 5]


class TestTreeSnapshots:
    def test_reader_pinned_during_commit_sees_old_generation(self):
        tree = live_tree(grid(100))
        pinned = tree.pin()
        before = leaf_points(tree.view(pinned))
        with tree.batch():
            for oid, point in enumerate(grid(50, dx=100.0), start=100):
                tree.insert(point, oid)
        # The live tree moved on; the pinned view did not.
        assert len(tree) == 150
        assert tree.committed().generation == pinned.generation + 1
        again = leaf_points(tree.view(pinned))
        assert again == before and len(again) == 100
        tree.release(pinned)

    def test_superseded_pages_reclaimed_after_release(self):
        tree = live_tree(grid(120))
        pinned = tree.pin()
        with tree.batch():
            for oid in range(40):
                assert tree.delete(grid(120)[oid], oid)
        parked = tree.snapshots.pending_pages()
        assert parked > 0
        reclaimed_before = tree.snapshots.reclaimed
        tree.release(pinned)
        assert tree.snapshots.pending_pages() == 0
        assert tree.snapshots.reclaimed > reclaimed_before

    def test_explicit_batch_bumps_generation_once(self):
        tree = live_tree()
        start = tree.generation
        with tree.batch():
            for oid, point in enumerate(grid(30)):
                tree.insert(point, oid)
        assert tree.generation == start + 1

    def test_empty_batch_does_not_bump(self):
        tree = live_tree(grid(10))
        start = tree.generation
        with tree.batch():
            pass
        assert tree.generation == start

    def test_failed_delete_does_not_bump(self):
        tree = live_tree(grid(10))
        start = tree.generation
        assert not tree.delete((999.0, 999.0), 999)
        assert tree.generation == start

    def test_implicit_single_ops_bump_each(self):
        tree = live_tree()
        tree.insert((0.0, 0.0), 0)
        tree.insert((1.0, 1.0), 1)
        assert tree.generation == 2

    def test_batch_abort_rolls_back(self):
        points = grid(80)
        tree = live_tree(points)
        committed = tree.committed()
        nodes_before = tree.node_count()
        live_before = len(tree.file.store)
        with pytest.raises(RuntimeError, match="boom"):
            with tree.batch():
                for oid, point in enumerate(grid(40, dx=50.0), start=80):
                    tree.insert(point, oid)
                raise RuntimeError("boom")
        assert len(tree) == 80
        assert tree.committed() == committed
        assert leaf_points(tree.view()) == {
            (p, oid) for oid, p in enumerate(points)
        }
        # Every page the aborted batch allocated was handed back.
        assert tree.node_count() == nodes_before
        assert len(tree.file.store) == live_before

    def test_poisoned_nested_batch_raises_at_commit(self):
        tree = live_tree(grid(20))
        with pytest.raises(RuntimeError, match="poisoned"):
            with tree.batch():
                try:
                    with tree.batch():
                        tree.insert((5.0, 5.0), 777)
                        raise ValueError("inner failure")
                except ValueError:
                    pass  # swallowing does not unpoison the outer batch

    def test_enable_inside_batch_rejected(self):
        tree = live_tree(grid(5))
        with pytest.raises(RuntimeError):
            with tree.batch():
                tree.enable_live_mutation()


class TestConcurrentReaders:
    def test_queries_during_writes_see_single_generation(self):
        """Readers racing a writer observe exactly one committed state.

        Writer commits batches of 25 inserts; each reader repeatedly
        pins, walks every leaf reachable from its pinned root, and
        checks the haul matches the pinned snapshot's count exactly --
        a torn read (some new pages, some old) would show up as a
        count mismatch or an unreadable freed page.
        """
        tree = live_tree(grid(100))
        batches = 12
        stop = threading.Event()
        failures = []

        def writer():
            try:
                for b in range(batches):
                    base = 100 + b * 25
                    with tree.batch():
                        for i in range(25):
                            x = 200.0 + base + i
                            tree.insert((x, x * 0.5), base + i)
            except Exception as exc:  # pragma: no cover
                failures.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader(seed):
            rng = random.Random(seed)
            try:
                while not stop.is_set() or rng.random() < 0.2:
                    snap = tree.pin()
                    try:
                        view = tree.view(snap)
                        seen = leaf_points(view)
                        if len(seen) != snap.count:
                            failures.append(
                                f"gen {snap.generation}: walked "
                                f"{len(seen)} points, snapshot says "
                                f"{snap.count}"
                            )
                            return
                    finally:
                        tree.release(snap)
                    if stop.is_set():
                        return
            except Exception as exc:
                failures.append(f"reader {seed}: {exc!r}")

        threads = [threading.Thread(target=reader, args=(s,))
                   for s in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[:3]
        assert len(tree) == 100 + batches * 25
        assert tree.snapshots.pinned() == 0
        # With no pins left every superseded page drained.
        assert tree.snapshots.pending_pages() == 0

    def test_cpq_on_pinned_views_is_stable_under_writes(self):
        """K-CPQ over two pinned views is repeatable while both trees
        take writes -- same pairs, same distances, same tie order."""
        tree_p = live_tree(grid(90))
        tree_q = live_tree(grid(90, dx=0.3, dy=0.3))
        snap_p, snap_q = tree_p.pin(), tree_q.pin()
        try:
            view_p = tree_p.view(snap_p)
            view_q = tree_q.view(snap_q)
            request = CPQRequest(k=10, algorithm="heap")
            baseline = k_closest_pairs(view_p, view_q, request=request)
            for round_no in range(3):
                with tree_p.batch():
                    for i in range(20):
                        oid = 1000 + round_no * 20 + i
                        tree_p.insert((0.31 + i * 1e-4, 0.29), oid)
                with tree_q.batch():
                    for i in range(20):
                        oid = 2000 + round_no * 20 + i
                        tree_q.insert((0.29, 0.31 + i * 1e-4), oid)
                result = k_closest_pairs(view_p, view_q,
                                         request=request)
                assert [
                    (p.p, p.q, p.distance) for p in result.pairs
                ] == [
                    (p.p, p.q, p.distance) for p in baseline.pairs
                ]
        finally:
            tree_p.release(snap_p)
            tree_q.release(snap_q)
        # Unpinned live queries *do* see the new near-origin points.
        fresh = k_closest_pairs(tree_p, tree_q, request=request)
        assert fresh.pairs[0].distance < baseline.pairs[0].distance
