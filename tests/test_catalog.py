"""The dataset catalog: registration, persistence, the single reopen
path, and service attachment.

A :class:`repro.catalog.Catalog` is the system's only mapping from
names to built indexes; everything here pins the contract the CLI,
service and shard tiers now lean on -- a registered dataset reopens
byte-identically across processes, schema drift is refused loudly, and
the service resolves ``FROM``-clause names lazily under its own lock.
"""

import json
import os
import random

import pytest

from repro.catalog import (
    CATALOG_FILENAME,
    Catalog,
    CatalogError,
    SCHEMA_VERSION,
    UnknownDatasetError,
    meta_path,
    open_tree,
)
from repro.core.api import CPQRequest as CoreRequest, k_closest_pairs
from repro.service import CPQRequest, QueryService


def _points(n, seed=5):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for __ in range(n)]


@pytest.fixture
def catalog(tmp_path):
    return Catalog(str(tmp_path))


class TestRegistration:
    def test_register_and_open_round_trip(self, catalog):
        points = _points(200)
        entry = catalog.register_dataset("parks", points, kind="str")
        assert entry.count == 200
        assert entry.default_kind == "str"
        tree = catalog.open_dataset("parks")
        try:
            assert len(tree) == 200
        finally:
            tree.file.store.close()

    def test_auto_kind_records_planner_decision(self, catalog):
        entry = catalog.register_dataset("auto", _points(350))
        chosen = entry.default_kind
        assert chosen in ("str", "grid", "dynamic")
        decision = entry.indexes[chosen].build["decision"]
        assert decision["kind"] == chosen
        assert decision["reason"]

    def test_extra_kinds_build_alongside(self, catalog):
        entry = catalog.register_dataset(
            "multi", _points(150), kind="str",
            extra_kinds=("grid", "dynamic"),
        )
        assert entry.kinds() == ["dynamic", "grid", "str"]
        for kind in entry.kinds():
            tree = catalog.open_dataset("multi", kind)
            try:
                assert len(tree) == 150
            finally:
                tree.file.store.close()

    def test_duplicate_name_rejected_without_overwrite(self, catalog):
        catalog.register_dataset("dup", _points(20), kind="str")
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register_dataset("dup", _points(20), kind="str")
        catalog.register_dataset(
            "dup", _points(30), kind="str", overwrite=True
        )
        assert catalog.dataset("dup").count == 30

    @pytest.mark.parametrize("bad", ["", "a,b", "a" + os.sep + "b"])
    def test_invalid_names_rejected(self, catalog, bad):
        with pytest.raises(CatalogError, match="name"):
            catalog.register_dataset(bad, _points(5), kind="str")

    def test_empty_dataset_rejected(self, catalog):
        with pytest.raises(CatalogError, match="no points"):
            catalog.register_dataset("void", [], kind="str")

    def test_unknown_kind_rejected(self, catalog):
        with pytest.raises(CatalogError, match="kind"):
            catalog.register_dataset("x", _points(5), kind="btree")


class TestPersistence:
    def test_survives_reinstantiation(self, catalog, tmp_path):
        points = _points(120, seed=9)
        catalog.register_dataset("stable", points, kind="str")
        reloaded = Catalog(str(tmp_path))
        assert "stable" in reloaded
        tree = reloaded.open_dataset("stable")
        try:
            result = k_closest_pairs(
                tree, tree, request=CoreRequest(k=3, algorithm="self")
            )
            assert len(result.pairs) == 3
        finally:
            tree.file.store.close()

    def test_paths_stored_relative(self, catalog, tmp_path):
        catalog.register_dataset("rel", _points(40), kind="str")
        with open(tmp_path / CATALOG_FILENAME) as handle:
            obj = json.load(handle)
        path = obj["datasets"]["rel"]["indexes"]["str"]["path"]
        assert not os.path.isabs(path)

    def test_schema_version_mismatch_refused(self, catalog, tmp_path):
        catalog.register_dataset("v", _points(10), kind="str")
        with open(tmp_path / CATALOG_FILENAME) as handle:
            obj = json.load(handle)
        obj["schema_version"] = SCHEMA_VERSION + 1
        with open(tmp_path / CATALOG_FILENAME, "w") as handle:
            json.dump(obj, handle)
        with pytest.raises(CatalogError, match="schema version"):
            Catalog(str(tmp_path))

    def test_corrupt_catalog_file_refused(self, tmp_path):
        (tmp_path / CATALOG_FILENAME).write_text("{not json")
        with pytest.raises(CatalogError, match="unreadable"):
            Catalog(str(tmp_path))

    def test_remove_dataset(self, catalog, tmp_path):
        catalog.register_dataset("gone", _points(15), kind="str")
        pages = catalog.dataset("gone").index().path
        catalog.remove_dataset("gone", delete_files=True)
        assert "gone" not in catalog
        assert not os.path.exists(pages)
        assert not os.path.exists(meta_path(pages))
        assert "gone" not in Catalog(str(tmp_path))


class TestLookups:
    def test_unknown_dataset_lists_known(self, catalog):
        catalog.register_dataset("known", _points(10), kind="str")
        with pytest.raises(UnknownDatasetError) as info:
            catalog.open_dataset("nope")
        assert "known" in str(info.value)
        # KeyError compatibility for callers that only know dicts.
        with pytest.raises(KeyError):
            catalog.dataset("nope")

    def test_unknown_kind_on_known_dataset(self, catalog):
        catalog.register_dataset("k", _points(10), kind="str")
        with pytest.raises(UnknownDatasetError):
            catalog.open_dataset("k", "grid")

    def test_missing_page_file_detected(self, catalog):
        catalog.register_dataset("lost", _points(10), kind="str")
        os.remove(catalog.dataset("lost").index().path)
        with pytest.raises(CatalogError, match="missing page file"):
            catalog.open_dataset("lost")

    def test_tree_spec_reopens_same_snapshot(self, catalog):
        points = _points(260, seed=3)
        catalog.register_dataset("spec", points, kind="str")
        spec = catalog.tree_spec("spec")
        via_spec = spec.open()
        via_open = catalog.open_dataset("spec")
        try:
            assert via_spec.generation == via_open.generation
            request = CoreRequest(k=5, algorithm="heap")
            assert (
                k_closest_pairs(via_spec, via_spec, request=request).pairs
                == k_closest_pairs(via_open, via_open,
                                   request=request).pairs
            )
        finally:
            via_spec.file.store.close()
            via_open.file.store.close()


class TestAdoptPages:
    def test_adopt_existing_pages(self, catalog, tmp_path):
        catalog.register_dataset("orig", _points(80), kind="str")
        pages = catalog.dataset("orig").index().path
        other = Catalog(str(tmp_path / "other"))
        entry = other.adopt_pages("adopted", pages, kind="str")
        assert entry.count == 80
        tree = other.open_dataset("adopted")
        try:
            assert len(tree) == 80
        finally:
            tree.file.store.close()
        assert "adopted" in Catalog(str(tmp_path / "other"))

    def test_adopt_persist_false_writes_nothing(self, catalog, tmp_path):
        catalog.register_dataset("mem", _points(30), kind="str")
        pages = catalog.dataset("mem").index().path
        scratch_dir = tmp_path / "scratch"
        scratch_dir.mkdir()
        scratch = Catalog(str(scratch_dir))
        scratch.adopt_pages("tmp", pages, kind="str", persist=False)
        assert "tmp" in scratch
        assert not os.path.exists(scratch.path)

    def test_adopt_missing_file_rejected(self, catalog):
        with pytest.raises(CatalogError, match="no page file"):
            catalog.adopt_pages("ghost", "/nonexistent.pages")


class TestOpenTree:
    def test_sidecar_metadata_used(self, catalog):
        catalog.register_dataset("side", _points(60), kind="str")
        path = catalog.dataset("side").index().path
        tree = open_tree(path)
        try:
            assert len(tree) == 60
        finally:
            tree.file.store.close()

    def test_missing_sidecar_reported(self, catalog, tmp_path):
        catalog.register_dataset("nos", _points(10), kind="str")
        path = catalog.dataset("nos").index().path
        os.remove(meta_path(path))
        with pytest.raises(CatalogError, match="sidecar"):
            open_tree(path)


class TestServiceAttachment:
    def test_from_names_resolve_lazily(self, catalog):
        catalog.register_dataset("parks", _points(200, seed=1),
                                 kind="str")
        catalog.register_dataset("schools", _points(180, seed=2),
                                 kind="str")
        service = QueryService(workers=1, cache_size=0)
        service.attach_catalog(catalog)
        try:
            response = service.execute_sql(
                "SELECT CLOSEST PAIRS K 4 FROM parks, schools"
            )
            assert response.ok
            assert len(response.result.pairs) == 4
            direct = service.submit(
                CPQRequest(pair="parks,schools", k=4, use_cache=False)
            ).result()
            assert direct.result.pairs == response.result.pairs
        finally:
            service.close()

    def test_unknown_from_name_raises_synchronously(self, catalog):
        service = QueryService(workers=1, cache_size=0)
        service.attach_catalog(catalog)
        try:
            with pytest.raises(UnknownDatasetError):
                service.execute_sql("SELECT CLOSEST PAIRS FROM missing")
        finally:
            service.close()

    def test_self_join_single_name(self, catalog):
        catalog.register_dataset("solo", _points(150, seed=4),
                                 kind="str")
        service = QueryService(workers=1, cache_size=0)
        service.attach_catalog(catalog)
        try:
            response = service.execute_sql(
                "SELECT CLOSEST PAIRS K 2 FROM solo USING self"
            )
            assert response.ok
            assert len(response.result.pairs) == 2
        finally:
            service.close()
