"""Tie-break criteria (T1-T5) tests."""

import pytest

from repro.core.ties import (
    DEFAULT_TIE_BREAK,
    TIE_CRITERIA,
    CandidateGeometry,
    TieBreak,
)
from repro.geometry.mbr import MBR


def geometry(mbr_p, mbr_q, root_area_p=1.0, root_area_q=1.0):
    return CandidateGeometry(
        mbr_p=mbr_p,
        mbr_q=mbr_q,
        root_area_p=root_area_p,
        root_area_q=root_area_q,
    )


class TestCriteria:
    def test_registry_complete(self):
        assert sorted(TIE_CRITERIA) == ["T1", "T2", "T3", "T4", "T5"]

    def test_t1_prefers_largest_root_relative_mbr(self):
        t1 = TIE_CRITERIA["T1"]
        big = geometry(MBR((0, 0), (4, 4)), MBR((0, 0), (1, 1)))
        small = geometry(MBR((0, 0), (1, 1)), MBR((0, 0), (1, 1)))
        assert t1.key(big) < t1.key(small)

    def test_t1_normalises_by_root_area(self):
        t1 = TIE_CRITERIA["T1"]
        # Same absolute areas, but the second pair's roots are huge, so
        # its relative areas are tiny.
        a = geometry(MBR((0, 0), (2, 2)), MBR((0, 0), (1, 1)),
                     root_area_p=4.0, root_area_q=4.0)
        b = geometry(MBR((0, 0), (2, 2)), MBR((0, 0), (1, 1)),
                     root_area_p=400.0, root_area_q=400.0)
        assert t1.key(a) < t1.key(b)

    def test_t2_prefers_smallest_minmaxdist(self):
        t2 = TIE_CRITERIA["T2"]
        near = geometry(MBR((0, 0), (1, 1)), MBR((1.5, 0), (2.5, 1)))
        far = geometry(MBR((0, 0), (1, 1)), MBR((9, 0), (10, 1)))
        assert t2.key(near) < t2.key(far)

    def test_t2_uses_precomputed_minmax(self):
        t2 = TIE_CRITERIA["T2"]
        g = geometry(MBR((0, 0), (1, 1)), MBR((5, 5), (6, 6)))
        g.minmax = 42.0
        assert t2.key(g) == 42.0

    def test_t3_prefers_largest_area_sum(self):
        t3 = TIE_CRITERIA["T3"]
        large = geometry(MBR((0, 0), (3, 3)), MBR((0, 0), (2, 2)))
        small = geometry(MBR((0, 0), (1, 1)), MBR((0, 0), (1, 1)))
        assert t3.key(large) < t3.key(small)

    def test_t4_prefers_least_dead_space(self):
        t4 = TIE_CRITERIA["T4"]
        # Adjacent boxes embed tightly; distant boxes leave dead space.
        tight = geometry(MBR((0, 0), (1, 1)), MBR((1, 0), (2, 1)))
        loose = geometry(MBR((0, 0), (1, 1)), MBR((9, 0), (10, 1)))
        assert t4.key(tight) < t4.key(loose)

    def test_t5_prefers_largest_intersection(self):
        t5 = TIE_CRITERIA["T5"]
        overlapping = geometry(MBR((0, 0), (2, 2)), MBR((1, 1), (3, 3)))
        disjoint = geometry(MBR((0, 0), (1, 1)), MBR((5, 5), (6, 6)))
        assert t5.key(overlapping) < t5.key(disjoint)


class TestTieBreak:
    def test_parse_name(self):
        tb = TieBreak.parse("t2")
        assert [c.name for c in tb.criteria] == ["T2"]

    def test_parse_sequence(self):
        tb = TieBreak.parse(["T1", "T4"])
        assert [c.name for c in tb.criteria] == ["T1", "T4"]

    def test_parse_criterion_and_tiebreak(self):
        tb = TieBreak.parse(TIE_CRITERIA["T3"])
        assert TieBreak.parse(tb) is tb
        assert [c.name for c in tb.criteria] == ["T3"]

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError):
            TieBreak.parse("T9")

    def test_chain_resolves_at_second_stage(self):
        # Two pairs tie on T3 (equal area sums) but differ on T2.
        tb = TieBreak.parse(["T3", "T2"])
        near = geometry(MBR((0, 0), (1, 1)), MBR((1.5, 0), (2.5, 1)))
        far = geometry(MBR((0, 0), (1, 1)), MBR((9, 0), (10, 1)))
        key_near = tb.key(near)
        key_far = tb.key(far)
        assert key_near[0] == key_far[0]
        assert key_near < key_far

    def test_default_is_t1(self):
        assert [c.name for c in DEFAULT_TIE_BREAK.criteria] == ["T1"]
