"""End-to-end correctness of every CPQ algorithm against brute force.

The paper's result definition (Section 2.1) fixes the distance
*multiset* of the K closest pairs; ties make the pair identities
ambiguous, so the tests compare distances.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPQRequest, k_closest_pairs
from repro.core.api import CORE_ALGORITHMS as ALGORITHMS, closest_pair
from repro.core.height import FIX_AT_LEAVES, FIX_AT_ROOT
from repro.geometry.minkowski import CHEBYSHEV, MANHATTAN
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout

from tests.conftest import brute_force_pairs

SMALL = PageLayout(page_size=16 + 4 * 48)  # M = 4: deep trees, tiny data

coord = st.floats(min_value=0, max_value=100, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=40)


def assert_distances(result, expected):
    got = result.distances()
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert a == pytest.approx(b, abs=1e-9)
    assert got == sorted(got)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @given(point_lists, point_lists, st.integers(1, 8))
    @settings(max_examples=20)
    def test_small_random_sets(self, algorithm, pts_p, pts_q, k):
        k = min(k, len(pts_p) * len(pts_q))
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=k, algorithm=algorithm),
        )
        assert_distances(
            result, brute_force_pairs(pts_p, pts_q, k)
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_deep_trees(self, algorithm):
        rng = random.Random(31)
        pts_p = [(rng.random(), rng.random()) for __ in range(250)]
        pts_q = [(rng.uniform(0.5, 1.5), rng.random()) for __ in range(250)]
        config = RTreeConfig(layout=SMALL)
        tree_p = bulk_load(pts_p, config=config)
        tree_q = bulk_load(pts_q, config=config)
        for k in (1, 7, 40):
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(k=k, algorithm=algorithm),
            )
            assert_distances(result, brute_force_pairs(pts_p, pts_q, k))

    @pytest.mark.parametrize("algorithm", ["exh", "sim", "std", "heap"])
    @pytest.mark.parametrize("strategy", [FIX_AT_ROOT, FIX_AT_LEAVES])
    def test_different_heights(self, algorithm, strategy):
        rng = random.Random(77)
        pts_p = [(rng.random(), rng.random()) for __ in range(30)]
        pts_q = [(rng.uniform(0.8, 1.8), rng.random()) for __ in range(900)]
        config = RTreeConfig(layout=SMALL)
        tree_p = bulk_load(pts_p, config=config)
        tree_q = bulk_load(pts_q, config=config)
        assert tree_p.height != tree_q.height
        for k in (1, 12):
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=k,
                    algorithm=algorithm,
                    height_strategy=strategy,
                ),
            )
            assert_distances(result, brute_force_pairs(pts_p, pts_q, k))

    @pytest.mark.parametrize("algorithm", ["std", "heap"])
    @pytest.mark.parametrize("criterion", ["T1", "T2", "T3", "T4", "T5"])
    def test_every_tie_criterion_is_correct(self, algorithm, criterion):
        rng = random.Random(5)
        pts_p = [(rng.random(), rng.random()) for __ in range(300)]
        pts_q = [(rng.random(), rng.random()) for __ in range(300)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=10, algorithm=algorithm, tie_break=criterion),
        )
        assert_distances(result, brute_force_pairs(pts_p, pts_q, 10))

    @pytest.mark.parametrize("metric", [MANHATTAN, CHEBYSHEV])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_other_minkowski_metrics(self, metric, algorithm):
        rng = random.Random(13)
        pts_p = [(rng.random(), rng.random()) for __ in range(60)]
        pts_q = [(rng.uniform(0.5, 1.5), rng.random()) for __ in range(60)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=5, algorithm=algorithm, metric=metric),
        )
        brute = sorted(
            metric.distance(p, q) for p in pts_p for q in pts_q
        )[:5]
        assert_distances(result, brute)


class TestMaxMaxPruningModes:
    @pytest.mark.parametrize("algorithm", ["sim", "std", "heap"])
    @pytest.mark.parametrize("pruning", [True, False])
    def test_both_modes_correct(self, algorithm, pruning):
        rng = random.Random(55)
        pts_p = [(rng.random(), rng.random()) for __ in range(300)]
        pts_q = [(rng.random(), rng.random()) for __ in range(300)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=25,
                algorithm=algorithm,
                maxmax_pruning=pruning,
            ),
        )
        assert_distances(result, brute_force_pairs(pts_p, pts_q, 25))

    def test_pruning_only_removes_work(self):
        rng = random.Random(56)
        pts_p = [(rng.random(), rng.random()) for __ in range(600)]
        pts_q = [(rng.uniform(0.5, 1.5), rng.random()) for __ in range(600)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        with_bound = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=50, algorithm="heap", maxmax_pruning=True),
        )
        without = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=50, algorithm="heap", maxmax_pruning=False),
        )
        assert with_bound.distances() == pytest.approx(without.distances())
        assert (
            with_bound.stats.disk_accesses <= without.stats.disk_accesses
        )


class TestTiesAndDegeneracy:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_grid_with_massive_ties(self, algorithm):
        # Identical grids: every point of P coincides with one of Q.
        grid = [(float(i), float(j)) for i in range(6) for j in range(6)]
        tree_p = bulk_load(grid)
        tree_q = bulk_load(grid)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=36, algorithm=algorithm),
        )
        # The 36 closest are the zero-distance coincident pairs.
        assert result.distances() == [0.0] * 36

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_duplicate_points(self, algorithm):
        pts_p = [(0.0, 0.0)] * 5 + [(2.0, 0.0)]
        pts_q = [(1.0, 0.0)] * 3
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=4, algorithm=algorithm),
        )
        assert_distances(result, [1.0, 1.0, 1.0, 1.0])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_singletons(self, algorithm):
        tree_p = bulk_load([(0.0, 0.0)])
        tree_q = bulk_load([(3.0, 4.0)])
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=1, algorithm=algorithm),
        )
        assert result.pairs[0].distance == pytest.approx(5.0)
        assert result.pairs[0].p == (0.0, 0.0)
        assert result.pairs[0].q == (3.0, 4.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_k_exceeding_pair_count(self, algorithm):
        tree_p = bulk_load([(0.0, 0.0), (1.0, 0.0)])
        tree_q = bulk_load([(0.0, 1.0)])
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=50, algorithm=algorithm),
        )
        assert len(result.pairs) == 2

    def test_empty_tree(self):
        empty = RTree()
        other = bulk_load([(0.0, 0.0)])
        for algorithm in ALGORITHMS:
            result = k_closest_pairs(
                empty,
                other,
                request=CPQRequest(k=1, algorithm=algorithm),
            )
            assert result.pairs == []
        assert closest_pair(empty, other) is None

    def test_result_pairs_are_real_points(self):
        rng = random.Random(41)
        pts_p = [(rng.random(), rng.random()) for __ in range(100)]
        pts_q = [(rng.random(), rng.random()) for __ in range(100)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=5, algorithm="heap"),
        )
        set_p = set(pts_p)
        set_q = set(pts_q)
        for pair in result.pairs:
            assert pair.p in set_p
            assert pair.q in set_q
            assert pair.distance == pytest.approx(
                math.dist(pair.p, pair.q)
            )
            assert pts_p[pair.p_oid] == pair.p
            assert pts_q[pair.q_oid] == pair.q


class TestAlgorithmsAgree:
    @given(point_lists, point_lists, st.integers(1, 6))
    @settings(max_examples=15)
    def test_all_five_return_identical_distances(self, pts_p, pts_q, k):
        k = min(k, len(pts_p) * len(pts_q))
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        reference = None
        for algorithm in ALGORITHMS:
            got = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(k=k, algorithm=algorithm),
            ).distances()
            if reference is None:
                reference = got
            else:
                assert got == pytest.approx(reference, abs=1e-9)
