"""Persistence: trees over a real file survive reopen and stay queryable."""

import math
import random

from repro.query import nearest_neighbors, range_query
from repro.geometry.mbr import MBR
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.rtree.validate import validate
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore


def test_tree_roundtrip_through_file(tmp_path):
    path = str(tmp_path / "tree.pages")
    rng = random.Random(21)
    points = [(rng.random(), rng.random()) for __ in range(400)]

    store = FilePageStore(path, 1024)
    tree = bulk_load(points, file=PagedFile(store))
    meta = tree.metadata()
    store.flush()
    store.close()

    reopened_store = FilePageStore(path, 1024)
    reopened = RTree.from_storage(PagedFile(reopened_store), meta)
    assert len(reopened) == len(points)
    validate(reopened)

    window = MBR((0.25, 0.25), (0.75, 0.75))
    got = sorted(e.oid for e in range_query(reopened, window))
    want = sorted(
        i for i, p in enumerate(points) if window.contains_point(p)
    )
    assert got == want

    found = nearest_neighbors(reopened, (0.5, 0.5), k=3)
    brute = sorted(math.dist((0.5, 0.5), p) for p in points)[:3]
    assert [round(d, 12) for d, __ in found] == [
        round(d, 12) for d in brute
    ]
    reopened_store.close()


def test_metadata_fields():
    tree = bulk_load([(0.0, 0.0), (1.0, 1.0)])
    meta = tree.metadata()
    assert meta["count"] == 2
    assert meta["height"] == tree.height
    assert meta["page_size"] == 1024
    assert meta["dimension"] == 2
    assert meta["variant"] == "rstar"


def test_dynamic_tree_on_file_store(tmp_path):
    path = str(tmp_path / "dyn.pages")
    tree = RTree(file=PagedFile(FilePageStore(path, 1024)))
    rng = random.Random(30)
    points = [(rng.random(), rng.random()) for __ in range(120)]
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    for oid in range(0, 120, 3):
        assert tree.delete(points[oid], oid)
    validate(tree)
