"""Direct property tests of the node split algorithms."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.rtree.entries import LeafEntry
from repro.rtree.splits import linear_split, quadratic_split, rstar_split

SPLITS = {
    "quadratic": quadratic_split,
    "linear": linear_split,
    "rstar": rstar_split,
}

coord = st.floats(min_value=0, max_value=100, allow_nan=False)


@st.composite
def entry_batches(draw):
    min_entries = draw(st.integers(min_value=1, max_value=4))
    count = draw(
        st.integers(min_value=2 * min_entries, max_value=24)
    )
    entries = [
        LeafEntry((draw(coord), draw(coord)), i) for i in range(count)
    ]
    return entries, min_entries


class TestSplitContracts:
    @pytest.mark.parametrize("name", sorted(SPLITS))
    @given(batch=entry_batches())
    @settings(max_examples=25)
    def test_partition_is_complete_and_disjoint(self, name, batch):
        entries, min_entries = batch
        group_a, group_b = SPLITS[name](entries, min_entries)
        combined = sorted(e.oid for e in group_a + group_b)
        assert combined == sorted(e.oid for e in entries)
        assert not ({e.oid for e in group_a} & {e.oid for e in group_b})

    @pytest.mark.parametrize("name", sorted(SPLITS))
    @given(batch=entry_batches())
    @settings(max_examples=25)
    def test_minimum_occupancy_respected(self, name, batch):
        entries, min_entries = batch
        group_a, group_b = SPLITS[name](entries, min_entries)
        assert len(group_a) >= min_entries
        assert len(group_b) >= min_entries

    @pytest.mark.parametrize("name", sorted(SPLITS))
    def test_too_few_entries_rejected(self, name):
        entries = [LeafEntry((0.0, 0.0), 0), LeafEntry((1.0, 1.0), 1)]
        with pytest.raises(ValueError):
            SPLITS[name](entries, min_entries=2)

    @pytest.mark.parametrize("name", sorted(SPLITS))
    def test_identical_entries_split_legally(self, name):
        entries = [LeafEntry((5.0, 5.0), i) for i in range(10)]
        group_a, group_b = SPLITS[name](entries, 3)
        assert len(group_a) >= 3
        assert len(group_b) >= 3


class TestSplitQuality:
    def _clustered_entries(self):
        rng = random.Random(0)
        left = [
            LeafEntry((rng.random(), rng.random()), i)
            for i in range(10)
        ]
        right = [
            LeafEntry((rng.random() + 10.0, rng.random()), 100 + i)
            for i in range(10)
        ]
        return left + right

    @pytest.mark.parametrize("name", sorted(SPLITS))
    def test_obvious_clusters_are_separated(self, name):
        entries = self._clustered_entries()
        group_a, group_b = SPLITS[name](entries, 4)
        sides = [
            {("L" if e.oid < 100 else "R") for e in group}
            for group in (group_a, group_b)
        ]
        # every split algorithm must separate two far-apart clusters
        assert sides == [{"L"}, {"R"}] or sides == [{"R"}, {"L"}]

    def test_rstar_minimises_overlap_against_quadratic(self):
        # On an overlap-prone configuration the R* split's group
        # overlap must not exceed the quadratic split's.
        rng = random.Random(4)
        entries = [
            LeafEntry((rng.gauss(0, 1), rng.gauss(0, 1)), i)
            for i in range(20)
        ]

        def overlap(groups):
            mbrs = [
                MBR.from_points([e.point for e in group])
                for group in groups
            ]
            return mbrs[0].intersection_area(mbrs[1])

        rstar = overlap(rstar_split(entries, 7))
        quad = overlap(quadratic_split(entries, 7))
        assert rstar <= quad + 1e-12
