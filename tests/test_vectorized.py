"""The vectorised metrics must agree exactly with the scalar ones."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.metrics import maxdist, mindist, minmaxdist
from repro.geometry.minkowski import (
    CHEBYSHEV,
    EUCLIDEAN,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.geometry.vectorized import (
    pairwise_maxdist,
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
    point_rect_mindist,
)

coord = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)
metrics = st.sampled_from(
    [EUCLIDEAN, MANHATTAN, CHEBYSHEV, MinkowskiMetric(3.0)]
)


@st.composite
def rect_arrays(draw, max_rects=5):
    n = draw(st.integers(min_value=1, max_value=max_rects))
    los, his = [], []
    for __ in range(n):
        a = (draw(coord), draw(coord))
        b = (draw(coord), draw(coord))
        los.append([min(a[0], b[0]), min(a[1], b[1])])
        his.append([max(a[0], b[0]), max(a[1], b[1])])
    return np.array(los), np.array(his)


def as_mbrs(lo, hi):
    return [MBR(l, h) for l, h in zip(lo, hi)]


@given(rect_arrays(), rect_arrays(), metrics)
def test_pairwise_mindist_matches_scalar(rects_a, rects_b, metric):
    lo_a, hi_a = rects_a
    lo_b, hi_b = rects_b
    matrix = pairwise_mindist(lo_a, hi_a, lo_b, hi_b, metric)
    for i, a in enumerate(as_mbrs(lo_a, hi_a)):
        for j, b in enumerate(as_mbrs(lo_b, hi_b)):
            assert matrix[i, j] == pytest.approx(
                mindist(a, b, metric), abs=1e-9
            )


@given(rect_arrays(), rect_arrays(), metrics)
def test_pairwise_maxdist_matches_scalar(rects_a, rects_b, metric):
    lo_a, hi_a = rects_a
    lo_b, hi_b = rects_b
    matrix = pairwise_maxdist(lo_a, hi_a, lo_b, hi_b, metric)
    for i, a in enumerate(as_mbrs(lo_a, hi_a)):
        for j, b in enumerate(as_mbrs(lo_b, hi_b)):
            assert matrix[i, j] == pytest.approx(
                maxdist(a, b, metric), abs=1e-9
            )


@given(rect_arrays(max_rects=3), rect_arrays(max_rects=3), metrics)
def test_pairwise_minmaxdist_matches_scalar(rects_a, rects_b, metric):
    lo_a, hi_a = rects_a
    lo_b, hi_b = rects_b
    matrix = pairwise_minmaxdist(lo_a, hi_a, lo_b, hi_b, metric)
    for i, a in enumerate(as_mbrs(lo_a, hi_a)):
        for j, b in enumerate(as_mbrs(lo_b, hi_b)):
            assert matrix[i, j] == pytest.approx(
                minmaxdist(a, b, metric), abs=1e-9
            )


@given(
    st.lists(st.tuples(coord, coord), min_size=1, max_size=6),
    st.lists(st.tuples(coord, coord), min_size=1, max_size=6),
    metrics,
)
def test_pairwise_point_distances(points_a, points_b, metric):
    matrix = pairwise_point_distances(
        np.array(points_a), np.array(points_b), metric
    )
    assert matrix.shape == (len(points_a), len(points_b))
    for i, a in enumerate(points_a):
        for j, b in enumerate(points_b):
            assert matrix[i, j] == pytest.approx(
                metric.distance(a, b), abs=1e-9
            )


@given(
    st.lists(st.tuples(coord, coord), min_size=1, max_size=5),
    rect_arrays(),
    metrics,
)
def test_point_rect_mindist(points, rects, metric):
    lo, hi = rects
    matrix = point_rect_mindist(np.array(points), lo, hi, metric)
    from repro.geometry.metrics import point_mbr_mindist

    for i, p in enumerate(points):
        for j, box in enumerate(as_mbrs(lo, hi)):
            assert matrix[i, j] == pytest.approx(
                point_mbr_mindist(p, box, metric), abs=1e-9
            )


def test_shapes():
    lo_a = np.zeros((3, 2))
    hi_a = np.ones((3, 2))
    lo_b = np.zeros((4, 2))
    hi_b = np.ones((4, 2))
    assert pairwise_mindist(lo_a, hi_a, lo_b, hi_b).shape == (3, 4)
    assert pairwise_maxdist(lo_a, hi_a, lo_b, hi_b).shape == (3, 4)
    assert pairwise_minmaxdist(lo_a, hi_a, lo_b, hi_b).shape == (3, 4)
