"""RangeSpec/ColorSpec canonicalisation, capability gating, wire v2.

The constraint specs are *identity* objects: two semantically equal
constraints must compare, hash, and cache-key equal, or the service's
result cache silently forks per spelling.  The regression pinned here:
a query window given with reversed corners used to produce a different
cache key than the same window given lo-first.
"""

import pytest

from repro.core.api import (
    ALGORITHM_REGISTRY,
    COLOR_ALGORITHMS,
    RANGE_ALGORITHMS,
    CPQRequest,
)
from repro.core.constraints import ColorSpec, RangeSpec
from repro.errors import UnsupportedCapabilityError


class TestRangeSpec:
    def test_corners_sorted_per_dimension(self):
        spec = RangeSpec((4.0, 1.0), (0.0, 3.0))
        assert spec.lo == (0.0, 1.0)
        assert spec.hi == (4.0, 3.0)

    def test_reversed_corners_equal(self):
        assert RangeSpec((4, 4), (0, 0)) == RangeSpec((0, 0), (4, 4))
        assert hash(RangeSpec((4, 4), (0, 0))) == hash(
            RangeSpec((0, 0), (4, 4))
        )

    def test_negative_zero_normalised(self):
        assert RangeSpec((-0.0, 0.0), (1, 1)) == RangeSpec(
            (0.0, 0.0), (1.0, 1.0)
        )

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            RangeSpec((0.0,), (1.0, 1.0))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RangeSpec((0, 0), (1, 1), mode="sideways")

    def test_mode_controls_constrained_sides(self):
        assert RangeSpec((0, 0), (1, 1), mode="both").constrains_p
        assert RangeSpec((0, 0), (1, 1), mode="both").constrains_q
        assert RangeSpec((0, 0), (1, 1), mode="p").constrains_p
        assert not RangeSpec((0, 0), (1, 1), mode="p").constrains_q
        assert not RangeSpec((0, 0), (1, 1), mode="q").constrains_p

    def test_contains_point_boundary_inclusive(self):
        spec = RangeSpec((0, 0), (1, 1))
        assert spec.contains_point((0.0, 1.0))
        assert spec.contains_point((0.5, 0.5))
        assert not spec.contains_point((1.0000001, 0.5))

    def test_containment_requires_same_mode(self):
        outer = RangeSpec((0, 0), (10, 10))
        inner = RangeSpec((2, 2), (5, 5))
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert not outer.contains(
            RangeSpec((2, 2), (5, 5), mode="p")
        )

    def test_canonical_is_primitive(self):
        lo, hi, mode = RangeSpec((1, 0), (0, 1)).canonical()
        assert lo == (0.0, 0.0) and hi == (1.0, 1.0) and mode == "both"


class TestColorSpec:
    def test_residues_sorted_and_deduped(self):
        spec = ColorSpec(modulus=5, colors_p=(3, 1, 3), distinct=False)
        assert spec.colors_p == (1, 3)

    def test_out_of_range_residue_rejected(self):
        with pytest.raises(ValueError, match="lie in"):
            ColorSpec(modulus=3, colors_p=(3,))

    def test_empty_residues_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ColorSpec(modulus=3, colors_p=())

    def test_distinct_needs_two_categories(self):
        with pytest.raises(ValueError, match="at least 2"):
            ColorSpec(modulus=1, distinct=True)

    def test_admits_pair(self):
        spec = ColorSpec(modulus=2, distinct=True)
        assert spec.admits_pair(0, 1)
        assert not spec.admits_pair(2, 4)  # same color 0
        filtered = ColorSpec(modulus=4, colors_p=(1,), distinct=False)
        assert filtered.admits_pair(1, 0)
        assert not filtered.admits_pair(2, 0)


class TestCacheKeyCanonicalisation:
    def test_reversed_corner_window_hits_cache(self):
        # Regression: the same rectangle spelled corner-reversed must
        # produce the same cache key, or the result cache misses.
        a = CPQRequest(k=5, range=((0.8, 0.9), (0.1, 0.2)))
        b = CPQRequest(k=5, range=((0.1, 0.2), (0.8, 0.9)))
        assert a.cache_key() == b.cache_key()

    def test_color_spelling_hits_cache(self):
        a = CPQRequest(
            k=5, colors={"modulus": 4, "colors_p": (3, 1, 1),
                         "distinct": False},
        )
        b = CPQRequest(
            k=5, colors={"modulus": 4, "colors_p": (1, 3),
                         "distinct": False},
        )
        assert a.cache_key() == b.cache_key()

    def test_constraints_are_result_identity(self):
        base = CPQRequest(k=5)
        ranged = CPQRequest(k=5, range=((0, 0), (1, 1)))
        colored = CPQRequest(k=5, colors=2)
        assert ranged.cache_key() != base.cache_key()
        assert colored.cache_key() != base.cache_key()
        assert ranged.cache_key() != colored.cache_key()

    def test_key_remains_hashable(self):
        key = CPQRequest(
            k=3, range=((0, 0), (1, 1)), colors=2
        ).cache_key()
        assert hash(key) is not None


class TestCapabilityGating:
    def test_incapable_algorithm_rejected_for_range(self):
        with pytest.raises(UnsupportedCapabilityError) as info:
            CPQRequest(algorithm="incremental", range=((0, 0), (1, 1)))
        error = info.value
        assert error.algorithm == "incremental"
        assert error.capability == "range"
        assert error.capable == RANGE_ALGORITHMS
        assert "incremental" in str(error)
        assert "heap" in str(error)

    def test_incapable_algorithm_rejected_for_colors(self):
        with pytest.raises(UnsupportedCapabilityError) as info:
            CPQRequest(algorithm="multiway", colors=2)
        assert info.value.capability == "colors"
        assert info.value.capable == COLOR_ALGORITHMS

    def test_error_is_a_value_error(self):
        # Callers that only know ValueError keep working.
        with pytest.raises(ValueError):
            CPQRequest(algorithm="self", range=((0, 0), (1, 1)))

    def test_capable_lists_derive_from_registry(self):
        assert RANGE_ALGORITHMS == tuple(
            name for name, spec in ALGORITHM_REGISTRY.items()
            if spec.supports_range
        )
        assert COLOR_ALGORITHMS == tuple(
            name for name, spec in ALGORITHM_REGISTRY.items()
            if spec.supports_colors
        )

    def test_request_normalises_shorthand(self):
        request = CPQRequest(range=((0, 1), (1, 0)), colors=3)
        assert isinstance(request.range, RangeSpec)
        assert isinstance(request.colors, ColorSpec)
        assert request.colors.modulus == 3


class TestWireV2:
    def test_constraints_round_trip(self):
        from repro.net import wire
        from repro.service import CPQRequest as ServiceCPQ

        request = ServiceCPQ(
            pair="default", k=4, algorithm="clipped",
            range=((0.7, 0.1), (0.2, 0.9)),
            colors={"modulus": 4, "colors_p": (1, 3),
                    "distinct": True},
        )
        envelope = wire.encode_request(request)
        assert envelope["v"] == wire.WIRE_VERSION
        assert envelope["v"] >= 2
        decoded = wire.loads_request(wire.dumps_request(request))
        assert decoded.range == request.range
        assert decoded.colors == request.colors

    def test_unconstrained_envelope_omits_fields(self):
        from repro.net import wire
        from repro.service import CPQRequest as ServiceCPQ

        envelope = wire.encode_request(ServiceCPQ(pair="default", k=2))
        assert "range" not in envelope and "colors" not in envelope

    def test_v1_envelope_still_accepted(self):
        from repro.net import wire

        decoded = wire.decode_request({"v": 1, "op": "cpq", "k": 3})
        assert decoded.k == 3
        assert decoded.range is None and decoded.colors is None

    def test_future_version_rejected(self):
        from repro.net import wire

        with pytest.raises(wire.WireError, match="version"):
            wire.decode_request({"v": wire.WIRE_VERSION + 1, "op": "cpq"})

    def test_plan_range_selectivity_round_trips(self):
        from repro.net import wire
        from repro.service import PlanDecision

        plan = PlanDecision(
            algorithm="rcp", reason="ranged", estimated_accesses=1.0,
            estimated_distance=0.1, buffer_pages=0, height_p=2,
            height_q=2, k=5, range_selectivity=0.0123,
        )
        decoded = wire._decode_plan(wire._encode_plan(plan))
        assert decoded.range_selectivity == pytest.approx(0.0123)
