"""Integration tests: every figure runner executes end-to-end (quick
mode) and reproduces the paper's robust qualitative shapes."""

import pytest

from repro.experiments import FIGURES, run_figure
from repro.experiments import config
from repro.experiments.trees import (
    DatasetSpec,
    get_tree,
    make_points,
    real_spec,
    uniform_spec,
)


@pytest.fixture(scope="module")
def tables():
    """Run all figures once (quick mode) and share the results."""
    return {fid: run_figure(fid, quick=True) for fid in FIGURES}


class TestHarnessBasics:
    def test_registry_covers_all_evaluation_figures(self):
        assert sorted(FIGURES) == [
            f"fig{n:02d}" for n in range(2, 11)
        ]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_all_tables_have_rows(self, tables):
        for fid, table in tables.items():
            assert table.rows, f"{fid} produced no rows"
            assert table.title
            assert table.notes

    def test_k_sweep_truncated_by_scale(self):
        assert config.k_sweep(quick=True)[-1] <= 2000
        assert config.k_sweep(quick=True)[0] == 1

    def test_scaled_has_floor(self):
        assert config.scaled(20_000, quick=True) >= 200


class TestTreeCache:
    def test_same_spec_is_cached(self):
        spec = uniform_spec(300, 0.5, seed=1)
        assert get_tree(spec) is get_tree(spec)

    def test_make_points_deterministic(self):
        spec = real_spec(500)
        import numpy as np

        assert np.array_equal(make_points(spec), make_points(spec))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec("hexagonal", 10, 0)


class TestPaperShapes:
    """Robust qualitative claims that must survive quick-mode scale."""

    def test_fig04_overlap_dominates_cost(self, tables):
        # Full workspace overlap costs far more than disjoint (Sec 4.3.2).
        table = tables["fig04"]
        disjoint = sum(r[3] for r in table.select(overlap_pct=0))
        overlapping = sum(r[3] for r in table.select(overlap_pct=100))
        assert overlapping > 2 * disjoint

    def test_fig04_std_heap_beat_exh_when_disjoint(self, tables):
        table = tables["fig04"]
        for combo in set(table.column("combo")):
            exh = table.value(
                "disk_accesses", combo=combo, overlap_pct=0, algorithm="EXH"
            )
            std = table.value(
                "disk_accesses", combo=combo, overlap_pct=0, algorithm="STD"
            )
            heap = table.value(
                "disk_accesses", combo=combo, overlap_pct=0,
                algorithm="HEAP",
            )
            assert std <= exh
            assert heap <= exh

    def test_fig05_low_overlap_gives_big_relative_wins(self, tables):
        table = tables["fig05"]
        for combo in set(table.column("combo")):
            rel = table.value(
                "relative_to_exh_pct", combo=combo, overlap_pct=0,
                algorithm="HEAP",
            )
            assert rel < 100.0

    def test_fig06_buffer_helps_exh(self, tables):
        table = tables["fig06"]
        for combo in set(table.column("combo")):
            cold = table.value(
                "disk_accesses", combo=combo, overlap_pct=100,
                buffer_pages=0, algorithm="EXH",
            )
            warm = table.value(
                "disk_accesses", combo=combo, overlap_pct=100,
                buffer_pages=256, algorithm="EXH",
            )
            assert warm < cold

    def test_fig07_cost_grows_with_k(self, tables):
        table = tables["fig07"]
        ks = sorted(set(table.column("k")))
        for overlap in (0, 100):
            first = table.value(
                "disk_accesses", overlap_pct=overlap, k=ks[0],
                algorithm="EXH",
            )
            last = table.value(
                "disk_accesses", overlap_pct=overlap, k=ks[-1],
                algorithm="EXH",
            )
            assert last >= first

    def test_fig09_buffer_reduces_std_cost(self, tables):
        table = tables["fig09"]
        ks = sorted(set(table.column("k")))
        cold = table.value(
            "disk_accesses", buffer_pages=0, k=ks[-1], algorithm="STD"
        )
        warm = table.value(
            "disk_accesses", buffer_pages=256, k=ks[-1], algorithm="STD"
        )
        assert warm <= cold

    def test_fig10_incremental_queue_dwarfs_heap(self, tables):
        # Section 3.9's size argument: SML's priority queue is far
        # larger than HEAP's node-pair heap.
        table = tables["fig10"]
        ks = sorted(set(table.column("k")))
        heap_q = table.value(
            "max_queue", buffer_pages=0, overlap_pct=100, k=ks[-1],
            algorithm="HEAP",
        )
        sml_q = table.value(
            "max_queue", buffer_pages=0, overlap_pct=100, k=ks[-1],
            algorithm="SML",
        )
        assert sml_q > heap_q

    def test_fig02_t1_is_reference(self, tables):
        table = tables["fig02"]
        for row in table.select(criterion="T1"):
            assert row[4] == 100.0  # relative_pct column

    def test_fig03_has_both_strategies(self, tables):
        table = tables["fig03"]
        strategies = set(table.column("strategy"))
        assert strategies == {"fix-at-leaves", "fix-at-root"}

    def test_fig08_relative_costs_positive(self, tables):
        table = tables["fig08"]
        assert all(v > 0 for v in table.column("relative_to_exh_pct"))
