"""k-dimensional support (the paper: "the extension to k-dimensional
space is straightforward" -- here verified in 3-d end to end)."""

import itertools
import math
import random

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.core.api import CORE_ALGORITHMS as ALGORITHMS
from repro.geometry.mbr import MBR
from repro.geometry.metrics import maxmaxdist, minmaxdist, minmindist
from repro.query import nearest_neighbors, range_query
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import validate
from repro.storage.page import PageLayout

LAYOUT_3D = PageLayout(page_size=1024, dimension=3)


def random_points_3d(n, seed, shift=0.0):
    rng = random.Random(seed)
    return [
        (rng.random() + shift, rng.random(), rng.random())
        for __ in range(n)
    ]


@pytest.fixture(scope="module")
def trees_3d():
    pts_p = random_points_3d(400, seed=1)
    pts_q = random_points_3d(350, seed=2, shift=0.5)
    config = RTreeConfig(layout=LAYOUT_3D)
    return pts_p, pts_q, bulk_load(pts_p, config=config), bulk_load(
        pts_q, config=config
    )


class TestGeometry3D:
    def test_metric_sandwich(self):
        a = MBR((0, 0, 0), (1, 1, 1))
        b = MBR((2, 2, 2), (3, 3, 3))
        lo = minmindist(a, b)
        mid = minmaxdist(a, b)
        hi = maxmaxdist(a, b)
        assert lo == pytest.approx(math.sqrt(3))
        assert lo <= mid <= hi
        assert hi == pytest.approx(math.sqrt(27))

    def test_inequality_two_with_point_sets(self):
        rng = random.Random(7)
        pts_a = random_points_3d(10, seed=3)
        pts_b = random_points_3d(10, seed=4, shift=1.5)
        box_a = MBR.from_points(pts_a)
        box_b = MBR.from_points(pts_b)
        closest = min(
            math.dist(p, q)
            for p, q in itertools.product(pts_a, pts_b)
        )
        assert closest <= minmaxdist(box_a, box_b) * (1 + 1e-9)


class TestTree3D:
    def test_capacity_shrinks_with_dimension(self):
        # 3-d entries need 56-byte slots -> 18 per 1 KiB page.
        assert LAYOUT_3D.max_entries == 18

    def test_dynamic_build_and_validate(self):
        tree = RTree(RTreeConfig(layout=LAYOUT_3D))
        points = random_points_3d(300, seed=5)
        for oid, point in enumerate(points):
            tree.insert(point, oid)
        summary = validate(tree)
        assert summary.entries == 300
        for oid in range(0, 300, 4):
            assert tree.delete(points[oid], oid)
        validate(tree)

    def test_bulk_and_substrate_queries(self, trees_3d):
        pts_p, __, tree_p, __ = trees_3d
        validate(tree_p)
        window = MBR((0.2, 0.2, 0.2), (0.7, 0.7, 0.7))
        got = sorted(e.oid for e in range_query(tree_p, window))
        want = sorted(
            i for i, p in enumerate(pts_p) if window.contains_point(p)
        )
        assert got == want
        query = (0.5, 0.5, 0.5)
        found = nearest_neighbors(tree_p, query, k=5)
        brute = sorted(math.dist(query, p) for p in pts_p)[:5]
        assert [d for d, __ in found] == pytest.approx(brute, abs=1e-9)


class TestCPQ3D:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_match_brute_force(self, algorithm, trees_3d):
        pts_p, pts_q, tree_p, tree_q = trees_3d
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=7, algorithm=algorithm),
        )
        brute = sorted(
            math.dist(p, q)
            for p, q in itertools.product(pts_p, pts_q)
        )[:7]
        assert result.distances() == pytest.approx(brute, abs=1e-9)

    def test_incremental_3d(self, trees_3d):
        from repro.incremental import k_distance_join

        pts_p, pts_q, tree_p, tree_q = trees_3d
        result = k_distance_join(tree_p, tree_q, k=5)
        brute = sorted(
            math.dist(p, q)
            for p, q in itertools.product(pts_p, pts_q)
        )[:5]
        assert result.distances() == pytest.approx(brute, abs=1e-9)
